"""Shared error types and source locations for the Armada reproduction.

Every phase of the pipeline (lexing, parsing, resolution, type checking,
state-machine translation, proof generation, verification) raises a
subclass of :class:`ArmadaError` carrying an optional source location so
that callers can report errors the way the Armada tool does: with the
offending program position.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SourceLoc:
    """A position in an Armada source text (1-based line and column)."""

    line: int
    column: int
    filename: str = "<armada>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


#: Placeholder location for synthesized nodes (e.g. proof-generated code).
NOWHERE = SourceLoc(0, 0, "<generated>")


class ArmadaError(Exception):
    """Base class for all errors raised by the Armada toolchain."""

    def __init__(self, message: str, loc: SourceLoc | None = None) -> None:
        self.message = message
        self.loc = loc
        super().__init__(f"{loc}: {message}" if loc else message)


class LexError(ArmadaError):
    """Raised when the lexer encounters an invalid token."""


class ParseError(ArmadaError):
    """Raised when the parser encounters invalid syntax."""


class ResolveError(ArmadaError):
    """Raised when name resolution fails (unknown identifiers, etc.)."""


class TypeError_(ArmadaError):
    """Raised when type checking fails.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class CoreViolation(ArmadaError):
    """Raised when a level-0 (implementation) program uses a non-core
    feature that the compiler would reject (§3.1.1)."""


class TranslationError(ArmadaError):
    """Raised when state-machine translation fails."""


class StrategyError(ArmadaError):
    """Raised when a proof strategy detects that the two levels do not
    exhibit the correspondence the recipe claims (the 'error message
    indicating the problem' path of §2.2)."""


class ProofFailure(ArmadaError):
    """Raised when a generated lemma fails verification (the analogue of
    a Dafny verification error in §2.2)."""


class StateBudgetExceeded(ArmadaError):
    """Raised when bounded exploration exhausts its state budget before
    covering the reachable state space.  Callers must never treat a
    truncated enumeration as exhaustive: obligations that consume
    ``Explorer.reachable_states`` see this error propagate into a
    refuted/failed verdict instead of silently passing on partial
    coverage."""

    def __init__(self, max_states: int, message: str | None = None) -> None:
        self.max_states = max_states
        super().__init__(
            message
            or (
                f"state budget exhausted after {max_states} states; "
                "bounded exploration is incomplete (raise --max-states)"
            )
        )


class FaultPlanError(ArmadaError):
    """Raised when a ``--inject-faults`` plan file cannot be parsed or
    names an unknown fault action/phase."""


class TransientFault(Exception):
    """An infrastructure failure of the verification farm — a dead
    worker, an injected chaos fault — as opposed to a proof-level
    refutation.

    Deliberately *not* an :class:`ArmadaError`: the workers turn
    ``ArmadaError`` into a refuted verdict, but a transient fault says
    nothing about the obligation's validity, so it is retried (with
    backoff) and, once retries are exhausted, surfaces as an
    *inconclusive* UNKNOWN verdict rather than a refutation."""


class WorkerCrash(TransientFault):
    """A farm worker died mid-obligation (real ``kill -9`` of a
    process-pool worker, or the simulated equivalent in thread and
    sequential modes).  The in-flight obligation is requeued."""


class InconclusiveCheck(ArmadaError):
    """A farm obligation was short-circuited before it settled — by a
    drain request, a chain deadline, or retry exhaustion.  Distinct
    from a plain :class:`ArmadaError` so the proof engine can report
    the affected proof as *inconclusive* (retry me) rather than
    *failed* (the program is wrong)."""


class ObligationTimeout(Exception):
    """An obligation exceeded its wall-clock deadline.  Not retried —
    a deterministic obligation that timed out once will time out again
    — and not an :class:`ArmadaError`: it becomes a TIMEOUT verdict,
    which the engine reports as inconclusive, never as refuted."""

    def __init__(self, seconds: float, reason: str = "deadline") -> None:
        self.seconds = seconds
        self.reason = reason
        super().__init__(
            f"obligation exceeded its {seconds:g}s wall-clock "
            f"{reason}"
        )


class CompileError(ArmadaError):
    """Raised by the compiler back ends."""


class ExecutionError(ArmadaError):
    """Raised by the concrete runtime on unrecoverable misuse (not for
    modelled undefined behaviour, which terminates the state machine)."""
