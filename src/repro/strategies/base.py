"""Strategy framework: proof generators for correspondence types (§4).

"A strategy is a proof generator designed for a particular type of
correspondence between a low-level and a high-level program."  Each
strategy inspects the two translated levels, verifies (structurally)
that they exhibit its correspondence — raising :class:`StrategyError`
with a diagnostic otherwise, the paper's 'generate an error message
indicating the problem' path — and emits a :class:`ProofScript` whose
lemmas carry mechanically checkable obligations.

Shared machinery lives here: the step aligner used by every
pairwise-matching strategy, ordered step listings, reachable-state
caching, and thread-indexed predicate evaluation for recipe-supplied
ownership/invariant predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.errors import StrategyError
from repro.lang import asts as ast
from repro.lang import types as ty
from repro.lang.parser import parse_expression
from repro.lang.resolver import LevelContext
from repro.lang.typechecker import TypeChecker
from repro.machine.evaluator import EvalContext, eval_expr
from repro.machine.program import StateMachine, Transition
from repro.machine.state import ProgramState, UBSignal
from repro.machine.steps import BranchStep, Step
from repro.proofs.artifacts import ProofScript
from repro.verifier.prover import Prover


@dataclass
class ProofRequest:
    """Everything a strategy needs to generate one refinement proof."""

    proof: ast.ProofDecl
    low_ctx: LevelContext
    high_ctx: LevelContext
    low_machine: StateMachine
    high_machine: StateMachine
    prover: Prover = field(default_factory=Prover)
    max_states: int = 200_000
    #: Optional :class:`repro.analysis.AnalysisResult` for the low level,
    #: attached by the engine when ``--analyze`` is on.  Strategies may
    #: consult it for fast paths (e.g. tso_elim discharges ownership
    #: obligations trivially for provably thread-local locations).
    analysis: Any = None
    #: Enable partial-order reduction for the state sweeps obligations
    #: perform.  Off by default: POR preserves outcomes and
    #: multithreaded shared state but may hide intermediate *private*
    #: thread configurations, which an obligation predicate could
    #: legitimately quantify over.  The engine's ``por=True`` opts in
    #: to the static ample rule; ``por="dynamic"`` selects the dynamic
    #: reducer (exploration-time footprints; see
    #: :mod:`repro.explore.dpor`).  Either choice is recorded in the
    #: proof-cache fingerprint.
    por: "bool | str" = False
    #: Use the compiled step specialization (repro.compiler.stepc) for
    #: state sweeps.  Bit-identical to the interpreter; off only for
    #: debugging or timing comparisons.
    compiled: bool = True
    #: Run obligation state sweeps under the regular-to-atomic lift
    #: (:mod:`repro.explore.atomic`).  Hidden states agree with their
    #: chain end on all shared state (memory, ghosts, buffers, logs),
    #: so invariant-style obligations are unaffected; obligations
    #: quantifying over a single thread's *private* registers at a
    #: non-breaking pc see only atomic-visible states (documented
    #: approximation, mirrors ``por``).  Self-disables per machine when
    #: classification is unavailable (e.g. C11 RA).  Part of the
    #: proof-cache fingerprint.
    atomic: bool = False
    _reachable_cache: dict = field(default_factory=dict)
    _reducers: dict = field(default_factory=dict)

    # ------------------------------------------------------------------

    def _por_for(self, machine: StateMachine):
        """A shared per-machine reducer (static facts computed once)."""
        if not self.por:
            return None
        key = id(machine)
        if key not in self._reducers:
            if self.por == "dynamic":
                from repro.explore.dpor import DynamicReducer

                self._reducers[key] = DynamicReducer(machine)
            else:
                from repro.explore.por import AmpleReducer

                self._reducers[key] = AmpleReducer(machine)
        return self._reducers[key]

    def reachable_states(self, machine: StateMachine) -> list[ProgramState]:
        """Reachable states of *machine*, cached across lemmas.

        Raises :class:`repro.errors.StateBudgetExceeded` when the state
        space does not fit in ``max_states`` — the farm turns that into
        a refuted verdict, so a truncated sweep can never silently pass
        an obligation.
        """
        key = id(machine)
        if key not in self._reachable_cache:
            from repro.explore.explorer import Explorer

            states = list(
                Explorer(
                    machine, self.max_states, por=self._por_for(machine),
                    compiled=self.compiled, atomic=self.atomic,
                ).reachable_states()
            )
            self._reachable_cache[key] = states
        return self._reachable_cache[key]

    def reachable_transitions(
        self, machine: StateMachine
    ) -> Iterable[tuple[ProgramState, Transition, ProgramState]]:
        """All (state, transition, next state) triples of *machine*."""
        for state in self.reachable_states(machine):
            for transition in machine.enabled_transitions(state):
                yield state, transition, machine.next_state(state, transition)

    # ------------------------------------------------------------------

    def parse_predicate(
        self, source: str, ctx: LevelContext
    ) -> ast.Expr:
        """Parse and type-check a recipe predicate over a level's state."""
        expr = parse_expression(source)
        checker = TypeChecker(ctx)
        checker._check_expr(expr, None, ty.BOOL, two_state=False)
        return expr

    def eval_for_thread(
        self,
        ctx: LevelContext,
        machine: StateMachine,
        predicate: ast.Expr,
        state: ProgramState,
        tid: int,
    ) -> bool | None:
        """Evaluate a recipe predicate for thread *tid* in *state*.

        Returns ``None`` when evaluation is undefined there (e.g. the
        thread has no frame and the predicate mentions locals).
        """
        thread = state.threads.get(tid)
        method = (
            thread.top.method
            if thread is not None and thread.frames
            else machine.main_method
        )
        ec = EvalContext(ctx, state, tid, method)
        try:
            return bool(eval_expr(ec, predicate))
        except (UBSignal, KeyError):
            return None


class Strategy:
    """Base class for refinement-proof strategies."""

    #: The recipe name of the strategy (e.g. ``weakening``).
    name: str = ""

    def generate(self, request: ProofRequest) -> ProofScript:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared helpers

    @staticmethod
    def ordered_steps(machine: StateMachine, method: str) -> list[Step]:
        """The steps of *method* in control-flow order.

        A DFS over the method's CFG from its entry PC (guard-true edges
        first) yields an ordering that is stable across levels whose
        ASTs differ only by inserted or removed statements — exactly
        what the pairwise-matching strategies need.  Raw PC indices are
        not stable: the translator allocates an ``if``'s join PC before
        its branches.
        """
        entry = machine.method_entry.get(method)
        if entry is None:
            return []
        ordered: list[Step] = []
        visited: set[str] = set()

        def emit_order(steps: list[Step]) -> list[Step]:
            true_first = sorted(
                steps,
                key=lambda s: (
                    1 if isinstance(s, BranchStep) and not s.when else 0
                ),
            )
            return true_first

        def visit(pc: str | None) -> None:
            if pc is None or pc in visited:
                return
            visited.add(pc)
            steps = emit_order(machine.steps_at(pc))
            ordered.extend(steps)
            for step in steps:
                visit(step.target)

        visit(entry)
        return ordered

    @staticmethod
    def common_methods(request: ProofRequest) -> list[str]:
        low_methods = [
            m.name for m in request.low_ctx.level.methods
            if m.body is not None
        ]
        high_names = {
            m.name for m in request.high_ctx.level.methods
            if m.body is not None
        }
        missing = [m for m in low_methods if m not in high_names]
        extra = sorted(
            high_names - {m for m in low_methods}
        )
        if missing or extra:
            raise StrategyError(
                f"levels disagree on methods: missing in high {missing}, "
                f"extra in high {extra}"
            )
        return low_methods

    @staticmethod
    def align_steps(
        low_steps: list[Step],
        high_steps: list[Step],
        skip_low: Callable[[Step], bool] | None = None,
        skip_high: Callable[[Step], bool] | None = None,
        compatible: Callable[[Step, Step], bool] | None = None,
    ) -> list[tuple[Step | None, Step | None]]:
        """Greedy alignment of two step sequences.

        Pairs compatible steps in order; steps matching ``skip_low`` /
        ``skip_high`` may be left unpaired (yielding ``(step, None)`` or
        ``(None, step)`` entries).  Raises :class:`StrategyError` when
        the sequences cannot be aligned — the correspondence does not
        hold.
        """
        if compatible is None:
            compatible = _default_compatible
        pairs: list[tuple[Step | None, Step | None]] = []
        i = j = 0
        while i < len(low_steps) or j < len(high_steps):
            low = low_steps[i] if i < len(low_steps) else None
            high = high_steps[j] if j < len(high_steps) else None
            if low is not None and high is not None and compatible(low, high):
                pairs.append((low, high))
                i += 1
                j += 1
                continue
            if high is not None and skip_high is not None and skip_high(high):
                pairs.append((None, high))
                j += 1
                continue
            if low is not None and skip_low is not None and skip_low(low):
                pairs.append((low, None))
                i += 1
                continue
            low_desc = _describe(low)
            high_desc = _describe(high)
            raise StrategyError(
                "programs do not exhibit the expected correspondence: "
                f"cannot match low-level step {low_desc} with high-level "
                f"step {high_desc}"
            )
        return pairs


def skip_aware_compatible(
    skip_low: Callable[[Step], bool] | None = None,
    skip_high: Callable[[Step], bool] | None = None,
) -> Callable[[Step, Step], bool]:
    """A pairing predicate for aligners with skippable steps: a step that
    could be skipped is only paired when the pair is structurally
    identical (otherwise the greedy aligner would swallow an introduced
    step into the wrong pair)."""
    from repro.strategies.subsumption import steps_identical

    def compatible(low: Step, high: Step) -> bool:
        if steps_identical(low, high):
            return True
        if skip_high is not None and skip_high(high):
            return False
        if skip_low is not None and skip_low(low):
            return False
        return _default_compatible(low, high)

    return compatible


def _describe(step: Step | None) -> str:
    if step is None:
        return "<end of method>"
    from repro.proofs.render import describe_step_effect

    return f"{step.pc} ({describe_step_effect(step)})"


def _default_compatible(low: Step, high: Step) -> bool:
    if type(low) is not type(high):
        return False
    if isinstance(low, BranchStep) and low.when != high.when:
        return False
    return True
