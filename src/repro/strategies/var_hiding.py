"""The variable-hiding strategy (§4.2.8).

"A pair of programs ⟨L, H⟩ exhibits the variable-hiding correspondence
if ⟨H, L⟩ exhibits the variable-introduction correspondence.  In other
words, the high-level program H has fewer variables than the low-level
program L, and L only uses those variables in assignments to them."

Once a developer has introduced ghost abstractions and weakened the
program logic onto them, hiding erases the now-unreferenced concrete
variables (§4.2.7's "Once program logic no longer depends on a concrete
variable, the developer can hide it").
"""

from __future__ import annotations

from repro.errors import StrategyError
from repro.lang import asts as ast
from repro.machine.steps import AssignStep, Step
from repro.proofs.artifacts import Lemma, ProofScript, bool_verdict
from repro.proofs.render import (
    describe_step_effect,
    render_machine_definitions,
)
from repro.strategies.base import (
    ProofRequest,
    Strategy,
    skip_aware_compatible,
)
from repro.strategies.subsumption import steps_identical


def hidden_variables(request: ProofRequest) -> set[str]:
    """Global variables present in the low level but not the high."""
    high_names = set(request.high_ctx.globals)
    return {
        name for name in request.low_ctx.globals if name not in high_names
    }


class VarHidingStrategy(Strategy):
    name = "var_hiding"

    def generate(self, request: ProofRequest) -> ProofScript:
        script = ProofScript(
            proof_name=request.proof.name,
            strategy=self.name,
            low_level=request.proof.low_level,
            high_level=request.proof.high_level,
        )
        script.preamble.extend(
            render_machine_definitions(request.low_machine)
        )
        hidden = hidden_variables(request)
        if not hidden:
            raise StrategyError(
                "var_hiding: the high level hides no variables"
            )

        hidden_assigns = 0
        for method in self.common_methods(request):
            low_steps = self.ordered_steps(request.low_machine, method)
            high_steps = self.ordered_steps(request.high_machine, method)
            skip_low = lambda s: self._hidden_assign(s, hidden)
            pairs = self.align_steps(
                low_steps,
                high_steps,
                skip_low=skip_low,
                compatible=skip_aware_compatible(skip_low=skip_low),
            )
            for index, (low, high) in enumerate(pairs):
                if high is None:
                    assert isinstance(low, AssignStep)
                    hidden_assigns += 1
                    script.add(
                        Lemma(
                            name=f"HiddenUpdateStutters_{method}_{index}",
                            statement=(
                                "the hidden update "
                                f"[{describe_step_effect(low)}] maps to a "
                                "stuttering step of the high level"
                            ),
                            body=[
                                "// the update touches only hidden "
                                "variables, which the",
                                "// refinement function erases",
                            ],
                        )
                    )
                    continue
                assert low is not None
                if not steps_identical(low, high):
                    raise StrategyError(
                        f"var_hiding correspondence fails at {low.pc}: "
                        "statements differ beyond hidden variables"
                    )
                # "L only uses those variables in assignments to them":
                # a matched (surviving) statement must not read them.
                reads = self._reads_hidden(low, hidden)
                if reads:
                    raise StrategyError(
                        f"var_hiding: statement at {low.pc} still reads "
                        f"hidden variable(s) {sorted(reads)}; weaken the "
                        "program logic off them first (sec. 4.2.7)"
                    )
                script.add(
                    Lemma(
                        name=f"StatementUnchanged_{method}_{index}",
                        statement=(
                            f"[{describe_step_effect(low)}] is identical "
                            "at both levels and reads no hidden variable"
                        ),
                        body=["// matched pair survives the hiding"],
                        obligation=lambda ok=not reads: bool_verdict(ok),
                        pc=low.pc,
                    )
                )
        if hidden_assigns == 0:
            raise StrategyError(
                "var_hiding: hidden variables are never assigned in the "
                "low level; nothing to erase"
            )
        return script

    @staticmethod
    def _hidden_assign(step: Step, hidden: set[str]) -> bool:
        if not isinstance(step, AssignStep) or not step.lhss:
            return False
        return all(
            (root := lhs_root(lhs)) is not None and root in hidden
            for lhs in step.lhss
        )

    @staticmethod
    def _reads_hidden(step: Step, hidden: set[str]) -> set[str]:
        """Hidden variables *read* by the step.  The root of an
        assignment target does not count as a read (writing
        ``elements[wi]`` does not read ``elements``), but index
        expressions and right-hand sides do."""
        found: set[str] = set()
        exprs: list[ast.Expr]
        if isinstance(step, AssignStep):
            exprs = list(step.rhss)
            for lhs in step.lhss:
                exprs.extend(_lhs_read_parts(lhs))
        else:
            exprs = step.reads_exprs()
        for expr in exprs:
            for node in ast.walk_expr(expr):
                if isinstance(node, ast.Var) and node.name in hidden:
                    found.add(node.name)
        return found


def lhs_root(expr: ast.Expr) -> str | None:
    """The root variable of an assignment target (peeling array
    indexing, field access, and dereferences of a named pointer)."""
    while isinstance(expr, (ast.Index, ast.FieldAccess)):
        expr = expr.base
    if isinstance(expr, ast.Var):
        return expr.name
    return None


def _lhs_read_parts(expr: ast.Expr) -> list[ast.Expr]:
    """Subexpressions of an lvalue that constitute *reads* (index
    expressions and dereferenced pointers), excluding the written root."""
    parts: list[ast.Expr] = []
    while isinstance(expr, (ast.Index, ast.FieldAccess)):
        if isinstance(expr, ast.Index):
            parts.append(expr.index)
        expr = expr.base
    if isinstance(expr, ast.Deref):
        parts.append(expr.operand)
    return parts
