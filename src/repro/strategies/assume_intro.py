"""The assume-introduction strategy, backed by rely-guarantee reasoning
(§4.2.2).

"Two programs exhibit the assume-introduction correspondence if they are
identical except that the high-level program has additional enabling
constraints on one or more statements.  The correspondence requires that
each added enabling constraint always holds in the low-level program at
its corresponding program position."

Recipe: ``assume_intro`` with optional directives:

* ``invariant "<expr>"`` — a one-state invariant of the low program;
* ``rely_guarantee "<expr>"`` — a two-state predicate (may use
  ``old(...)``) that steps of *other* threads must maintain for every
  thread (the rely);

both are checked by the engine's explorer, and both are available as
hypotheses in the rendered path lemmas.

The proof generator follows §4.2.2: "one lemma for each program path
that starts at a method's entry and makes no backward jumps" — we
enumerate those finite paths and render one lemma each, then discharge
the enabling-condition obligation at each program point over the
reachable states of the low-level machine.
"""

from __future__ import annotations

from repro.errors import StrategyError
from repro.lang import asts as ast
from repro.lang.astutil import expr_to_str
from repro.machine.evaluator import EvalContext, eval_expr
from repro.machine.state import UBSignal
from repro.machine.steps import AssumeStep, Step
from repro.proofs.artifacts import Lemma, ProofScript, bool_verdict
from repro.proofs.library import render_library_preamble
from repro.proofs.render import (
    describe_step_effect,
    render_machine_definitions,
)
from repro.strategies.base import (
    ProofRequest,
    Strategy,
    skip_aware_compatible,
)
from repro.strategies.subsumption import steps_identical

#: Cap on enumerated forward paths per method (the set is always finite,
#: but deeply branched methods could explode the rendering).
MAX_PATHS = 4_000


class AssumeIntroStrategy(Strategy):
    name = "assume_intro"

    def generate(self, request: ProofRequest) -> ProofScript:
        script = ProofScript(
            proof_name=request.proof.name,
            strategy=self.name,
            low_level=request.proof.low_level,
            high_level=request.proof.high_level,
        )
        script.preamble.extend(render_library_preamble())
        script.preamble.extend(
            render_machine_definitions(request.low_machine)
        )

        introduced = self._match_levels(request)
        if not introduced:
            raise StrategyError(
                "assume_intro: the high level introduces no assume "
                "statements"
            )
        self._invariant_lemmas(request, script)
        self._rely_guarantee_lemmas(request, script)
        for low_pc, method, assume in introduced:
            self._enabling_lemma(request, script, low_pc, method, assume)
        self._path_lemmas(request, script)
        return script

    # ------------------------------------------------------------------

    def _match_levels(
        self, request: ProofRequest
    ) -> list[tuple[str | None, str, AssumeStep]]:
        """Align levels, returning (low position, method, assume step)
        for each introduced enabling condition.  The low position is the
        PC of the statement the assume guards (the next matched step)."""
        introduced: list[tuple[str | None, str, AssumeStep]] = []
        for method in self.common_methods(request):
            low_steps = self.ordered_steps(request.low_machine, method)
            high_steps = self.ordered_steps(request.high_machine, method)
            skip_high = lambda s: isinstance(s, AssumeStep)
            pairs = self.align_steps(
                low_steps,
                high_steps,
                skip_high=skip_high,
                compatible=skip_aware_compatible(skip_high=skip_high),
            )
            pending: list[AssumeStep] = []
            for low, high in pairs:
                if low is None:
                    assert isinstance(high, AssumeStep)
                    pending.append(high)
                    continue
                assert high is not None
                if not steps_identical(low, high):
                    raise StrategyError(
                        "assume_intro correspondence fails at "
                        f"{low.pc}: statements differ beyond added "
                        "enabling conditions"
                    )
                for assume in pending:
                    introduced.append((low.pc, method, assume))
                pending = []
            for assume in pending:
                # Trailing assume: guards the method's return position.
                introduced.append((None, method, assume))
        return introduced

    # ------------------------------------------------------------------

    def _enabling_lemma(
        self,
        request: ProofRequest,
        script: ProofScript,
        low_pc: str | None,
        method: str,
        assume: AssumeStep,
    ) -> None:
        cond = assume.cond
        machine = request.low_machine
        ctx = request.low_ctx

        def obligation():
            for state in request.reachable_states(machine):
                if not state.running:
                    continue
                for tid in state.threads.keys():
                    thread = state.threads[tid]
                    if thread.terminated or not thread.frames:
                        continue
                    if low_pc is not None and thread.pc != low_pc:
                        continue
                    if low_pc is None and thread.top.method != method:
                        continue
                    if thread.top.method != method:
                        continue
                    ec = EvalContext(ctx, state, tid, method)
                    try:
                        holds = bool(eval_expr(ec, cond))
                    except (UBSignal, KeyError):
                        holds = False
                    if not holds:
                        return bool_verdict(
                            False,
                            {
                                "pc": thread.pc,
                                "tid": tid,
                                "condition": expr_to_str(cond),
                            },
                        )
            return bool_verdict(True)

        where = low_pc if low_pc is not None else f"{method} (exit)"
        script.add(
            Lemma(
                name=(
                    "EnablingConditionHolds_"
                    f"{where.replace('#', '_').replace(' ', '_')}"
                    f"_{len(script.lemmas)}"
                ),
                statement=(
                    f"forall s in Reachable, tid at {where} :: "
                    f"{expr_to_str(cond)}"
                ),
                body=[
                    "// the added enabling condition always holds at its",
                    "// corresponding low-level program position, so",
                    "// assume-introduction adds no blocking (sec. 4.2.2)",
                ],
                obligation=obligation,
            )
        )

    # ------------------------------------------------------------------

    def _invariant_lemmas(
        self, request: ProofRequest, script: ProofScript
    ) -> None:
        for index, item in enumerate(
            request.proof.directives("invariant")
        ):
            text = item.args[0] if item.args else "true"
            predicate = request.parse_predicate(text, request.low_ctx)
            machine = request.low_machine

            def obligation(predicate=predicate):
                for state in request.reachable_states(machine):
                    if not state.running:
                        continue
                    for tid in state.threads.keys():
                        value = request.eval_for_thread(
                            request.low_ctx, machine, predicate, state, tid
                        )
                        if value is False:
                            return bool_verdict(
                                False, {"invariant": expr_to_str(predicate)}
                            )
                return bool_verdict(True)

            script.add(
                Lemma(
                    name=f"InvariantInductive_{index}",
                    statement=f"forall s in Reachable :: {text}",
                    body=[
                        "// base case: the invariant holds initially",
                        "// inductive case: every program step and every",
                        "// store-buffer drain preserves the invariant",
                    ],
                    obligation=obligation,
                )
            )

    def _rely_guarantee_lemmas(
        self, request: ProofRequest, script: ProofScript
    ) -> None:
        for index, item in enumerate(
            request.proof.directives("rely_guarantee")
        ):
            text = item.args[0] if item.args else "true"
            predicate = self._parse_two_state(request, text)
            machine = request.low_machine
            ctx = request.low_ctx

            def obligation(predicate=predicate):
                for state, transition, nxt in (
                    request.reachable_transitions(machine)
                ):
                    if not nxt.running:
                        continue
                    for tid in state.threads.keys():
                        if tid == transition.tid:
                            continue  # the rely constrains *other* threads
                        thread = state.threads[tid]
                        if thread.terminated or not thread.frames:
                            continue
                        ec = EvalContext(
                            ctx, nxt, tid, thread.top.method,
                            old_state=state,
                        )
                        try:
                            holds = bool(eval_expr(ec, predicate))
                        except (UBSignal, KeyError):
                            continue
                        if not holds:
                            return bool_verdict(
                                False,
                                {
                                    "rely": expr_to_str(predicate),
                                    "step": transition.describe(),
                                },
                            )
                return bool_verdict(True)

            script.add(
                Lemma(
                    name=f"RelyGuaranteeMaintained_{index}",
                    statement=(
                        "forall s, s', stepper, tid :: stepper != tid "
                        f"==> {text}"
                    ),
                    body=[
                        "// every step by another thread maintains the",
                        "// rely predicate (two-state, old() = pre-state);",
                        "// instantiates lemma RelyGuaranteeSoundness()",
                    ],
                    obligation=obligation,
                )
            )

    def _parse_two_state(self, request: ProofRequest, text: str) -> ast.Expr:
        from repro.lang import types as ty
        from repro.lang.parser import parse_expression
        from repro.lang.typechecker import TypeChecker

        expr = parse_expression(text)
        checker = TypeChecker(request.low_ctx)
        checker._check_expr(expr, None, ty.BOOL, two_state=True)
        return expr

    # ------------------------------------------------------------------

    def _path_lemmas(self, request: ProofRequest, script: ProofScript) -> None:
        """Render one lemma per forward (no-back-jump) path per method."""
        machine = request.low_machine
        for method, entry in machine.method_entry.items():
            paths = self._forward_paths(machine, entry)
            for index, path in enumerate(paths):
                if index >= MAX_PATHS:
                    break
                script.add(
                    Lemma(
                        name=f"PathLemma_{method}_{index}",
                        statement=(
                            f"the Hoare-style path through {method} "
                            "maintains all invariants and rely-guarantee "
                            "predicates"
                        ),
                        body=[
                            "// single-thread state machine: other-thread",
                            "// interference is havoc subject to the rely;",
                            "// loop heads havoc subject to loop "
                            "invariants",
                        ]
                        + [
                            f"// step: {describe_step_effect(step)}"
                            for step in path
                        ],
                    )
                )

    def _forward_paths(self, machine, entry: str) -> list[list[Step]]:
        """All step paths from *entry* that never jump backwards."""
        paths: list[list[Step]] = []

        def index_of(pc: str | None) -> int:
            if pc is None:
                return 1 << 30
            return machine.pcs[pc].index

        def walk(pc: str | None, acc: list[Step]) -> None:
            if len(paths) >= MAX_PATHS:
                return
            if pc is None:
                paths.append(acc)
                return
            steps = machine.steps_at(pc)
            if not steps:
                paths.append(acc)
                return
            extended = False
            for step in steps:
                if index_of(step.target) <= index_of(pc) and \
                        step.target is not None:
                    continue  # backward jump ends the path
                extended = True
                walk(step.target, acc + [step])
            if not extended:
                paths.append(acc)

        walk(entry, [])
        return paths
