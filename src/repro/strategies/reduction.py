"""The reduction strategy (§4.2.1), using Cohen and Lamport's
generalization.

"Our strategy considers two programs to exhibit the reduction
correspondence if they are identical except that some yield points in
the low-level program are not yield points in the high-level program."

The obligations are the Cohen–Lamport conditions:

* each step ending in the first phase commutes to the *right* with each
  step of another thread;
* each step starting in the second phase commutes to the *left*;
* programs never pass directly from the second phase to the first;
* each path between yield points matches ``R* [N] L*`` (right movers,
  at most one non-mover, left movers).

Commutativity lemmas are generated one per (mover step, other step)
pair — "This requires generating many lemmas, one for each pair of
steps" — and discharged with the encapsulated-nondeterminism trick of
§4.2.1: the alternate-universe intermediate state is simply
``NextState(s1, sigma_j)``, so each lemma hypothesizes
``NextState(NextState(s1, sigma_j), sigma_i) == s3`` and the checker
validates it over the reachable states of the low-level machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StrategyError
from repro.machine.program import StateMachine, Transition
from repro.machine.steps import Step
from repro.proofs.artifacts import Lemma, ProofScript, bool_verdict
from repro.proofs.library import (
    left_mover_at,
    render_library_preamble,
    right_mover_at,
)
from repro.proofs.render import (
    describe_step_effect,
    render_machine_definitions,
    step_constructor_name,
)
from repro.strategies.base import ProofRequest, Strategy
from repro.strategies.subsumption import steps_identical

#: Bound on enumerated region paths (paths between yield points are
#: loop-free because loops inside regions must contain a yield).
MAX_REGION_PATHS = 2_000


@dataclass
class MoverClassification:
    """Which way each reduced step commutes (over reachable states)."""

    right_movers: set[str]
    left_movers: set[str]
    witnesses: dict[str, str]


class ReductionStrategy(Strategy):
    name = "reduction"

    def generate(self, request: ProofRequest) -> ProofScript:
        script = ProofScript(
            proof_name=request.proof.name,
            strategy=self.name,
            low_level=request.proof.low_level,
            high_level=request.proof.high_level,
        )
        script.preamble.extend(render_library_preamble())
        script.preamble.extend(
            render_machine_definitions(request.low_machine)
        )
        script.preamble.extend(
            render_machine_definitions(request.high_machine)
        )

        reduced_pcs = self._check_correspondence(request)
        if not reduced_pcs:
            raise StrategyError(
                "reduction: the high level removes no yield points"
            )
        region_steps = self._region_steps(request.low_machine, reduced_pcs)
        classification = self._classify_movers(
            request, script, region_steps
        )
        self._phase_lemmas(request, script, reduced_pcs, classification)
        return script

    # ------------------------------------------------------------------

    def _check_correspondence(self, request: ProofRequest) -> set[str]:
        """Verify the programs are identical except for yield points;
        return the low-level PCs that stop being yield points."""
        reduced: set[str] = set()
        for method in self.common_methods(request):
            low_steps = self.ordered_steps(request.low_machine, method)
            high_steps = self.ordered_steps(request.high_machine, method)
            pairs = self.align_steps(low_steps, high_steps)
            for low, high in pairs:
                assert low is not None and high is not None
                if not steps_identical(low, high):
                    raise StrategyError(
                        f"reduction correspondence fails at {low.pc}: "
                        "statements differ (reduction only removes "
                        "yield points)"
                    )
                low_info = request.low_machine.pcs[low.pc]
                high_info = request.high_machine.pcs[high.pc]
                if low_info.yieldable and not high_info.yieldable:
                    reduced.add(low.pc)
                elif not low_info.yieldable and high_info.yieldable:
                    raise StrategyError(
                        f"reduction cannot *add* yield points ({low.pc})"
                    )
        return reduced

    @staticmethod
    def _region_steps(
        machine: StateMachine, reduced_pcs: set[str]
    ) -> list[Step]:
        """Steps participating in a reduced region: those whose source PC
        lies in the region, plus the entry steps that lead into it from a
        yield point (the first statement of the atomic sequence — e.g.
        the ``lock`` that must be a right mover)."""
        result = []
        for step in machine.all_steps():
            if step.pc in reduced_pcs or step.target in reduced_pcs:
                result.append(step)
        return result

    # ------------------------------------------------------------------

    def _classify_movers(
        self,
        request: ProofRequest,
        script: ProofScript,
        region_steps: list[Step],
    ) -> MoverClassification:
        machine = request.low_machine
        region_ids = {id(step) for step in region_steps}

        # Gather, per step, the reachable (state, transition) instances.
        instances: dict[int, list] = {id(s): [] for s in region_steps}
        by_state: dict = {}
        for state in request.reachable_states(machine):
            transitions = machine.enabled_transitions(state)
            by_state[state] = transitions
            for transition in transitions:
                if (
                    transition.step is not None
                    and id(transition.step) in region_ids
                ):
                    instances[id(transition.step)].append(
                        (state, transition)
                    )

        right: set[str] = set()
        left: set[str] = set()
        witnesses: dict[str, str] = {}
        other_step_names: set[str] = set()
        for step in region_steps:
            key = step_constructor_name(step)
            is_right = True
            is_left = True
            for state, transition in instances[id(step)]:
                for other in by_state[state]:
                    if other.tid == transition.tid:
                        continue
                    name = (
                        "drain" if other.is_drain
                        else step_constructor_name(other.step)
                    )
                    other_step_names.add(name)
                    if is_right and not right_mover_at(
                        machine, state, transition, other
                    ):
                        is_right = False
                        witnesses.setdefault(
                            key, f"right-mover fails against {name}"
                        )
                    if is_left and not left_mover_at(
                        machine, state, transition, other
                    ):
                        is_left = False
                        witnesses.setdefault(
                            key, f"left-mover fails against {name}"
                        )
                if not is_right and not is_left:
                    break
            if is_right:
                right.add(key)
            if is_left:
                left.add(key)
        # One commutativity lemma per (reduced step, other step) pair, as
        # in the paper ("one lemma for each pair of steps of the
        # low-level program where the first step in that pair is a right
        # mover").  The pairing covers every step type of the program
        # plus the store-buffer drain, even if a pair never co-occurs in
        # a reachable state (such lemmas hold vacuously).
        all_names = {
            step_constructor_name(s) for s in machine.all_steps()
        } | other_step_names | {"drain"}
        for step in region_steps:
            key = step_constructor_name(step)
            direction = (
                "right" if key in right
                else "left" if key in left else "none"
            )
            for name in sorted(all_names):
                script.add(
                    Lemma(
                        name=f"Commute_{key}_across_{name}",
                        statement=(
                            f"NextState(NextState(s1, sigma_j), sigma_i) "
                            f"== s3 for sigma_i = {key}, sigma_j = {name}"
                        ),
                        body=[
                            f"// {describe_step_effect(step)} commutes "
                            f"({direction} mover candidate)",
                            "// alternate-universe state constructed as",
                            "// NextState(s1, sigma_j) via encapsulated",
                            "// nondeterminism (sec. 4.1)",
                        ],
                    )
                )
        return MoverClassification(right, left, witnesses)

    # ------------------------------------------------------------------

    def _phase_lemmas(
        self,
        request: ProofRequest,
        script: ProofScript,
        reduced_pcs: set[str],
        classification: MoverClassification,
    ) -> None:
        """Check every path through each reduced region is R* [N] L*."""
        machine = request.low_machine
        paths = self._region_paths(machine, reduced_pcs)
        failures: list[dict] = []
        for index, path in enumerate(paths):
            shape_ok, detail = self._check_shape(path, classification)
            script.add(
                Lemma(
                    name=f"PhaseDiscipline_path_{index}",
                    statement=(
                        "the reduced sequence ["
                        + ", ".join(
                            describe_step_effect(s) for s in path
                        )
                        + "] has the Cohen-Lamport shape R* [N] L*"
                    ),
                    body=[
                        "// phase 1 = after a right mover; phase 2 = "
                        "before a left mover;",
                        "// no transition from phase 2 back to phase 1",
                        f"// classification: {detail}",
                    ],
                    obligation=(
                        lambda ok=shape_ok, d=detail: bool_verdict(ok, d)
                    ),
                )
            )
            if not shape_ok:
                failures.append({"path": index, "detail": detail})

    def _check_shape(
        self, path: list[Step], classification: MoverClassification
    ) -> tuple[bool, str]:
        """Does *path* decompose as right movers, at most one non-mover,
        then left movers?"""
        phase = 1
        labels = []
        for step in path:
            key = step_constructor_name(step)
            is_right = key in classification.right_movers
            is_left = key in classification.left_movers
            if phase == 1:
                if is_right:
                    labels.append("R")
                    continue
                phase = 2
                if is_left:
                    labels.append("L")
                else:
                    labels.append("N")
                continue
            # phase 2: only left movers allowed.
            if is_left:
                labels.append("L")
                continue
            reason = classification.witnesses.get(key, "not a left mover")
            return False, (
                f"step {key} breaks the phase discipline "
                f"(shape so far {''.join(labels)}; {reason})"
            )
        return True, "".join(labels) or "empty"

    def _region_paths(
        self, machine: StateMachine, reduced_pcs: set[str]
    ) -> list[list[Step]]:
        """Enumerate step paths through reduced regions: start at a
        reduced PC whose predecessors are not reduced, follow steps while
        inside the region."""
        entry_steps = [
            step
            for step in machine.all_steps()
            if step.pc not in reduced_pcs and step.target in reduced_pcs
        ]
        paths: list[list[Step]] = []

        def walk(pc: str | None, acc: list[Step], visited: frozenset[str]):
            if len(paths) >= MAX_REGION_PATHS:
                return
            if pc is None or pc not in reduced_pcs or pc in visited:
                if acc:
                    paths.append(acc)
                return
            steps = machine.steps_at(pc)
            if not steps:
                if acc:
                    paths.append(acc)
                return
            for step in steps:
                walk(step.target, acc + [step], visited | {pc})

        for entry in sorted(entry_steps, key=lambda s: s.pc):
            walk(entry.target, [entry], frozenset({entry.pc}))
        return paths
