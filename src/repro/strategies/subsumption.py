"""Per-statement behaviour subsumption: does the high-level statement
admit a superset of the low-level statement's behaviours (§4.2.4)?

The checker returns a :class:`SubsumptionPlan` describing how the lemma
for the pair is discharged:

* ``trivial`` — the steps are structurally identical;
* ``nondet`` — the high-level side replaces expressions with ``*``
  (its witness is the low-level expression, §4.2.5);
* ``prover`` — the sides differ but a bounded-prover obligation shows
  the low behaviour is contained (e.g. ``x & 1`` vs ``x % 2``);
* ``somehow`` — the high side is a declarative ``somehow`` covering the
  low assignment, proved by substituting the low effect into the
  postconditions;
* ``global`` — the pair is beyond local reasoning (pointer-heavy or
  customized); the engine discharges it with a whole-program bounded
  refinement check, recording the lemma customization.

A :class:`repro.errors.StrategyError` means the programs simply do not
exhibit the weakening correspondence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import StrategyError
from repro.lang import asts as ast
from repro.lang import types as ty
from repro.lang.astutil import expr_equal, expr_to_str, free_vars, substitute
from repro.lang.resolver import LevelContext
from repro.machine.steps import (
    AssertStep,
    AssignStep,
    AssumeStep,
    BranchStep,
    SomehowStep,
    Step,
)
from repro.strategies.base import ProofRequest
from repro.verifier.prover import Verdict


@dataclass
class SubsumptionPlan:
    kind: str  # trivial | nondet | prover | somehow | global
    description: str
    obligation: Callable[[], Verdict] | None = None
    witnesses: list[str] = field(default_factory=list)


def steps_identical(low: Step, high: Step) -> bool:
    """Structural identity of two steps (same kind, same expressions)."""
    if type(low) is not type(high):
        return False
    if isinstance(low, AssignStep):
        return (
            low.tso_bypass == high.tso_bypass
            and len(low.lhss) == len(high.lhss)
            and len(low.rhss) == len(high.rhss)
            and all(expr_equal(a, b) for a, b in zip(low.lhss, high.lhss))
            and all(expr_equal(a, b) for a, b in zip(low.rhss, high.rhss))
        )
    if isinstance(low, BranchStep):
        return low.when == high.when and expr_equal(low.cond, high.cond)
    if isinstance(low, (AssumeStep, AssertStep)):
        return expr_equal(low.cond, high.cond)
    if isinstance(low, SomehowStep):
        return _spec_equal(low.spec, high.spec)
    # Calls, returns, allocation, externs: compare their expression lists.
    low_exprs = low.reads_exprs()
    high_exprs = high.reads_exprs()
    if len(low_exprs) != len(high_exprs):
        return False
    if not all(expr_equal(a, b) for a, b in zip(low_exprs, high_exprs)):
        return False
    for attr in ("method", "name", "method_name", "result_local",
                 "alloc_type"):
        if getattr(low, attr, None) != getattr(high, attr, None):
            return False
    return True


def _spec_equal(a: ast.SomehowSpec, b: ast.SomehowSpec) -> bool:
    return (
        len(a.requires) == len(b.requires)
        and len(a.modifies) == len(b.modifies)
        and len(a.ensures) == len(b.ensures)
        and all(expr_equal(x, y) for x, y in zip(a.requires, b.requires))
        and all(expr_equal(x, y) for x, y in zip(a.modifies, b.modifies))
        and all(expr_equal(x, y) for x, y in zip(a.ensures, b.ensures))
    )


# ---------------------------------------------------------------------------


def _variable_types(
    exprs: list[ast.Expr], ctx: LevelContext, method: str
) -> dict[str, ty.Type] | None:
    """Types of the free variables of *exprs*; None if any variable has a
    type the bounded prover cannot sample (pointers into the heap)."""
    result: dict[str, ty.Type] = {}
    for expr in exprs:
        for name in free_vars(expr):
            info = ctx.local(method, name)
            if info is not None:
                result[name] = info.type
                continue
            g = ctx.globals.get(name)
            if g is not None:
                result[name] = g.var_type
                continue
            return None
    for t in result.values():
        if isinstance(t, (ty.PtrType, ty.StructType, ty.ArrayType)):
            return None
    return result


def _formula_friendly(exprs: list[ast.Expr]) -> bool:
    """Whether the formula interpreter can evaluate these expressions."""
    for expr in exprs:
        for node in ast.walk_expr(expr):
            if isinstance(
                node,
                (ast.AddressOf, ast.Deref, ast.FieldAccess, ast.Nondet,
                 ast.Allocated, ast.AllocatedArray, ast.MetaVar),
            ):
                return False
            if isinstance(node, ast.Index):
                return False
    return True


def assume_hypotheses(request: ProofRequest, low: Step) -> list[ast.Expr]:
    """Enabling conditions cemented immediately before *low* (§4.2.2):
    any assume step targeting this PC gates the statement, so its
    condition may serve as a hypothesis in the local lemma."""
    hypotheses = []
    for step in request.low_machine.all_steps():
        if isinstance(step, AssumeStep) and step.target == low.pc:
            hypotheses.append(step.cond)
    return hypotheses


def check_subsumption(
    low: Step, high: Step, request: ProofRequest, allow_nondet: bool
) -> SubsumptionPlan:
    """Build the discharge plan for one aligned step pair."""
    if steps_identical(low, high):
        return SubsumptionPlan("trivial", "statements are identical")

    method = request.low_machine.pcs[low.pc].method
    prover = request.prover

    if isinstance(low, AssignStep) and isinstance(high, AssignStep):
        return _assign_vs_assign(low, high, request, method, allow_nondet)
    if isinstance(low, BranchStep) and isinstance(high, BranchStep):
        if low.when != high.when:
            raise StrategyError("branch directions disagree")
        if high.cond is None:
            if not allow_nondet:
                raise StrategyError(
                    "guard weakened to *: use the nondet_weakening strategy"
                )
            witness = (
                "true" if low.cond is None else expr_to_str(low.cond)
            )
            return SubsumptionPlan(
                "nondet",
                "high-level guard is the nondeterministic choice *",
                witnesses=[f"guard witness := {witness}"],
            )
        if low.cond is None:
            raise StrategyError(
                "low-level nondet guard cannot refine a concrete guard"
            )
        return _equivalence_plan(
            low.cond, high.cond, request, method, "guard"
        )
    if isinstance(low, AssumeStep) and isinstance(high, AssumeStep):
        return _implication_plan(low.cond, high.cond, request, method)
    if isinstance(low, AssertStep) and isinstance(high, AssertStep):
        return _equivalence_plan(
            low.cond, high.cond, request, method, "assertion"
        )
    if isinstance(low, AssignStep) and isinstance(high, SomehowStep):
        return _assign_vs_somehow(low, high, request, method)
    if isinstance(low, SomehowStep) and isinstance(high, SomehowStep):
        return _somehow_vs_somehow(low, high, request, method)
    from repro.machine.steps import ExternStep

    if isinstance(low, ExternStep) and isinstance(high, ExternStep):
        return _extern_vs_extern(low, high, request, method)
    raise StrategyError(
        f"no subsumption rule for {type(low).__name__} vs "
        f"{type(high).__name__}"
    )


def _assign_vs_assign(
    low: AssignStep, high: AssignStep, request: ProofRequest, method: str,
    allow_nondet: bool,
) -> SubsumptionPlan:
    if low.tso_bypass != high.tso_bypass:
        raise StrategyError(
            "assignment memory-ordering differs: use the tso_elim strategy"
        )
    if len(low.lhss) != len(high.lhss) or not all(
        expr_equal(a, b) for a, b in zip(low.lhss, high.lhss)
    ):
        raise StrategyError("assignment targets differ")
    if len(low.rhss) != len(high.rhss):
        raise StrategyError("assignment arity differs")
    witnesses: list[str] = []
    obligations: list[tuple[ast.Expr, ast.Expr]] = []
    for low_rhs, high_rhs in zip(low.rhss, high.rhss):
        if isinstance(high_rhs, ast.Nondet):
            if not allow_nondet:
                raise StrategyError(
                    "value weakened to *: use the nondet_weakening strategy"
                )
            witnesses.append(f"value witness := {expr_to_str(low_rhs)}")
            continue
        if expr_equal(low_rhs, high_rhs):
            continue
        obligations.append((low_rhs, high_rhs))
    if not obligations:
        kind = "nondet" if witnesses else "trivial"
        return SubsumptionPlan(kind, "assignment pair", witnesses=witnesses)
    all_exprs = [e for pair in obligations for e in pair]
    variables = _variable_types(all_exprs, request.low_ctx, method)
    if variables is None or not _formula_friendly(all_exprs):
        return SubsumptionPlan(
            "global",
            "assignment pair is beyond local reasoning "
            "(heap-dependent); discharged by whole-program refinement",
        )

    def obligation() -> Verdict:
        for low_rhs, high_rhs in obligations:
            verdict = request.prover.equivalent(low_rhs, high_rhs, variables)
            if not verdict.ok:
                return verdict
        return Verdict("proved")

    description = "; ".join(
        f"{expr_to_str(a)} == {expr_to_str(b)}" for a, b in obligations
    )
    return SubsumptionPlan("prover", description, obligation, witnesses)


def _equivalence_plan(
    low_cond: ast.Expr, high_cond: ast.Expr, request: ProofRequest,
    method: str, what: str,
) -> SubsumptionPlan:
    exprs = [low_cond, high_cond]
    variables = _variable_types(exprs, request.low_ctx, method)
    if variables is None or not _formula_friendly(exprs):
        return SubsumptionPlan(
            "global",
            f"{what} equivalence is heap-dependent; discharged by "
            "whole-program refinement",
        )

    def obligation() -> Verdict:
        return request.prover.equivalent(low_cond, high_cond, variables)

    return SubsumptionPlan(
        "prover",
        f"{what}: {expr_to_str(low_cond)} <==> {expr_to_str(high_cond)}",
        obligation,
    )


def _implication_plan(
    low_cond: ast.Expr, high_cond: ast.Expr, request: ProofRequest,
    method: str,
) -> SubsumptionPlan:
    exprs = [low_cond, high_cond]
    variables = _variable_types(exprs, request.low_ctx, method)
    goal = ast.Binary("==>", low_cond, high_cond)
    goal.type = ty.BOOL
    if variables is None or not _formula_friendly(exprs):
        return SubsumptionPlan(
            "global",
            "assume-weakening is heap-dependent; discharged by "
            "whole-program refinement",
        )

    def obligation() -> Verdict:
        return request.prover.prove_valid(goal, variables)

    return SubsumptionPlan(
        "prover",
        f"{expr_to_str(low_cond)} ==> {expr_to_str(high_cond)}",
        obligation,
    )


def two_state_substitute(
    expr: ast.Expr, post_map: dict[str, ast.Expr]
) -> ast.Expr:
    """Turn a two-state predicate into a one-state goal: ``old(e)``
    becomes *e* over pre-state variables, and plain occurrences of the
    modified variables become their assigned expressions."""
    if isinstance(expr, ast.Old):
        return expr.operand
    if isinstance(expr, ast.Var):
        replacement = post_map.get(expr.name)
        return replacement if replacement is not None else expr
    children = ast.child_exprs(expr)
    if not children:
        return expr
    new_children = [two_state_substitute(c, post_map) for c in children]
    if all(n is o for n, o in zip(new_children, children)):
        return expr
    from repro.lang.astutil import _rebuild

    return _rebuild(expr, new_children)


def _assign_vs_somehow(
    low: AssignStep, high: SomehowStep, request: ProofRequest, method: str
) -> SubsumptionPlan:
    modified_names = []
    for target in high.spec.modifies:
        if not isinstance(target, ast.Var):
            return SubsumptionPlan(
                "global",
                "somehow modifies a heap location; discharged by "
                "whole-program refinement",
            )
        modified_names.append(target.name)
    post_map: dict[str, ast.Expr] = {
        name: ast.Var(name) for name in modified_names
    }
    for lhs, rhs in zip(low.lhss, low.rhss):
        if not isinstance(lhs, ast.Var):
            return SubsumptionPlan(
                "global",
                "assignment target is a heap location; discharged by "
                "whole-program refinement",
            )
        if lhs.name not in modified_names:
            raise StrategyError(
                f"somehow does not cover assigned variable {lhs.name}"
            )
        post_map[lhs.name] = rhs
    goals = [
        two_state_substitute(e, post_map) for e in high.spec.ensures
    ]
    relevant = goals + list(low.rhss)
    variables = _variable_types(relevant, request.low_ctx, method)
    if variables is None or not _formula_friendly(relevant):
        return SubsumptionPlan(
            "global",
            "somehow postcondition is heap-dependent; discharged by "
            "whole-program refinement",
        )

    def obligation() -> Verdict:
        for goal in goals:
            goal.type = ty.BOOL
            verdict = request.prover.prove_valid(goal, variables)
            if not verdict.ok:
                return verdict
        return Verdict("proved")

    return SubsumptionPlan(
        "somehow",
        "assignment effect satisfies the somehow postconditions: "
        + "; ".join(expr_to_str(g) for g in goals),
        obligation,
        witnesses=[
            f"havoc witness {n} := {expr_to_str(post_map[n])}"
            for n in modified_names
        ],
    )


def _extern_vs_extern(
    low, high, request: ProofRequest, method: str
) -> SubsumptionPlan:
    """Two calls to the same external method with differing arguments.

    The canonical use is re-expressing an observable output (the Queue
    case study logs via the abstract ghost queue instead of the concrete
    ring).  Argument equality is proved locally when the bounded prover
    can sample the arguments; otherwise the pair is discharged by the
    whole-program refinement check (the console logs must still agree).
    """
    if low.name != high.name or len(low.args) != len(high.args):
        raise StrategyError(
            f"extern calls differ: {low.name} vs {high.name}"
        )
    differing = [
        (a, b)
        for a, b in zip(low.args, high.args)
        if not expr_equal(a, b)
    ]
    # Enabling conditions cemented just before the call are hypotheses
    # (§4.2.2: cemented invariants let local lemmas relate the values).
    hypotheses = assume_hypotheses(request, low)
    all_exprs = [e for pair in differing for e in pair] + hypotheses
    variables = _variable_types(all_exprs, request.low_ctx, method)
    if variables is None or not _formula_friendly(all_exprs):
        return SubsumptionPlan(
            "global",
            f"extern {low.name} argument equality is state-dependent; "
            "discharged by whole-program refinement (log agreement)",
        )

    def obligation() -> Verdict:
        for a, b in differing:
            goal = ast.Binary("==", a, b)
            goal.type = ty.BOOL
            verdict = request.prover.prove_valid(
                goal, variables, hypotheses
            )
            if not verdict.ok:
                return verdict
        return Verdict("proved")

    description = "; ".join(
        f"{expr_to_str(a)} == {expr_to_str(b)}" for a, b in differing
    ) + (
        " under cemented conditions "
        + "; ".join(expr_to_str(h) for h in hypotheses)
        if hypotheses
        else ""
    )
    return SubsumptionPlan("prover", description, obligation)


def _somehow_vs_somehow(
    low: SomehowStep, high: SomehowStep, request: ProofRequest, method: str
) -> SubsumptionPlan:
    low_mods = {expr_to_str(e) for e in low.spec.modifies}
    high_mods = {expr_to_str(e) for e in high.spec.modifies}
    if not low_mods <= high_mods:
        raise StrategyError(
            f"high-level somehow must modify at least {sorted(low_mods)}"
        )
    # old(x) occurrences become distinct pre-variables for the prover.
    pre_rename: dict[str, ast.Expr] = {}

    def strip_old(expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.Old) and isinstance(expr.operand, ast.Var):
            name = f"old${expr.operand.name}"
            var = ast.Var(name)
            var.type = expr.operand.type
            pre_rename[name] = var
            return var
        children = ast.child_exprs(expr)
        if not children:
            return expr
        new_children = [strip_old(c) for c in children]
        if all(n is o for n, o in zip(new_children, children)):
            return expr
        from repro.lang.astutil import _rebuild

        return _rebuild(expr, new_children)

    low_post = [strip_old(e) for e in low.spec.ensures]
    high_post = [strip_old(e) for e in high.spec.ensures]
    hypothesis = _conjoin(low_post)
    goal = _conjoin(high_post)
    exprs = low_post + high_post
    variables = _variable_types(exprs, request.low_ctx, method)
    if variables is None or not _formula_friendly(exprs):
        return SubsumptionPlan(
            "global",
            "somehow-pair comparison is heap-dependent; discharged by "
            "whole-program refinement",
        )
    for name, var in pre_rename.items():
        base = name.removeprefix("old$")
        if base in variables:
            variables[name] = variables[base]
        elif var.type is not None:
            variables[name] = var.type

    def obligation() -> Verdict:
        return request.prover.prove_valid(goal, variables, [hypothesis])

    return SubsumptionPlan(
        "prover",
        f"{expr_to_str(hypothesis)} ==> {expr_to_str(goal)}",
        obligation,
    )


def _conjoin(exprs: list[ast.Expr]) -> ast.Expr:
    if not exprs:
        true = ast.BoolLit(True)
        true.type = ty.BOOL
        return true
    result = exprs[0]
    for expr in exprs[1:]:
        result = ast.Binary("&&", result, expr)
        result.type = ty.BOOL
    return result
