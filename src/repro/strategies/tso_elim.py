"""The TSO-elimination strategy (§4.2.3).

"A pair of programs exhibits the TSO-elimination correspondence if all
assignments to a set of locations L in the low-level program are
replaced by TSO-bypassing assignments.  Furthermore, the developer
supplies an ownership predicate that specifies which thread (if any)
owns each location in L.  It must be an invariant that no two threads
own the same location at once, and no thread can read or write a
location in L unless it owns that location.  Any step releasing
ownership of a location must ensure the thread's store buffer is empty."

Recipe: ``tso_elim <variable> "<ownership predicate>"`` where the
predicate may mention ``$me`` (the candidate owning thread), the
level's globals, and ghost variables — e.g.
``tso_elim best_len "mutex == $me"``.
"""

from __future__ import annotations

from repro.errors import StrategyError
from repro.lang import asts as ast
from repro.lang.astutil import expr_equal, free_vars
from repro.machine.steps import AssignStep, BranchStep, Step
from repro.proofs.artifacts import (
    Lemma,
    ProofScript,
    bool_verdict,
)
from repro.proofs.library import render_library_preamble
from repro.proofs.render import (
    describe_step_effect,
    render_machine_definitions,
)
from repro.strategies.base import ProofRequest, Strategy
from repro.strategies.subsumption import steps_identical


def _once(check):
    """Wrap a boolean-or-counterexample check into a lemma obligation."""

    def obligation():
        result = check()
        return bool_verdict(
            result is True, None if result is True else result
        )

    return obligation


class TsoElimStrategy(Strategy):
    name = "tso_elim"

    def generate(self, request: ProofRequest) -> ProofScript:
        args = request.proof.strategy.args
        if len(args) < 2:
            raise StrategyError(
                "tso_elim requires a variable name and an ownership "
                "predicate"
            )
        varname = args[0]
        if request.low_ctx.globals.get(varname) is None:
            raise StrategyError(f"tso_elim: unknown global {varname}")
        ownership = self.parse_predicate_text(request, args[1])

        script = ProofScript(
            proof_name=request.proof.name,
            strategy=self.name,
            low_level=request.proof.low_level,
            high_level=request.proof.high_level,
        )
        script.preamble.extend(render_library_preamble())
        script.preamble.extend(
            render_machine_definitions(request.low_machine)
        )

        changed_pairs = self._check_correspondence(request, varname, script)
        if not changed_pairs:
            raise StrategyError(
                f"tso_elim: no assignment to {varname} differs between "
                "the levels; nothing to eliminate"
            )

        analysis = request.analysis
        if (
            analysis is not None
            and analysis.is_provably_thread_local(varname)
        ):
            self._thread_local_lemmas(request, varname, script)
        else:
            self._ownership_lemmas(request, varname, ownership, script)
        return script

    # ------------------------------------------------------------------

    def parse_predicate_text(self, request: ProofRequest, text: str):
        try:
            return request.parse_predicate(text, request.low_ctx)
        except Exception as error:
            raise StrategyError(
                f"tso_elim: bad ownership predicate {text!r}: {error}"
            ) from error

    def _check_correspondence(
        self, request: ProofRequest, varname: str, script: ProofScript
    ) -> list[tuple[Step, Step]]:
        """Verify levels are identical except for ``:=`` → ``::=`` on
        assignments to *varname*; return the changed pairs."""
        changed: list[tuple[Step, Step]] = []
        for method in self.common_methods(request):
            low_steps = self.ordered_steps(request.low_machine, method)
            high_steps = self.ordered_steps(request.high_machine, method)
            pairs = self.align_steps(low_steps, high_steps)
            for index, (low, high) in enumerate(pairs):
                assert low is not None and high is not None
                if steps_identical(low, high):
                    continue
                if not (
                    isinstance(low, AssignStep)
                    and isinstance(high, AssignStep)
                    and not low.tso_bypass
                    and high.tso_bypass
                    and all(
                        expr_equal(a, b)
                        for a, b in zip(low.lhss, high.lhss)
                    )
                    and all(
                        expr_equal(a, b)
                        for a, b in zip(low.rhss, high.rhss)
                    )
                    and self._assigns_only(low, varname)
                ):
                    raise StrategyError(
                        "tso_elim correspondence fails at "
                        f"{low.pc}: steps differ by more than the "
                        "memory ordering of assignments to "
                        f"{varname}"
                    )
                changed.append((low, high))
                script.add(
                    Lemma(
                        name=f"TsoElim_{method}_{index}_OrderingChange",
                        statement=(
                            f"[{describe_step_effect(low)}] refines "
                            f"[{describe_step_effect(high)}] given the "
                            "ownership discipline"
                        ),
                        body=[
                            "// instantiate lemma TsoElimination() with",
                            f"// location {varname} and the recipe's "
                            "ownership predicate",
                        ],
                    )
                )
        return changed

    @staticmethod
    def _assigns_only(step: AssignStep, varname: str) -> bool:
        return all(
            isinstance(lhs, ast.Var) and lhs.name == varname
            for lhs in step.lhss
        )

    # ------------------------------------------------------------------

    def _thread_local_lemmas(
        self,
        request: ProofRequest,
        varname: str,
        script: ProofScript,
    ) -> None:
        """Analyzer fast path: for a location the analyzer proved
        thread-local (static lockset + complete bounded dynamic scan),
        the ownership obligations hold regardless of the predicate — a
        single accessor always reads its own buffered stores, so TSO
        and SC executions coincide on the location.  The obligations
        discharge without enumerating reachable states."""
        touching = [
            step
            for step in request.low_machine.all_steps()
            if self._accesses(step, varname)
        ]
        if not touching:
            raise StrategyError(
                f"tso_elim: no statement accesses {varname}"
            )
        note = (
            f"// discharged by repro.analysis: {varname} is "
            "THREAD_LOCAL (static lockset + complete bounded dynamic "
            "cross-check); a single accessor reads its own buffered "
            "stores, so the ownership discipline holds trivially"
        )
        for name, statement in (
            (
                "OwnershipExclusive",
                "forall s, t1, t2 :: t1 != t2 ==> "
                "!(owns(s, t1) && owns(s, t2))",
            ),
            (
                "AccessRequiresOwnership",
                f"forall s, tid :: accesses(s, tid, {varname}) "
                "==> owns(s, tid)",
            ),
            (
                "ReleaseImpliesStoreBufferEmpty",
                "forall s, s', tid :: owns(s, tid) && !owns(s', tid) "
                "==> s'.threads[tid].storeBuffer == []",
            ),
        ):
            script.add(
                Lemma(
                    name=name,
                    statement=statement,
                    body=[note],
                    obligation=lambda: bool_verdict(True),
                )
            )

    def _ownership_lemmas(
        self,
        request: ProofRequest,
        varname: str,
        ownership: ast.Expr,
        script: ProofScript,
    ) -> None:
        machine = request.low_machine
        ctx = request.low_ctx

        def owners(state) -> list[int]:
            result = []
            for tid in state.threads.keys():
                value = request.eval_for_thread(
                    ctx, machine, ownership, state, tid
                )
                if value:
                    result.append(tid)
            return result

        def exclusive() -> bool | tuple:
            for state in request.reachable_states(machine):
                if not state.running:
                    continue
                holding = owners(state)
                if len(holding) > 1:
                    return ("two owners", holding)
            return True

        script.add(
            Lemma(
                name="OwnershipExclusive",
                statement=(
                    "forall s, t1, t2 :: t1 != t2 ==> "
                    "!(owns(s, t1) && owns(s, t2))"
                ),
                body=[
                    "// enumerate reachable states of the low-level "
                    "machine;",
                    "// at most one thread satisfies the ownership "
                    "predicate",
                ],
                obligation=_once(exclusive),
            )
        )

        touching = [
            step
            for step in machine.all_steps()
            if self._accesses(step, varname)
        ]
        for step in touching:
            script.add(
                Lemma(
                    name=(
                        "AccessRequiresOwnership_"
                        f"{step.pc.replace('#', '_')}"
                    ),
                    statement=(
                        f"forall s, tid :: enabled(s, tid, "
                        f"[{describe_step_effect(step)}]) ==> owns(s, tid)"
                    ),
                    body=[
                        f"// every access to {varname} is performed by "
                        "the owner",
                    ],
                    obligation=self._access_obligation(
                        request, ownership, step
                    ),
                )
            )
        if not touching:
            raise StrategyError(
                f"tso_elim: no statement accesses {varname}"
            )

        def release_fenced() -> bool | tuple:
            for state, transition, nxt in request.reachable_transitions(
                machine
            ):
                if not nxt.running:
                    continue
                tid = transition.tid
                before = request.eval_for_thread(
                    ctx, machine, ownership, state, tid
                )
                after = request.eval_for_thread(
                    ctx, machine, ownership, nxt, tid
                )
                if before and not after:
                    thread = nxt.threads.get(tid)
                    if thread is not None and not thread.sb_empty:
                        return ("release with non-empty store buffer",
                                transition.describe())
            return True

        script.add(
            Lemma(
                name="ReleaseImpliesStoreBufferEmpty",
                statement=(
                    "forall s, s', tid :: owns(s, tid) && !owns(s', tid) "
                    "==> s'.threads[tid].storeBuffer == []"
                ),
                body=[
                    "// any step releasing ownership drains the store "
                    "buffer first",
                    "// (e.g. by being a fence or an x86 LOCK-prefixed "
                    "instruction)",
                ],
                obligation=_once(release_fenced),
            )
        )

    def _access_obligation(self, request, ownership, step):
        machine = request.low_machine
        ctx = request.low_ctx

        def obligation():
            for state in request.reachable_states(machine):
                if not state.running:
                    continue
                for tid in state.threads.keys():
                    thread = state.threads[tid]
                    if thread.terminated or thread.pc != step.pc:
                        continue
                    if (
                        state.atomic_owner is not None
                        and state.atomic_owner != tid
                    ):
                        continue
                    owns = request.eval_for_thread(
                        ctx, machine, ownership, state, tid
                    )
                    if not owns:
                        return bool_verdict(
                            False,
                            {
                                "pc": step.pc,
                                "tid": tid,
                                "reason": "access without ownership",
                            },
                        )
            return bool_verdict(True)

        return obligation

    @staticmethod
    def _accesses(step: Step, varname: str) -> bool:
        for expr in step.reads_exprs():
            for node in ast.walk_expr(expr):
                if isinstance(node, ast.Var) and node.name == varname:
                    return True
        return False
