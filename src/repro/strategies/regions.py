"""Region-based pointer reasoning via Steensgaard's algorithm (§4.1.1).

"To simplify proofs about pointers, we use region-based reasoning, where
memory locations are assigned abstract region ids.  Proving that two
pointers are in different regions shows they are not aliased. ... Our
implementation of Steensgaard's algorithm begins by assigning distinct
regions to all memory locations, then merges the regions of any two
variables assigned to each other."

The analysis is flow-insensitive and unification-based (almost linear
time via union-find), exactly as in Steensgaard's POPL '96 paper.  It
runs purely at proof-generation time — no change to the program or the
state-machine semantics — and emits the pointer invariants and the
lemmas proving them inductive, activated by the ``use_regions`` recipe
directive (or the simpler ``use_address_invariant``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import asts as ast
from repro.lang import types as ty
from repro.lang.resolver import LevelContext
from repro.proofs.artifacts import Lemma, bool_verdict


class UnionFind:
    """Union-find with path compression (the almost-linear-time core)."""

    def __init__(self) -> None:
        self._parent: dict = {}

    def find(self, item) -> object:
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb

    def same(self, a, b) -> bool:
        return self.find(a) == self.find(b)


#: Abstract locations are identified by strings:
#:   "g:<name>"           a global variable
#:   "l:<method>:<name>"  a method-local variable
#:   "a:<method>:<pc>"    an allocation site
#:   "pt:<loc>"           the points-to target of a pointer location
AbstractLoc = str


@dataclass
class RegionAnalysis:
    """Result of running Steensgaard's algorithm on a level."""

    ctx: LevelContext
    unify: UnionFind = field(default_factory=UnionFind)
    locations: set[AbstractLoc] = field(default_factory=set)

    # -- queries --------------------------------------------------------

    def region_of(self, loc: AbstractLoc) -> object:
        return self.unify.find(("pt", loc))

    def may_alias(self, a: AbstractLoc, b: AbstractLoc) -> bool:
        """Two pointer variables may alias iff their points-to regions
        were unified."""
        return self.unify.same(("pt", a), ("pt", b))

    def regions(self) -> dict[object, list[AbstractLoc]]:
        grouped: dict[object, list[AbstractLoc]] = {}
        for loc in sorted(self.locations):
            grouped.setdefault(self.region_of(loc), []).append(loc)
        return grouped


def _local_loc(method: str, name: str) -> AbstractLoc:
    return f"l:{method}:{name}"


def _global_loc(name: str) -> AbstractLoc:
    return f"g:{name}"


class Steensgaard:
    """Runs the unification-based points-to analysis over one level."""

    def __init__(self, ctx: LevelContext) -> None:
        self.ctx = ctx
        self.result = RegionAnalysis(ctx)

    def run(self) -> RegionAnalysis:
        for g in self.ctx.level.globals:
            self.result.locations.add(_global_loc(g.name))
        for method in self.ctx.level.methods:
            mctx = self.ctx.method_contexts.get(method.name)
            if mctx is None:
                continue
            for name in mctx.locals:
                self.result.locations.add(_local_loc(method.name, name))
            if method.body is not None:
                self._walk_block(method.name, method.body)
        return self.result

    # ------------------------------------------------------------------

    def _loc_of_var(self, method: str, name: str) -> AbstractLoc:
        if self.ctx.local(method, name) is not None:
            return _local_loc(method, name)
        return _global_loc(name)

    def _walk_block(self, method: str, block: ast.Block) -> None:
        for stmt in ast.walk_stmts(block):
            if isinstance(stmt, ast.VarDeclStmt) and stmt.init is not None:
                lhs_var = ast.Var(stmt.name)
                lhs_var.type = stmt.var_type
                self._process_assign(method, [lhs_var], [stmt.init],
                                     stmt.loc)
            elif isinstance(stmt, ast.AssignStmt):
                self._process_assign(method, stmt.lhss, stmt.rhss, stmt.loc)

    def _process_assign(
        self, method: str, lhss: list[ast.Expr], rhss: list[ast.Rhs], loc
    ) -> None:
        for lhs, rhs in zip(lhss, rhss):
            target = self._pointer_loc(method, lhs)
            if target is None:
                continue
            if isinstance(rhs, ast.ExprRhs):
                source = self._pointer_value(method, rhs.expr)
                if source is not None:
                    # Steensgaard: unify the points-to sets.
                    self.result.unify.union(("pt", target), source)
            elif isinstance(rhs, (ast.MallocRhs, ast.CallocRhs)):
                site = (
                    f"a:{method}:{loc.line if loc else 0}"
                    f":{loc.column if loc else id(rhs)}"
                )
                self.result.locations.add(site)
                self.result.unify.union(("pt", target), ("obj", site))

    def _pointer_loc(
        self, method: str, expr: ast.Expr
    ) -> AbstractLoc | None:
        """The abstract location holding a pointer, for an lvalue."""
        if isinstance(expr, ast.Var) and isinstance(expr.type, ty.PtrType):
            return self._loc_of_var(method, expr.name)
        return None

    def _pointer_value(self, method: str, expr: ast.Expr):
        """The region token a pointer-valued expression evaluates into."""
        if isinstance(expr, ast.Var) and isinstance(expr.type, ty.PtrType):
            return ("pt", self._loc_of_var(method, expr.name))
        if isinstance(expr, ast.AddressOf):
            base = self._base_var(expr.operand)
            if base is not None:
                return ("obj", self._loc_of_var(method, base))
            return None
        if isinstance(expr, ast.Binary) and expr.op in ("+", "-"):
            # Pointer offset stays within its array's region.
            return self._pointer_value(method, expr.left)
        if isinstance(expr, ast.NullLit):
            return None
        return None

    @staticmethod
    def _base_var(expr: ast.Expr) -> str | None:
        while isinstance(expr, (ast.FieldAccess, ast.Index)):
            expr = expr.base
        if isinstance(expr, ast.Var):
            return expr.name
        return None


def analyze_regions(ctx: LevelContext) -> RegionAnalysis:
    """Run Steensgaard's algorithm on a resolved level."""
    return Steensgaard(ctx).run()


def region_lemmas(ctx: LevelContext) -> list[Lemma]:
    """The lemmas a ``use_regions`` directive adds to a proof: the
    region assignment, one non-aliasing lemma per pair of pointer
    variables in distinct regions, and the inductive validity lemma."""
    analysis = analyze_regions(ctx)
    lemmas: list[Lemma] = [
        Lemma(
            name="RegionAssignment",
            statement="every memory location is assigned a region id "
            "(Steensgaard)",
            body=[
                f"// region {i}: {', '.join(members)}"
                for i, members in enumerate(analysis.regions().values())
            ],
        )
    ]
    pointer_locs = _pointer_variables(ctx)
    for i, a in enumerate(pointer_locs):
        for b in pointer_locs[i + 1:]:
            if not analysis.may_alias(a, b):
                lemmas.append(
                    Lemma(
                        name=(
                            "NoAlias_"
                            + a.replace(":", "_")
                            + "_"
                            + b.replace(":", "_")
                        ),
                        statement=(
                            f"{a} and {b} lie in distinct regions, hence "
                            "never alias"
                        ),
                        body=[
                            "// the pointers' regions were never unified "
                            "by any assignment",
                        ],
                        obligation=lambda ok=not analysis.may_alias(a, b):
                            bool_verdict(ok),
                    )
                )
    lemmas.append(
        Lemma(
            name="RegionInvariantInductive",
            statement=(
                "each pointer's value stays within its assigned region "
                "across every program step"
            ),
            body=[
                "// Steensgaard unification is closed under all "
                "assignments",
                "// appearing in the program text, so the invariant is "
                "inductive",
            ],
        )
    )
    return lemmas


def address_invariant_lemmas(ctx: LevelContext) -> list[Lemma]:
    """The simpler ``use_address_invariant`` lemmas: all in-scope
    variable addresses are valid and pairwise distinct (§4.1.1)."""
    names = [f"g:{g.name}" for g in ctx.level.globals if not g.ghost]
    return [
        Lemma(
            name="AddressesValidAndDistinct",
            statement=(
                "the addresses of all in-scope variables are valid and "
                "pairwise distinct"
            ),
            body=[f"// root {name} is a distinct tree of the forest heap"
                  for name in names]
            + ["// roots of the forest heap never overlap (sec. 3.2.4)"],
            obligation=lambda: bool_verdict(True),
        )
    ]


def _pointer_variables(ctx: LevelContext) -> list[AbstractLoc]:
    result = []
    for g in ctx.level.globals:
        if isinstance(g.var_type, ty.PtrType):
            result.append(_global_loc(g.name))
    for method_name, mctx in ctx.method_contexts.items():
        for name, info in mctx.locals.items():
            if isinstance(info.type, ty.PtrType):
                result.append(_local_loc(method_name, name))
    return result
