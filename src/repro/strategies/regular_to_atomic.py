"""The regular-to-atomic strategy (SNIPPETS.md: F*
``Strategies.RegularToAtomic``, microsoft/Armada experimental).

The transformation lifts a *regular* level to an *atomic* one: every
program counter is classified as **breaking** (thread-visible: shared
reads/writes under the active memory model, fences/RMWs, lock
operations, thread create/join, output, nondeterminism, loop heads,
method entries — ``armada_created_threads_initially_breaking``) or
**non-breaking**, and every run of steps from one breaking PC to the
next executes as a single atomic action.  The F* development encodes
each such run as an ``armada_atomic_path_info_t`` — the step list plus
either the atomic action it denotes or a successor table of
``armada_successor_info_t`` entries; :func:`atomic_paths` constructs
the same shape here from the classification in
:mod:`repro.explore.atomic` (which itself derives from the analyzer's
access footprints and the POR independence facts).

As a chain strategy, ``regular_to_atomic`` relates a level to itself
viewed at atomic granularity: the two levels must have identical
statements, and the proof consists of

* a ``PcBreakingCorrect`` lemma (the F* snippet's
  ``armada_pc_breaking_correct``): every non-breaking PC's steps
  re-audit as chainable, every method entry is breaking;
* one per-path simulation lemma: the atomic action's effect equals the
  composition of its constituent micro-steps — checked dynamically
  over a bounded sample of reachable states, with every micro-step's
  successor cross-checked against the compiled stepper, and every
  interior step verified to leave all thread-shared state (memory,
  store buffers, allocations, ghosts, log) untouched.  A deliberately
  unsound collapse (an interior PC that is actually breaking) is
  rejected by the static re-audit inside the obligation.

The strategy conservatively self-disables — emitting an identity-
refinement script instead of path lemmas — when the classification is
unavailable (C11 RA, footprint extraction failure).

:func:`collapse_proof_script` is the engine-side consumer
(``armada verify --atomic``): it merges consecutive obligation-bearing
lemmas whose PCs lie along a non-breaking run into one atomic-block
obligation that discharges the constituents in sequence — verdicts are
identical by construction (the same callables run, first failure
wins), but the farm schedules, caches, and reports strictly fewer
obligations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StateBudgetExceeded, StrategyError
from repro.explore.atomic import (
    AtomicClassification,
    classify_atomic,
    step_breaking_reason,
)
from repro.machine.program import StateMachine, Transition
from repro.machine.state import UBSignal
from repro.machine.steps import Step
from repro.proofs.artifacts import (
    Lemma,
    ProofScript,
    bool_verdict,
    proved,
)
from repro.proofs.render import (
    describe_step_effect,
    render_machine_definitions,
)
from repro.strategies.base import ProofRequest, Strategy
from repro.strategies.subsumption import steps_identical
from repro.verifier.prover import Verdict


@dataclass(frozen=True)
class AtomicSuccessorInfo:
    """Mirror of the F* ``armada_successor_info_t``: which step
    (``action_index`` into ``steps_at(pc)``) extends the path, and
    which entry of the path table it extends into."""

    action_index: int
    path_index: int


@dataclass(frozen=True)
class AtomicPathInfo:
    """Mirror of the F* ``armada_atomic_path_info_t``.

    ``pcs`` runs from the breaking start PC through the non-breaking
    interior to the PC the path stops at; ``steps`` are the micro
    steps taken.  A *complete* path (one that reached a breaking PC,
    a terminal PC, or a frame pop) carries its ``atomic_action_index``;
    an incomplete prefix instead carries the ``successors`` table —
    the ``either`` of the F* type."""

    pcs: tuple[str, ...]
    steps: tuple[Step, ...]
    atomic_action_index: int | None = None
    successors: tuple[AtomicSuccessorInfo, ...] = ()

    @property
    def start_pc(self) -> str:
        return self.pcs[0]

    @property
    def end_pc(self) -> str | None:
        return self.pcs[-1] if len(self.pcs) > 1 else None

    @property
    def complete(self) -> bool:
        return self.atomic_action_index is not None


#: Bounds on path enumeration.  Loop heads are breaking, so paths are
#: acyclic within a method and these bounds only guard classifier bugs.
MAX_PATH_STEPS = 128
MAX_PATHS = 4_096


def atomic_paths(
    machine: StateMachine,
    classification: AtomicClassification | None = None,
) -> list[AtomicPathInfo]:
    """Enumerate every atomic path of *machine*: all step sequences
    from a breaking PC through non-breaking PCs to the next breaking
    (or terminal) PC, with bounded branching at interior guards.  The
    returned table contains the incomplete prefixes too, each pointing
    at its extensions — the full successor-table shape."""
    cls = (classification if classification is not None
           else classify_atomic(machine))
    if not cls.enabled and cls.disabled is not None:
        raise StrategyError(
            f"regular_to_atomic: {cls.disabled}"
        )
    table: list[AtomicPathInfo] = []
    action_count = 0

    def extend(pcs: tuple[str, ...], steps: tuple[Step, ...]) -> int:
        """Record the path reaching ``pcs[-1]``; return its table index."""
        nonlocal action_count
        if len(table) >= MAX_PATHS:
            raise StrategyError(
                f"regular_to_atomic: more than {MAX_PATHS} atomic paths"
            )
        here = pcs[-1]
        stops = (
            len(steps) >= MAX_PATH_STEPS
            or cls.breaking.get(here, True)
            or not machine.steps_at(here)
        )
        index = len(table)
        if stops:
            table.append(AtomicPathInfo(
                pcs=pcs, steps=steps,
                atomic_action_index=action_count,
            ))
            action_count += 1
            return index
        table.append(None)  # type: ignore[arg-type]  # patched below
        successors = []
        for action_index, step in enumerate(machine.steps_at(here)):
            nxt = step.target if step.target is not None else here
            child = extend(pcs + (nxt,), steps + (step,))
            successors.append(
                AtomicSuccessorInfo(action_index, child)
            )
        table[index] = AtomicPathInfo(
            pcs=pcs, steps=steps, successors=tuple(successors),
        )
        return index

    for pc in sorted(machine.pcs):
        if not cls.breaking.get(pc, True):
            continue
        for step in machine.steps_at(pc):
            nxt = step.target
            if nxt is None:
                # Frame pops/terminals are single-step atomic actions.
                table.append(AtomicPathInfo(
                    pcs=(pc,), steps=(step,),
                    atomic_action_index=action_count,
                ))
                action_count += 1
                continue
            extend((pc, nxt), (step,))
    return table


def render_atomic_level(
    machine: StateMachine,
    classification: AtomicClassification,
    paths: list[AtomicPathInfo],
) -> list[str]:
    """The collapsed atomic level as rendered proof text: the breaking
    table (F* ``pc_index_breaking``) and one atomic action per
    complete path."""
    lines = [
        f"// Atomic level derived from {machine.level_name}:",
        "// pc_index_breaking :=",
    ]
    for pc in sorted(classification.breaking):
        verdict = classification.breaking[pc]
        why = classification.reasons.get(pc)
        note = f"  // {why}" if why else ""
        lines.append(f"//   {pc}: {str(verdict).lower()}{note}")
    for info in paths:
        if not info.complete:
            continue
        effects = "; ".join(
            describe_step_effect(step) for step in info.steps
        )
        lines.append(
            f"// atomic action {info.atomic_action_index}: "
            f"{info.start_pc} -> {info.pcs[-1]} "
            f"[{len(info.steps)} steps] {{ {effects} }}"
        )
    return lines


#: Bounded dynamic simulation: how many reachable start states each
#: path obligation replays (and how many nondet assignments of the
#: path's base step it tries per state).
SIMULATION_STATES = 32
SIMULATION_PARAMS = 4


def _shared_projection(state):
    """Everything any *other* thread (or an invariant over shared
    state) can observe: interior steps of an atomic path must leave
    all of it bit-identical."""
    return (
        state.memory, state.allocation, state.ghosts, state.log,
        state.termination,
        tuple(
            (tid, thread.pc, thread.frames)
            for tid, thread in sorted(state.threads.items())
        ),
    )


def _simulate_path(
    machine: StateMachine,
    info: AtomicPathInfo,
    request: ProofRequest,
) -> Verdict:
    """The per-path simulation check: from every sampled reachable
    state with a thread parked at the path's start PC, the composition
    of the micro-steps equals the atomic action's effect, every
    interior step changes nothing shared, and every successor agrees
    with the compiled stepper."""
    from repro.compiler.stepc import stepper_for

    stepper = stepper_for(machine)
    first = info.steps[0]
    method = machine.pcs[info.start_pc].method
    checked = 0
    states = request.reachable_states(machine)
    try:
        for state in states:
            if checked >= SIMULATION_STATES:
                break
            if state.termination is not None:
                continue
            for tid in sorted(state.threads.keys()):
                thread = state.threads[tid]
                if thread.pc != info.start_pc or thread.terminated:
                    continue
                if state.atomic_owner not in (None, tid):
                    continue
                assignments = machine.param_assignments(
                    first, method, state, tid
                )[:SIMULATION_PARAMS]
                for params in assignments:
                    verdict = _replay_micro_steps(
                        machine, stepper, info, state, tid, params
                    )
                    if not verdict.ok:
                        return verdict
                    checked += 1
    except StateBudgetExceeded:
        pass  # a bounded sample is all this check claims
    return Verdict("proved", assignments_checked=checked)


def _replay_micro_steps(
    machine, stepper, info, state, tid, params
) -> Verdict:
    cur = state
    fail = None
    for index, step in enumerate(info.steps):
        expected_pc = info.pcs[index] if index < len(info.pcs) else None
        thread = cur.threads.get(tid)
        if thread is None or thread.pc != expected_pc:
            break  # an earlier micro-step popped the frame or crashed
        step_params = dict(params) if index == 0 else {}
        try:
            enabled = step.enabled(machine, cur, tid, step_params)
        except UBSignal:
            enabled = True
        if not enabled:
            break  # blocked interior assume: the path stops here
        tr = Transition(
            tid, step,
            tuple(params) if index == 0 else (),
        )
        nxt = machine.next_state(cur, tr)
        if index > 0 and nxt.termination is None:
            before = _without_thread(_shared_projection(cur), tid)
            after = _without_thread(_shared_projection(nxt), tid)
            if before != after:
                fail = {
                    "path": info.pcs,
                    "micro_step": index,
                    "reason": "interior step changed shared state",
                }
                break
        if stepper is not None:
            compiled = _compiled_successor(stepper, cur, tid, step, tr)
            if compiled is not None and compiled != nxt:
                fail = {
                    "path": info.pcs,
                    "micro_step": index,
                    "reason": (
                        "compiled stepper disagrees with the "
                        "interpreted micro-step"
                    ),
                }
                break
        cur = nxt
        if cur.termination is not None:
            break
    if fail is not None:
        return bool_verdict(False, fail)
    return proved()


def _without_thread(projection, tid):
    memory, allocation, ghosts, log, termination, threads = projection
    return (
        memory, allocation, ghosts, log, termination,
        tuple(t for t in threads if t[0] != tid),
    )


def _compiled_successor(stepper, state, tid, step, tr):
    """The compiled stepper's successor for exactly this transition
    (``None`` when the stepper does not enumerate it, e.g. the thread
    is not schedulable at *state*)."""
    try:
        pairs = stepper.fn(state)
    except Exception:
        return None
    for candidate, nxt in pairs:
        if (
            candidate.tid == tid
            and candidate.step is step
            and tuple(candidate.params) == tuple(tr.params)
        ):
            return nxt
    return None


class RegularToAtomicStrategy(Strategy):
    """Regular-to-atomic: collapse non-breaking runs into atomic
    actions, discharged by per-path simulation."""

    name = "regular_to_atomic"

    def generate(self, request: ProofRequest) -> ProofScript:
        script = ProofScript(
            proof_name=request.proof.name,
            strategy=self.name,
            low_level=request.proof.low_level,
            high_level=request.proof.high_level,
        )
        script.preamble.extend(
            render_machine_definitions(request.low_machine)
        )
        self._require_identical(request)
        machine = request.low_machine
        cls = classify_atomic(machine)
        if not cls.enabled:
            return self._disabled_script(script, request, cls)
        paths = atomic_paths(machine, cls)
        script.preamble.extend(render_atomic_level(machine, cls, paths))
        script.add(self._breaking_correct_lemma(machine, cls))
        for info in paths:
            if not info.complete or len(info.steps) < 2:
                continue
            script.add(self._path_lemma(machine, request, info))
        return script

    # ------------------------------------------------------------------

    def _require_identical(self, request: ProofRequest) -> None:
        for method in self.common_methods(request):
            low_steps = self.ordered_steps(request.low_machine, method)
            high_steps = self.ordered_steps(request.high_machine, method)
            if len(low_steps) != len(high_steps) or not all(
                steps_identical(low, high)
                for low, high in zip(low_steps, high_steps)
            ):
                raise StrategyError(
                    "regular_to_atomic: the atomic level must carry "
                    "identical statements (it is the same program at "
                    f"coarser granularity); method {method} differs"
                )

    def _disabled_script(
        self,
        script: ProofScript,
        request: ProofRequest,
        cls: AtomicClassification,
    ) -> ProofScript:
        """Conservative self-disable: no collapse, identity refinement
        (the levels are statement-identical, so each statement maps to
        itself and the refinement function is the identity)."""
        reason = cls.disabled or "no non-breaking pcs"
        script.definitional(
            "AtomicLiftDisabled",
            f"the atomic collapse is disabled: {reason}",
            ["// every pc stays breaking; the levels coincide"],
        )
        script.add(Lemma(
            name="IdentityRefinement",
            statement=(
                f"{request.proof.low_level} and "
                f"{request.proof.high_level} have identical statements, "
                "so the identity function is a refinement"
            ),
            body=["// checked statement-by-statement by the strategy"],
            obligation=lambda: proved(),
        ))
        return script

    def _breaking_correct_lemma(
        self, machine: StateMachine, cls: AtomicClassification
    ) -> Lemma:
        def obligation() -> Verdict:
            from repro.analysis.accesses import extract_accesses
            from repro.analysis.independence import step_independence

            access_map = extract_accesses(machine.ctx, machine)
            facts = step_independence(machine.ctx, machine, access_map)
            for entry in machine.method_entry.values():
                if not cls.breaking.get(entry, False):
                    return bool_verdict(False, {
                        "pc": entry,
                        "reason": "method entry classified non-breaking",
                    })
            for pc in cls.chain_pcs:
                if pc in cls.loop_heads:
                    return bool_verdict(False, {
                        "pc": pc,
                        "reason": "loop head classified non-breaking",
                    })
                for step in machine.steps_at(pc):
                    reason = step_breaking_reason(
                        step, facts, access_map
                    )
                    if reason is not None:
                        return bool_verdict(False, {
                            "pc": pc, "reason": reason,
                        })
            return proved()

        total = len(cls.breaking)
        return Lemma(
            name="PcBreakingCorrect",
            statement=(
                "armada_pc_breaking_correct: every non-breaking pc "
                "holds only chainable local steps, every created "
                "thread starts at a breaking pc "
                f"({total - len(cls.chain_pcs)}/{total} breaking)"
            ),
            body=[
                "// re-audits the classification from fresh analyzer",
                "// footprints and POR independence facts",
            ],
            obligation=obligation,
        )

    def _path_lemma(
        self,
        machine: StateMachine,
        request: ProofRequest,
        info: AtomicPathInfo,
    ) -> Lemma:
        cls = classify_atomic(machine)

        def obligation() -> Verdict:
            # Static re-audit first: a collapse through a pc that is
            # actually breaking is unsound and must be rejected before
            # any dynamic sampling can vacuously pass it.
            for pc in info.pcs[1:-1]:
                if cls.breaking.get(pc, True):
                    return bool_verdict(False, {
                        "path": info.pcs,
                        "pc": pc,
                        "reason": cls.reasons.get(
                            pc, "interior pc is breaking"
                        ),
                    })
            return _simulate_path(machine, info, request)

        effects = "; ".join(
            describe_step_effect(step) for step in info.steps
        )
        return Lemma(
            name=(
                f"AtomicPathSimulates_{info.atomic_action_index}"
            ),
            statement=(
                f"atomic action {info.atomic_action_index} "
                f"({info.start_pc} -> {info.pcs[-1]}) equals the "
                f"composition of its {len(info.steps)} micro-steps: "
                f"{{ {effects} }}"
            ),
            body=[
                "// bounded per-path simulation over sampled reachable",
                "// states; interior steps leave shared state intact;",
                "// each micro-step cross-checked against the compiled",
                "// stepper",
            ],
            obligation=obligation,
            pc=info.start_pc,
        )


# ---------------------------------------------------------------------------
# Engine-side collapse (``armada verify --atomic``)


def collapse_proof_script(
    script: ProofScript,
    classification: AtomicClassification,
) -> int:
    """Merge consecutive obligation-bearing lemmas along non-breaking
    runs into single atomic-block lemmas; returns how many lemmas were
    absorbed.  A block opens at any pc-tagged obligation lemma and
    extends while the following lemmas' PCs are non-breaking — the
    lemma order of the statement-aligned strategies follows program
    order, so a block is exactly one atomic path's statement run.
    Verdict-identical by construction: the merged obligation runs the
    member obligations in order and returns the first failure."""
    if not classification.enabled:
        return 0
    breaking = classification.breaking
    chain = classification.chain_pcs
    out: list[Lemma] = []
    block: list[Lemma] = []

    def flush() -> None:
        if len(block) >= 2:
            out.append(_merge_block(block))
        else:
            out.extend(block)
        block.clear()

    for lemma in script.lemmas:
        mergeable = (
            lemma.obligation is not None
            and lemma.pc is not None
            and lemma.pc in breaking
        )
        if not mergeable:
            flush()
            out.append(lemma)
        elif block and lemma.pc in chain:
            block.append(lemma)
        else:
            flush()
            block.append(lemma)
    flush()
    absorbed = len(script.lemmas) - len(out)
    script.lemmas[:] = out
    return absorbed


def _merge_block(block: list[Lemma]) -> Lemma:
    members = tuple(block)
    first = members[0]

    def obligation() -> Verdict:
        last: Verdict = proved()
        for member in members:
            verdict = member.obligation()
            if not verdict.ok:
                cex = dict(verdict.counterexample or {})
                cex.setdefault("lemma", member.name)
                return Verdict(verdict.status, cex,
                               verdict.assignments_checked)
            last = verdict
        return last

    body = [
        f"// atomic block: {len(members)} consecutive statements on a",
        "// non-breaking run discharge as one obligation:",
    ]
    for member in members:
        body.append(f"//   {member.name}: {member.statement}")
    return Lemma(
        name=f"AtomicBlock_{first.name}_x{len(members)}",
        statement=(
            f"the atomic block starting at {first.pc} discharges "
            f"{len(members)} statement obligations "
            f"({', '.join(m.name for m in members)})"
        ),
        body=body,
        obligation=obligation,
        customization=[
            line for member in members for line in member.customization
        ],
        pc=first.pc,
    )
