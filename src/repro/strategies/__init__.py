"""The eight refinement-proof strategies (§4.2) plus region reasoning."""

from repro.strategies.base import ProofRequest, Strategy  # noqa: F401
from repro.strategies.registry import (  # noqa: F401
    available_strategies,
    lookup,
    register,
)
