"""The weakening strategy (§4.2.4) and its nondeterministic variant
(§4.2.5).

Two programs exhibit the *weakening correspondence* if they match except
for certain statements where the high-level version admits a superset of
behaviours of the low-level version.  "The strategy generates a lemma
for each statement in the low-level program proving that, considered in
isolation, it exhibits a subset of behaviors of the corresponding
statement of the high-level program."

*Non-deterministic weakening* is the special case where the high-level
transition's nondeterminism is an existentially-quantified variable
(e.g. a guard replaced by ``*``): "Proving non-deterministic weakening
requires demonstrating a witness for the existentially-quantified
variable.  Our strategy uses various heuristics to identify this
witness" — the witness is the low-level expression itself, recorded in
the lemma body.
"""

from __future__ import annotations

from repro.errors import StrategyError
from repro.proofs.artifacts import Lemma, ProofScript
from repro.proofs.render import (
    describe_step_effect,
    render_machine_definitions,
    step_constructor_name,
)
from repro.strategies.base import ProofRequest, Strategy
from repro.strategies.subsumption import check_subsumption


class WeakeningStrategy(Strategy):
    """Weakening: statement-by-statement behaviour-subset lemmas."""

    name = "weakening"
    allow_nondet = False

    def generate(self, request: ProofRequest) -> ProofScript:
        script = ProofScript(
            proof_name=request.proof.name,
            strategy=self.name,
            low_level=request.proof.low_level,
            high_level=request.proof.high_level,
        )
        script.preamble.extend(
            render_machine_definitions(request.low_machine)
        )
        script.preamble.extend(
            render_machine_definitions(request.high_machine)
        )
        used_nondet = False
        allow_swaps = request.proof.has_directive("use_regions")
        for method in self.common_methods(request):
            low_steps = self.ordered_steps(request.low_machine, method)
            high_steps = self.ordered_steps(
                request.high_machine, method
            )
            items = self._align_with_swaps(
                low_steps, high_steps, allow_swaps
            )
            for index, item in enumerate(items):
                if item[0] == "swap":
                    _, low_pair, high_pair = item
                    script.add(
                        self._swap_lemma(
                            request, method, index, low_pair, high_pair
                        )
                    )
                    continue
                _, low, high = item
                plan = check_subsumption(
                    low, high, request, allow_nondet=self.allow_nondet
                )
                if plan.kind == "nondet":
                    used_nondet = True
                lemma = Lemma(
                    name=f"Statement_{method}_{index}_Weakens",
                    statement=(
                        "forall s, tid, step :: behaviors of "
                        f"[{describe_step_effect(low)}] are a subset of "
                        f"behaviors of [{describe_step_effect(high)}]"
                    ),
                    body=self._lemma_body(low, high, plan),
                    obligation=plan.obligation,
                    pc=low.pc,
                )
                if plan.kind == "global":
                    script.global_checks.append(
                        f"{lemma.name}: {plan.description}"
                    )
                script.add(lemma)
        self._check_nondet_usage(used_nondet)
        return script

    # ------------------------------------------------------------------
    # statement reordering justified by alias analysis (§6.2)

    def _align_with_swaps(self, low_steps, high_steps, allow_swaps):
        """Pair the step lists, detecting adjacent transpositions
        (``*p := a; *q := b`` vs ``*q := b; *p := a``) when the recipe
        enables region reasoning."""
        from repro.strategies.subsumption import steps_identical

        items = []
        i = j = 0
        while i < len(low_steps) or j < len(high_steps):
            low = low_steps[i] if i < len(low_steps) else None
            high = high_steps[j] if j < len(high_steps) else None
            if low is None or high is None:
                raise StrategyError(
                    "weakening: step counts disagree between the levels"
                )
            if (
                allow_swaps
                and not steps_identical(low, high)
                and i + 1 < len(low_steps)
                and j + 1 < len(high_steps)
                and steps_identical(low, high_steps[j + 1])
                and steps_identical(low_steps[i + 1], high)
            ):
                items.append(
                    ("swap", (low, low_steps[i + 1]),
                     (high, high_steps[j + 1]))
                )
                i += 2
                j += 2
                continue
            if not self._compatible(low, high):
                from repro.strategies.base import _describe

                raise StrategyError(
                    "programs do not exhibit the weakening "
                    f"correspondence: cannot match {_describe(low)} with "
                    f"{_describe(high)}"
                )
            items.append(("pair", low, high))
            i += 1
            j += 1
        return items

    def _swap_lemma(self, request, method, index, low_pair, high_pair):
        """A reordered adjacent statement pair: sound when the written
        locations lie in distinct regions (Steensgaard) and neither
        statement reads what the other writes."""
        from repro.lang import asts as ast
        from repro.lang.astutil import free_vars
        from repro.machine.steps import AssignStep
        from repro.proofs.artifacts import bool_verdict
        from repro.strategies.regions import analyze_regions

        first, second = low_pair

        def target_region_key(step):
            if not isinstance(step, AssignStep) or len(step.lhss) != 1:
                return None
            lhs = step.lhss[0]
            if isinstance(lhs, ast.Deref) and isinstance(
                lhs.operand, ast.Var
            ):
                return f"l:{method}:{lhs.operand.name}" \
                    if request.low_ctx.local(method, lhs.operand.name) \
                    else f"g:{lhs.operand.name}"
            if isinstance(lhs, ast.Var):
                return f"var:{lhs.name}"
            return None

        def obligation():
            a = target_region_key(first)
            b = target_region_key(second)
            if a is None or b is None:
                return bool_verdict(False, "unsupported swap shape")
            if a.startswith("var:") and b.startswith("var:"):
                return bool_verdict(a != b, {"targets": (a, b)})
            if a.startswith("var:") or b.startswith("var:"):
                return bool_verdict(True)
            analysis = analyze_regions(request.low_ctx)
            if analysis.may_alias(a, b):
                return bool_verdict(
                    False,
                    {"reason": "pointers may alias", "targets": (a, b)},
                )
            # Neither statement may read the other's written value.
            reads = set()
            for step in (first, second):
                for rhs in step.rhss:
                    reads |= free_vars(rhs)
            writes = set()
            for step in (first, second):
                for lhs in step.lhss:
                    writes |= free_vars(lhs)
            if reads & writes:
                return bool_verdict(
                    False, {"read-write overlap": sorted(reads & writes)}
                )
            return bool_verdict(True)

        return Lemma(
            name=f"ReorderedStatements_{method}_{index}",
            statement=(
                f"[{describe_step_effect(first)}] and "
                f"[{describe_step_effect(second)}] commute: their targets "
                "lie in distinct regions"
            ),
            body=[
                "// Steensgaard's analysis assigns the two pointers to",
                "// distinct regions, so the writes cannot alias and the",
                "// reversed assignments reach the same state (sec. 6.2)",
            ],
            obligation=obligation,
            pc=first.pc,
        )

    def _check_nondet_usage(self, used_nondet: bool) -> None:
        if used_nondet and not self.allow_nondet:  # pragma: no cover
            raise StrategyError(
                "weakening pair requires nondet_weakening"
            )

    @staticmethod
    def _compatible(low, high) -> bool:
        from repro.machine.steps import (
            AssignStep,
            BranchStep,
            SomehowStep,
        )

        if isinstance(low, AssignStep) and isinstance(high, SomehowStep):
            return True
        if type(low) is not type(high):
            return False
        if isinstance(low, BranchStep) and low.when != high.when:
            return False
        return True

    def _lemma_body(self, low, high, plan) -> list[str]:
        body = [
            f"// low step:  {step_constructor_name(low)} at {low.pc}",
            f"// high step: {step_constructor_name(high)} at {high.pc}",
            f"// discharge: {plan.kind} — {plan.description}",
            "var s' := NextState(s, tid, step);",
        ]
        for witness in plan.witnesses:
            body.append(f"// {witness}")
        for var in low.nondet_vars():
            body.append(
                f"// case split over encapsulated parameter {var.key}"
            )
        body.append(
            "assert StepRelation_Low(s, s') ==> StepRelation_High(s, s');"
        )
        return body


class NondetWeakeningStrategy(WeakeningStrategy):
    """Weakening where the high level introduces ``*`` nondeterminism;
    lemmas demonstrate witnesses for the existential (§4.2.5)."""

    name = "nondet_weakening"
    allow_nondet = True
