"""Strategy registry.

"Verification experts can extend the framework with new strategies and
library lemmas.  Developers can leverage these new strategies via
recipes."  Registering a strategy makes its recipe name available; the
framework stays sound because every lemma a strategy emits must still
pass the verifier (§4).
"""

from __future__ import annotations

from repro.errors import StrategyError
from repro.strategies.base import Strategy

_REGISTRY: dict[str, type[Strategy]] = {}


def register(strategy_class: type[Strategy]) -> type[Strategy]:
    """Register a strategy class under its recipe name.  Usable as a
    decorator by extensions."""
    if not strategy_class.name:
        raise ValueError("strategy classes must define a recipe name")
    _REGISTRY[strategy_class.name] = strategy_class
    return strategy_class


def lookup(name: str) -> Strategy:
    _ensure_builtins()
    strategy_class = _REGISTRY.get(name)
    if strategy_class is None:
        known = ", ".join(sorted(_REGISTRY))
        raise StrategyError(
            f"unknown proof strategy {name!r}; available: {known}"
        )
    return strategy_class()


def available_strategies() -> list[str]:
    _ensure_builtins()
    return sorted(_REGISTRY)


_LOADED = False


def _ensure_builtins() -> None:
    """Import the nine built-in strategies on first use."""
    global _LOADED
    if _LOADED:
        return
    from repro.strategies import (  # noqa: F401
        assume_intro,
        combining,
        reduction,
        regular_to_atomic,
        tso_elim,
        var_intro,
        var_hiding,
        weakening,
    )
    from repro.strategies.assume_intro import AssumeIntroStrategy
    from repro.strategies.combining import CombiningStrategy
    from repro.strategies.reduction import ReductionStrategy
    from repro.strategies.regular_to_atomic import (
        RegularToAtomicStrategy,
    )
    from repro.strategies.tso_elim import TsoElimStrategy
    from repro.strategies.var_hiding import VarHidingStrategy
    from repro.strategies.var_intro import VarIntroStrategy
    from repro.strategies.weakening import (
        NondetWeakeningStrategy,
        WeakeningStrategy,
    )

    for cls in (
        WeakeningStrategy,
        NondetWeakeningStrategy,
        TsoElimStrategy,
        ReductionStrategy,
        AssumeIntroStrategy,
        CombiningStrategy,
        VarIntroStrategy,
        VarHidingStrategy,
        RegularToAtomicStrategy,
    ):
        register(cls)
    _LOADED = True
