"""The variable-introduction strategy (§4.2.7).

"A pair of programs exhibits the variable-introduction correspondence
if they differ only in that the high-level program has variables (and
assignments to those variables) that do not appear in the low-level
program.  The main use of this is to introduce ghost variables that
abstract the concrete state of the program."

The refinement function maps each low-level state to the high-level
state whose introduced variables take the values dictated by the
introduced assignments; because every matched statement is identical,
the introduced variables cannot influence the pre-existing state, so
the mapping is a simulation by construction.  The generated lemmas are
one per introduced assignment (defining the refinement function's
extension) plus one identity lemma per matched statement pair.
"""

from __future__ import annotations

from repro.errors import StrategyError
from repro.lang import asts as ast
from repro.machine.steps import AssignStep, Step
from repro.proofs.artifacts import Lemma, ProofScript, bool_verdict
from repro.proofs.render import (
    describe_step_effect,
    render_machine_definitions,
)
from repro.strategies.base import (
    ProofRequest,
    Strategy,
    skip_aware_compatible,
)
from repro.strategies.subsumption import steps_identical


def introduced_variables(request: ProofRequest) -> set[str]:
    """Global variables present in the high level but not the low."""
    low_names = set(request.low_ctx.globals)
    return {
        name for name in request.high_ctx.globals if name not in low_names
    }


class VarIntroStrategy(Strategy):
    name = "var_intro"

    def generate(self, request: ProofRequest) -> ProofScript:
        script = ProofScript(
            proof_name=request.proof.name,
            strategy=self.name,
            low_level=request.proof.low_level,
            high_level=request.proof.high_level,
        )
        script.preamble.extend(
            render_machine_definitions(request.high_machine)
        )
        new_vars = introduced_variables(request)
        if not new_vars:
            raise StrategyError(
                "var_intro: the high level introduces no new variables"
            )
        for name in sorted(new_vars):
            decl = request.high_ctx.globals[name]
            if not decl.ghost and not self._is_history_only(request, name):
                # Introduced concrete variables are allowed only if used
                # like ghosts (assigned, never read by old statements).
                raise StrategyError(
                    f"var_intro: introduced variable {name} must be ghost "
                    "or assignment-only"
                )

        introduced_assigns = 0
        for method in self.common_methods(request):
            low_steps = self.ordered_steps(request.low_machine, method)
            high_steps = self.ordered_steps(request.high_machine, method)
            skip_high = lambda s: self._introduced_assign(s, new_vars)
            pairs = self.align_steps(
                low_steps,
                high_steps,
                skip_high=skip_high,
                compatible=skip_aware_compatible(skip_high=skip_high),
            )
            for index, (low, high) in enumerate(pairs):
                if low is None:
                    assert isinstance(high, AssignStep)
                    introduced_assigns += 1
                    script.add(
                        Lemma(
                            name=(
                                f"RefinementFunctionExtension_{method}_"
                                f"{index}"
                            ),
                            statement=(
                                "the refinement function maps the low "
                                "state across the introduced update "
                                f"[{describe_step_effect(high)}]"
                            ),
                            body=[
                                "// introduced-variable update: stutter "
                                "step on the low side,",
                                "// the high side executes "
                                f"[{describe_step_effect(high)}]",
                            ],
                        )
                    )
                    continue
                assert high is not None
                if not steps_identical(low, high):
                    raise StrategyError(
                        "var_intro correspondence fails at "
                        f"{low.pc}: statements differ beyond introduced "
                        "variables"
                    )
                script.add(
                    Lemma(
                        name=f"StatementUnchanged_{method}_{index}",
                        statement=(
                            f"[{describe_step_effect(low)}] is identical "
                            "at both levels"
                        ),
                        body=[
                            "// matched pair: introduced variables do "
                            "not occur here",
                        ],
                        obligation=lambda ok=steps_identical(low, high):
                            bool_verdict(ok),
                        pc=low.pc,
                    )
                )
        if introduced_assigns == 0:
            raise StrategyError(
                "var_intro: new variables are never assigned; use "
                "weakening instead"
            )
        return script

    @staticmethod
    def _introduced_assign(step: Step, new_vars: set[str]) -> bool:
        """Is *step* an assignment whose every target is introduced?"""
        from repro.strategies.var_hiding import lhs_root

        if not isinstance(step, AssignStep) or not step.lhss:
            return False
        return all(
            (root := lhs_root(lhs)) is not None and root in new_vars
            for lhs in step.lhss
        )

    @staticmethod
    def _is_history_only(request: ProofRequest, name: str) -> bool:
        """A non-ghost introduced variable is acceptable when no matched
        (pre-existing) statement reads it; the aligner enforces that, so
        here we simply allow it."""
        return True
