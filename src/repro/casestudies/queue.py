"""The Queue case study (§6.4).

A pure port of the liblfds bounded single-producer single-consumer
lock-free queue ("used at AT&T, Red Hat, and Xen"): a power-of-two ring
with separate read/write indices, element writes published by the index
update (ordered by TSO's FIFO store buffer plus a fence, as liblfds's
barriers do).  Like the Armada port, it uses modulo operators instead
of bitmask operators.

Goal, per the paper: "prove that the enqueue and dequeue methods behave
like abstract versions in which enqueue adds to the back of a sequence
and dequeue removes the first entry of that sequence, as long as at
most one thread of each type is active."

The chain uses eight levels / seven proof transformations, mirroring
the paper's eight: introduce the abstract ghost queue (var_intro),
cement the inductive invariant linking it to the ring (assume_intro —
"most of this work involved identifying the inductive invariant"),
re-express the observable log over the abstract queue (weakening — "the
fourth of which does the key weakening"), erase the concrete reads
(nondet_weakening), then hide the implementation variables one at a
time (var_hiding x3 — "the final four levels hide the implementation
variables").

Paper numbers: implementation 70 SLOC; recipes totalling ~120 SLOC;
24,540 generated SLOC; final abstract level 46 SLOC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.casestudies.common import CaseStudy


@dataclass
class _Shape:
    """Which concrete/ghost pieces are present at one level."""

    ghost_decl: bool = False
    ghost_updates: bool = False
    assume: bool = False
    abstract_log: bool = False
    nondet_reads: bool = False
    elements: bool = True
    write_index: bool = True
    read_index: bool = True


def _render(name: str, s: _Shape) -> str:
    decls = ["  var got_total: uint32 := 0;"]
    if s.elements:
        decls.append("  var elements: uint64[4];")
    if s.write_index:
        decls.append("  var write_index: uint32 := 0;")
    if s.read_index:
        decls.append("  var read_index: uint32 := 0;")
    if s.ghost_decl:
        decls.append("  ghost var q: seq<uint64> := [];")

    prod_wi = "*" if s.nondet_reads else "write_index"
    prod_ri = "*" if s.nondet_reads else "read_index"
    prod_guard = "*" if s.nondet_reads else "(wi + 1) % 4 != ri"
    cons_ri = "*" if s.nondet_reads else "read_index"
    cons_wi = "*" if s.nondet_reads else "write_index"
    cons_guard = "*" if s.nondet_reads else "ri != wi"
    elem_read = "*" if s.nondet_reads else "elements[ri]"

    producer_body = []
    producer_body.append(f"      wi := {prod_wi};")
    producer_body.append(f"      ri := {prod_ri};")
    producer_body.append(f"      if ({prod_guard}) {{")
    if s.elements:
        producer_body.append("        elements[wi] := v;")
    producer_body.append("        fence();")
    if s.ghost_updates:
        producer_body.append("        q := q + [v];")
    if s.write_index:
        producer_body.append("        write_index := (wi + 1) % 4;")
    producer_body.append("        v := v + 1;")
    producer_body.append("      }")

    consumer_body = []
    consumer_body.append(f"      ri := {cons_ri};")
    consumer_body.append(f"      wi := {cons_wi};")
    consumer_body.append(f"      if ({cons_guard}) {{")
    consumer_body.append(f"        x := {elem_read};")
    if s.assume:
        consumer_body.append(
            "        assume len(q) > 0 && first(q) == x;"
        )
    log_arg = "first(q)" if s.abstract_log else "x"
    consumer_body.append(f"        print_uint64({log_arg});")
    if s.ghost_updates:
        consumer_body.append("        q := drop(q, 1);")
    if s.read_index:
        consumer_body.append("        read_index := (ri + 1) % 4;")
    consumer_body.append("        got := got + 1;")
    consumer_body.append("      }")

    producer = "\n".join(producer_body)
    consumer = "\n".join(consumer_body)
    return f"""
level {name} {{
{chr(10).join(decls)}
  void producer() {{
    var v: uint64 := 1;
    var wi: uint32 := 0;
    var ri: uint32 := 0;
    while v <= 2 {{
{producer}
    }}
  }}
  void main() {{
    var t: uint64 := 0;
    var got: uint32 := 0;
    var ri: uint32 := 0;
    var wi: uint32 := 0;
    var x: uint64 := 0;
    t := create_thread producer();
    while got < 2 {{
{consumer}
    }}
    join t;
    got_total := got;
    print_uint32(got_total);
  }}
}}
"""


LEVELS = [
    ("QueueImpl", _render("QueueImpl", _Shape())),
    (
        "QueueGhost",
        _render("QueueGhost", _Shape(ghost_decl=True, ghost_updates=True)),
    ),
    (
        "QueueAssume",
        _render(
            "QueueAssume",
            _Shape(ghost_decl=True, ghost_updates=True, assume=True),
        ),
    ),
    (
        "QueueAbstractLog",
        _render(
            "QueueAbstractLog",
            _Shape(
                ghost_decl=True, ghost_updates=True, assume=True,
                abstract_log=True,
            ),
        ),
    ),
    (
        "QueueNondet",
        _render(
            "QueueNondet",
            _Shape(
                ghost_decl=True, ghost_updates=True, assume=True,
                abstract_log=True, nondet_reads=True,
            ),
        ),
    ),
    (
        "QueueHideElements",
        _render(
            "QueueHideElements",
            _Shape(
                ghost_decl=True, ghost_updates=True, assume=True,
                abstract_log=True, nondet_reads=True, elements=False,
            ),
        ),
    ),
    (
        "QueueHideWriteIndex",
        _render(
            "QueueHideWriteIndex",
            _Shape(
                ghost_decl=True, ghost_updates=True, assume=True,
                abstract_log=True, nondet_reads=True, elements=False,
                write_index=False,
            ),
        ),
    ),
    (
        "QueueAbstract",
        _render(
            "QueueAbstract",
            _Shape(
                ghost_decl=True, ghost_updates=True, assume=True,
                abstract_log=True, nondet_reads=True, elements=False,
                write_index=False, read_index=False,
            ),
        ),
    ),
]

RECIPES = [
    (
        "QueueIntroducesAbstractQueue",
        "proof QueueIntroducesAbstractQueue {\n"
        "  refinement QueueImpl QueueGhost\n"
        "  var_intro\n"
        "}\n",
    ),
    (
        "QueueCementsInvariant",
        "proof QueueCementsInvariant {\n"
        "  refinement QueueGhost QueueAssume\n"
        "  assume_intro\n"
        '  invariant "len(q) <= 4"\n'
        "}\n",
    ),
    (
        "QueueLogsAbstractly",
        "proof QueueLogsAbstractly {\n"
        "  refinement QueueAssume QueueAbstractLog\n"
        "  weakening\n"
        "}\n",
    ),
    (
        "QueueErasesConcreteReads",
        "proof QueueErasesConcreteReads {\n"
        "  refinement QueueAbstractLog QueueNondet\n"
        "  nondet_weakening\n"
        "}\n",
    ),
    (
        "QueueHidesElements",
        "proof QueueHidesElements {\n"
        "  refinement QueueNondet QueueHideElements\n"
        "  var_hiding\n"
        "}\n",
    ),
    (
        "QueueHidesWriteIndex",
        "proof QueueHidesWriteIndex {\n"
        "  refinement QueueHideElements QueueHideWriteIndex\n"
        "  var_hiding\n"
        "}\n",
    ),
    (
        "QueueHidesReadIndex",
        "proof QueueHidesReadIndex {\n"
        "  refinement QueueHideWriteIndex QueueAbstract\n"
        "  var_hiding\n"
        "}\n",
    ),
]


def get() -> CaseStudy:
    return CaseStudy(
        name="queue",
        description=(
            "liblfds bounded SPSC lock-free queue refined to an abstract "
            "sequence: enqueue appends, dequeue removes the head "
            "(sec. 6.4)"
        ),
        levels=LEVELS,
        recipes=RECIPES,
        paper_numbers={
            "implementation_sloc": 70,
            "transformations": 8,
            "generated_sloc": 24540,
            "final_level_sloc": 46,
        },
        max_states=400_000,
    )
