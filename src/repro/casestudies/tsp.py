"""The paper's running example (§2): a search for a good, but not
necessarily optimal, traveling-salesman solution.

The chain follows §2.2 exactly:

* ``Implementation`` has the benign race: the first ``len < best_len``
  guard reads ``best_len`` without holding the mutex.
* ``ArbitraryGuard`` (Figure 3) relaxes that guard to the arbitrary
  choice ``*``; the recipe (Figure 4) uses (nondeterministic) weakening.
* ``BestLenSequential`` (Figure 5) upgrades the ``best_len`` update to a
  TSO-bypassing ``::=`` assignment; the recipe (Figure 6) uses TSO
  elimination with a mutex-based ownership predicate.

Candidate solution lengths are derived deterministically from the seed
argument (standing in for the paper's ``choose_random_solution``
external method, which this reproduction cannot call into a real
runtime for).
"""

from __future__ import annotations

from repro.casestudies.common import CaseStudy

_WORKER = """
  void worker(n: uint32) {{
    var i: uint32 := 0;
    var len: uint32 := 0;
    while i < 2 {{
      len := n + i;
      if ({guard}) {{
        lock(&mutex);
        if (len < best_len) {{
          best_len {assign} len;
        }}
        unlock(&mutex);
      }}
      i := i + 1;
    }}
  }}
"""

_MAIN = """
  void main() {
    var t: uint64 := 0;
    var result: uint32 := 0;
    initialize_mutex(&mutex);
    t := create_thread worker(3);
    join t;
    lock(&mutex);
    result := best_len;
    unlock(&mutex);
    print_uint32(result);
  }
"""


def _level(name: str, guard: str, assign: str) -> str:
    return (
        f"level {name} {{\n"
        "  var best_len: uint32 := 255;\n"
        "  var mutex: uint64;\n"
        + _WORKER.format(guard=guard, assign=assign)
        + _MAIN
        + "}\n"
    )


LEVELS = [
    ("Implementation", _level("Implementation", "len < best_len", ":=")),
    ("ArbitraryGuard", _level("ArbitraryGuard", "*", ":=")),
    ("BestLenSequential", _level("BestLenSequential", "*", "::=")),
]

RECIPES = [
    (
        "ImplementationRefinesArbitraryGuard",
        "proof ImplementationRefinesArbitraryGuard {\n"
        "  refinement Implementation ArbitraryGuard\n"
        "  nondet_weakening\n"
        "}\n",
    ),
    (
        "ArbitraryGuardRefinesBestLenSequential",
        "proof ArbitraryGuardRefinesBestLenSequential {\n"
        "  refinement ArbitraryGuard BestLenSequential\n"
        '  tso_elim best_len "mutex == $me"\n'
        "}\n",
    ),
]


def get() -> CaseStudy:
    return CaseStudy(
        name="tsp",
        description=(
            "running example (sec. 2): racy best-length search refined "
            "through arbitrary-guard weakening and TSO elimination"
        ),
        levels=LEVELS,
        recipes=RECIPES,
        paper_numbers={},
    )
