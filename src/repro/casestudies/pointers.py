"""The Pointers case study (§6.2).

"The Pointers program writes via distinct pointers of the same type.
The correctness of our refinement depends on our static alias analysis
proving these different pointers do not alias.  Specifically, we prove
that the program assigning values via two pointers refines a program
assigning those values in the opposite order.  The automatic alias
analysis reveals that the pointers cannot alias and thus that the
reversed assignments result in the same state."

Paper numbers: program 29 SLOC, recipe 7 SLOC, 2,216 generated SLOC.
"""

from __future__ import annotations

from repro.casestudies.common import CaseStudy


def _level(name: str, first: str, second: str) -> str:
    return f"""
level {name} {{
  var a: uint32 := 0;
  var b: uint32 := 0;
  void main() {{
    var p: ptr<uint32> := null;
    var q: ptr<uint32> := null;
    var ra: uint32 := 0;
    var rb: uint32 := 0;
    p := &a;
    q := &b;
    {first}
    {second}
    ra := a;
    rb := b;
    print_uint32(ra);
    print_uint32(rb);
  }}
}}
"""


LEVELS = [
    ("PointersImpl", _level("PointersImpl", "*p := 1;", "*q := 2;")),
    (
        "PointersReordered",
        _level("PointersReordered", "*q := 2;", "*p := 1;"),
    ),
]

RECIPES = [
    (
        "PointersProof",
        "proof PointersProof {\n"
        "  refinement PointersImpl PointersReordered\n"
        "  weakening\n"
        "  use_regions\n"
        "}\n",
    ),
]


def get() -> CaseStudy:
    return CaseStudy(
        name="pointers",
        description=(
            "writes via two distinct pointers refine the opposite order; "
            "Steensgaard regions prove non-aliasing (sec. 6.2)"
        ),
        levels=LEVELS,
        recipes=RECIPES,
        paper_numbers={
            "program_sloc": 29,
            "recipe_sloc": 7,
            "generated_sloc": 2216,
        },
    )
