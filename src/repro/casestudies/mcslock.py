"""The MCSLock case study (§6.3).

A Mellor-Crummey–Scott queue lock built from hardware primitives
(atomic exchange, compare-and-swap, fences): threads enqueue themselves
on a tail word and spin on their *own* location, which "excels at
fairness and cache-awareness".  "We use it to demonstrate that our
methodology allows modeling locks hand-built out of hardware
primitives, as done for CertiKOS."

Thread *i*'s queue node is row *i* of the ``nxt``/``locked`` arrays
(thread ids are 1 and 2; index 0 is unused, and a ``tail`` of 0 means
the lock is free).

The refinement chain mirrors the paper's six transformations in four
levels:

* ``MCSGhost`` (var_intro) introduces the ghost ``owner`` variable,
  maintained by acquire/release — the paper's fifth transformation's
  ownership bookkeeping;
* ``MCSAssume`` (assume_intro) cements mutual exclusion: the critical
  section's statements carry the enabling condition ``owner == $me``
  (the heart of the safety property);
* ``MCSAtomic`` (reduction) reduces the critical section to an atomic
  block — the paper's last transformation.

Paper numbers: implementation 64 SLOC; six levels with recipes of
4–103 SLOC plus 141 SLOC of customization.  (CertiKOS proved the same
lock with 3.2K lines of proof.)
"""

from __future__ import annotations

from repro.casestudies.common import CaseStudy


def _level(name: str, ghosts: str, acquired: str, releasing: str,
           cs_open: str, cs_close: str, assume_cs: str) -> str:
    return f"""
level {name} {{
  var tail: uint64 := 0;
  var nxt: uint64[3];
  var locked: uint32[3];
  var counter: uint32 := 0;
{ghosts}
  void acquire(i: uint64) {{
    var pred: uint64 := 0;
    nxt[i] := 0;
    locked[i] := 1;
    fence();
    pred := atomic_exchange(&tail, i);
    if (pred != 0) {{
      nxt[pred] := i;
      while locked[i] != 0 {{
      }}
    }}
    {acquired}
  }}
  void release(i: uint64) {{
    var succ: uint64 := 0;
    var swapped: bool := false;
    {releasing}
    succ := nxt[i];
    if (succ == 0) {{
      swapped := compare_and_swap(&tail, i, 0);
      if (swapped) {{
        return;
      }}
      succ := nxt[i];
      while succ == 0 {{
        succ := nxt[i];
      }}
    }}
    locked[succ] := 0;
  }}
  void worker() {{
    var t: uint32 := 0;
    acquire(2);
    {cs_open}
    {assume_cs}t := counter;
    counter := t + 1;
    {cs_close}
    release(2);
  }}
  void main() {{
    var h: uint64 := 0;
    var t: uint32 := 0;
    h := create_thread worker();
    acquire(1);
    {cs_open}
    {assume_cs}t := counter;
    counter := t + 1;
    {cs_close}
    release(1);
    join h;
    print_uint32(counter);
  }}
}}
"""


_GHOSTS = "  ghost var owner: uint64 := 0;\n"
_ACQUIRED = "owner := i;"
_RELEASING = "owner := 0;"
_ASSUME = "assume owner == $me;\n    "


def _impl(name: str) -> str:
    return _level(name, "", "", "", "", "", "")


LEVELS = [
    ("MCSImpl", _impl("MCSImpl")),
    ("MCSGhost", _level("MCSGhost", _GHOSTS, _ACQUIRED, _RELEASING,
                        "", "", "")),
    ("MCSAssume", _level("MCSAssume", _GHOSTS, _ACQUIRED, _RELEASING,
                         "", "", _ASSUME)),
    ("MCSAtomic", _level("MCSAtomic", _GHOSTS, _ACQUIRED, _RELEASING,
                         "atomic {", "}", _ASSUME)),
]

RECIPES = [
    (
        "MCSIntroducesOwner",
        "proof MCSIntroducesOwner {\n"
        "  refinement MCSImpl MCSGhost\n"
        "  var_intro\n"
        "}\n",
    ),
    (
        "MCSCementsMutualExclusion",
        "proof MCSCementsMutualExclusion {\n"
        "  refinement MCSGhost MCSAssume\n"
        "  assume_intro\n"
        "}\n",
    ),
    (
        "MCSReducesCriticalSection",
        "proof MCSReducesCriticalSection {\n"
        "  refinement MCSAssume MCSAtomic\n"
        "  reduction\n"
        "}\n",
    ),
]


def get() -> CaseStudy:
    return CaseStudy(
        name="mcslock",
        description=(
            "Mellor-Crummey-Scott queue lock from atomic exchange / CAS "
            "/ fences; critical section reduced to an atomic block "
            "(sec. 6.3)"
        ),
        levels=LEVELS,
        recipes=RECIPES,
        paper_numbers={
            "implementation_sloc": 64,
            "levels": 6,
            "certikos_proof_loc": 3200,
        },
        max_states=400_000,
    )
