"""The Barrier case study (§6.1).

The barrier of Schirmer and Cohen: "each processor has a flag that it
exclusively writes (with volatile writes without any flushing) and
other processors read, and each processor waits for all processors to
set their flags before continuing past the barrier."  Their
ownership-based methodology cannot handle it because the flag reads
race with the writes (Owens's publication idiom).

The key safety property: each thread does its post-barrier write after
all threads do their pre-barrier writes.  Following §6.1:

* level ``BarrierGhost`` "uses variable introduction to add ghost
  variables representing ... which threads have performed their
  pre-barrier writes";
* level ``BarrierAssume`` "uses rely-guarantee to add an enabling
  condition on the post-barrier write that all pre-barrier writes are
  complete.  This condition implies the safety property."

Note that the flag writes are ordinary buffered x86-TSO stores — no
fence anywhere — so the proof genuinely reasons about store buffers.

Paper numbers: implementation 57 SLOC; level 1 adds 10 SLOC with a
5-SLOC recipe generating 3,649 SLOC of proof; level 2 adds 35 SLOC with
a 102-SLOC recipe plus 114 SLOC of customization, generating 46,404
SLOC of proof.
"""

from __future__ import annotations

from repro.casestudies.common import CaseStudy


def _level(name: str, ghosts: str, pre0: str, pre1: str,
           assume0: str, assume1: str) -> str:
    return f"""
level {name} {{
  var flag0: uint32 := 0;
  var flag1: uint32 := 0;
  var post0: uint32 := 0;
  var post1: uint32 := 0;
{ghosts}
  void proc1() {{
    {pre1}flag1 := 1;
    while flag0 == 0 {{
    }}
    {assume1}post1 := 1;
  }}
  void main() {{
    var t: uint64 := 0;
    t := create_thread proc1();
    {pre0}flag0 := 1;
    while flag1 == 0 {{
    }}
    {assume0}post0 := 1;
    join t;
    print_uint32(post0);
    print_uint32(post1);
  }}
}}
"""


_GHOST_DECLS = """  ghost var pre0: bool := false;
  ghost var pre1: bool := false;
"""

LEVELS = [
    ("BarrierImpl", _level("BarrierImpl", "", "", "", "", "")),
    (
        "BarrierGhost",
        _level(
            "BarrierGhost",
            _GHOST_DECLS,
            "pre0 := true;\n    ",
            "pre1 := true;\n    ",
            "",
            "",
        ),
    ),
    (
        "BarrierAssume",
        _level(
            "BarrierAssume",
            _GHOST_DECLS,
            "pre0 := true;\n    ",
            "pre1 := true;\n    ",
            "assume pre0 && pre1;\n    ",
            "assume pre0 && pre1;\n    ",
        ),
    ),
]

RECIPES = [
    (
        "BarrierIntroducesGhosts",
        "proof BarrierIntroducesGhosts {\n"
        "  refinement BarrierImpl BarrierGhost\n"
        "  var_intro\n"
        "}\n",
    ),
    (
        "BarrierCementsSafety",
        "proof BarrierCementsSafety {\n"
        "  refinement BarrierGhost BarrierAssume\n"
        "  assume_intro\n"
        '  invariant "flag0 != 0 ==> pre0"\n'
        '  invariant "flag1 != 0 ==> pre1"\n'
        '  rely_guarantee "old(pre0) ==> pre0"\n'
        '  rely_guarantee "old(pre1) ==> pre1"\n'
        "}\n",
    ),
]


def get() -> CaseStudy:
    return CaseStudy(
        name="barrier",
        description=(
            "Schirmer-Cohen barrier: racy flag publication under x86-TSO; "
            "post-barrier writes happen after all pre-barrier writes "
            "(sec. 6.1)"
        ),
        levels=LEVELS,
        recipes=RECIPES,
        paper_numbers={
            "implementation_sloc": 57,
            "level1_added_sloc": 10,
            "level1_recipe_sloc": 5,
            "level1_generated_sloc": 3649,
            "level2_added_sloc": 35,
            "level2_recipe_sloc": 102,
            "level2_customization_sloc": 114,
            "level2_generated_sloc": 46404,
        },
    )
