"""Shared infrastructure for the evaluation case studies (Table 1).

Each case study packages the Armada source of its levels and proof
recipes, the paper's reported effort numbers (for the EXPERIMENTS.md
comparison), and a uniform runner that produces per-proof statistics
in the same shape §6 reports: implementation SLOC, per-level added
SLOC, recipe SLOC, and generated-proof SLOC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.farm import VerificationFarm
from repro.lang.frontend import check_program
from repro.machine.program import DomainConfig
from repro.proofs.engine import ChainOutcome, ProofEngine


def sloc(text: str) -> int:
    """Source lines of code: non-blank, non-comment-only lines (the
    paper counts physical SLOC via SLOCCount [42])."""
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("//"):
            count += 1
    return count


@dataclass
class CaseStudy:
    """One evaluation case study: levels, recipes, and paper numbers."""

    name: str
    description: str
    #: (level name, Armada source for that level) in chain order.
    levels: list[tuple[str, str]]
    #: (proof name, recipe source) in chain order.
    recipes: list[tuple[str, str]]
    #: Numbers the paper reports, keyed by a short label.
    paper_numbers: dict[str, int] = field(default_factory=dict)
    #: Exploration budget needed by the proofs of this study.
    max_states: int = 200_000

    @property
    def source(self) -> str:
        parts = [text for _, text in self.levels]
        parts += [text for _, text in self.recipes]
        return "\n".join(parts)

    @property
    def implementation_sloc(self) -> int:
        return sloc(self.levels[0][1])

    def level_sloc(self) -> dict[str, int]:
        return {name: sloc(text) for name, text in self.levels}

    def recipe_sloc(self) -> dict[str, int]:
        return {name: sloc(text) for name, text in self.recipes}


@dataclass
class CaseStudyReport:
    """Measured results for one case study run."""

    study: CaseStudy
    outcome: ChainOutcome

    @property
    def verified(self) -> bool:
        return self.outcome.success

    @property
    def total_generated_sloc(self) -> int:
        return self.outcome.total_generated_sloc

    @property
    def total_recipe_sloc(self) -> int:
        return sum(self.study.recipe_sloc().values())

    def rows(self) -> list[dict]:
        """One row per proof: name, strategy, recipe/generated SLOC."""
        recipe_sizes = self.study.recipe_sloc()
        rows = []
        for outcome in self.outcome.outcomes:
            rows.append(
                {
                    "proof": outcome.proof_name,
                    "strategy": outcome.strategy,
                    "verified": outcome.success,
                    "recipe_sloc": recipe_sizes.get(outcome.proof_name, 0),
                    "generated_sloc": outcome.generated_sloc,
                    "lemmas": outcome.lemma_count,
                    "seconds": round(outcome.elapsed_seconds, 2),
                    "error": outcome.error,
                }
            )
        return rows

    def summary(self) -> dict:
        return {
            "name": self.study.name,
            "verified": self.verified,
            "implementation_sloc": self.study.implementation_sloc,
            "recipe_sloc": self.total_recipe_sloc,
            "generated_sloc": self.total_generated_sloc,
            "levels": len(self.study.levels),
            "proofs": len(self.outcome.outcomes),
        }


def run_case_study(
    study: CaseStudy,
    max_states: int | None = None,
    validate_refinement: str = "auto",
    farm: VerificationFarm | None = None,
) -> CaseStudyReport:
    """Check, translate, and verify a complete case study.

    ``farm`` routes lemma discharge through a shared verification farm
    (worker pool + proof cache); the default is sequential/uncached."""
    checked = check_program(study.source, filename=f"<{study.name}>")
    engine = ProofEngine(
        checked,
        max_states=max_states or study.max_states,
        validate_refinement=validate_refinement,
        farm=farm,
    )
    outcome = engine.run_all()
    return CaseStudyReport(study, outcome)
