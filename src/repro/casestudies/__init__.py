"""The evaluation case studies (Table 1 plus the running example)."""

from repro.casestudies import barrier, mcslock, pointers, queue, tsp
from repro.casestudies.common import (  # noqa: F401
    CaseStudy,
    CaseStudyReport,
    run_case_study,
    sloc,
)

#: Table 1 of the paper, in its order.
TABLE1 = {
    "barrier": barrier.get,
    "pointers": pointers.get,
    "mcslock": mcslock.get,
    "queue": queue.get,
}

#: All case studies, including the running example of section 2.
ALL = {"tsp": tsp.get, **TABLE1}


def load(name: str) -> CaseStudy:
    """Load a case study by name."""
    try:
        return ALL[name]()
    except KeyError:
        raise KeyError(
            f"unknown case study {name!r}; available: {sorted(ALL)}"
        ) from None
