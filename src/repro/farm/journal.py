"""Run journal: append-only obligation log for crash-safe resume.

``armada verify --journal FILE`` appends one JSON line per settled
obligation — its content-addressed key, its verdict status, and a
string rendering of any counterexample — flushed as written.  If the
run is interrupted (worker farm wedged, machine lost, operator ^C),
re-running with the same journal discharges every already-settled
obligation by file read and restarts from where the run died.

This is deliberately weaker than the proof cache: the journal is
scoped to one logical run (keys still embed the full content address,
so a stale journal can never resurrect a verdict for changed input —
the keys simply won't match), and refuted verdicts round-trip with
their counterexample flattened to a string.  Only *settled* verdicts
(proved/refuted) are journaled: a TIMEOUT or UNKNOWN entry would pin
an inconclusive answer that a resumed run should try again.

Like the cache, the journal self-heals: truncated or garbage lines —
the expected outcome of dying mid-write — are counted and skipped, and
the corresponding obligations simply re-run.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.verifier.prover import SETTLED, Verdict

JOURNAL_FORMAT = "armada-journal/1"


class Journal:
    """Append-only verdict log bound to one file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        #: Verdicts replayable from previous runs, by job key.
        self._entries: dict[str, Verdict] = {}
        #: Lines that failed to parse or verify (torn writes).
        self.corrupt_lines = 0
        #: Entries served to the farm this run.
        self.replayed = 0
        self._load()
        self._handle = open(self.path, "a", encoding="utf-8")

    # ------------------------------------------------------------------

    def _load(self) -> None:
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                self.corrupt_lines += 1
                continue
            if not isinstance(record, dict):
                self.corrupt_lines += 1
                continue
            if record.get("format") == JOURNAL_FORMAT:
                continue  # header line
            key = record.get("key")
            status = record.get("status")
            if not isinstance(key, str) or status not in SETTLED:
                self.corrupt_lines += 1
                continue
            detail = record.get("counterexample")
            self._entries[key] = Verdict(
                status,
                {"journal": detail} if detail is not None else None,
            )

    # ------------------------------------------------------------------

    def lookup(self, key: str) -> Verdict | None:
        """A settled verdict from a previous run, or None."""
        verdict = self._entries.get(key)
        if verdict is not None:
            self.replayed += 1
        return verdict

    def record(self, key: str, verdict: Verdict) -> None:
        """Append one settled verdict, flushed immediately so a crash
        at any point loses at most the line being written."""
        if verdict.status not in SETTLED:
            return
        if key in self._entries:
            return
        record = {"key": key, "status": verdict.status}
        if verdict.counterexample is not None:
            record["counterexample"] = json.dumps(
                verdict.counterexample, default=str, sort_keys=True
            )
        self._entries[key] = verdict
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def __len__(self) -> int:
        return len(self._entries)

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass
