"""Obligation scheduling: checkable units → a deterministic job queue.

The scheduler turns the checkable units of a verification run into
:class:`Job` records with *stable keys*.  Two kinds of unit exist:

* **Lemma obligations** — one per generated lemma with an
  ``obligation`` callable, across every proof of a chain.  Their keys
  follow the content-addressing scheme of :mod:`repro.farm.cache`
  (lemma content + prover fingerprint + code version) and are therefore
  cacheable across runs.
* **Whole-program refinement checks** — the bounded simulation checks
  some strategies request.  They are scheduled through the same queue
  (so they run on the pool alongside lemma jobs) but are keyed by proof
  identity and marked non-cacheable: their input is a pair of state
  machines, which the structural hash does not cover.

Job order is the order obligations appear in their scripts; the workers
apply results back in exactly this order, so the per-lemma verdict
sequence is deterministic no matter how execution interleaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.farm.cache import code_version, structural_hash
from repro.obs import OBS


@dataclass
class Job:
    """One schedulable checkable unit."""

    #: Stable content-addressed identity (cache key for cacheable jobs).
    key: str
    #: Human-readable name, ``proof:lemma``-shaped, for events/reports.
    label: str
    #: The work: returns a Verdict (lemma jobs) or a strategy-specific
    #: result object (global checks).
    thunk: Callable[[], Any]
    #: Writes the result back onto the proof artifacts.  Called by the
    #: workers in job order, on the scheduling thread.
    apply: Callable[[Any], None]
    #: Whether the result may be served from / stored to the proof cache.
    cacheable: bool = True
    #: Whether an ArmadaError from the thunk becomes a refuted verdict
    #: (the engine's historical per-obligation behaviour).
    wrap_errors: bool = True
    # ---- filled in by the workers ----
    result: Any = None
    finished: bool = False
    from_cache: bool = False
    #: Served from a ``--journal`` resume file instead of running.
    from_journal: bool = False
    ran_inline: bool = False
    wall_seconds: float = 0.0
    #: Position in the batch queue — the address fault-plan rules and
    #: chaos tests use to name one obligation deterministically.
    index: int = -1
    #: Executions consumed so far (0 while untried); a transiently
    #: failed job is requeued until this exceeds the retry budget.
    attempts: int = 0
    #: Injected-fault actions that fired on this job, in firing order.
    faults_hit: list[str] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)


def lemma_job_key(
    lemma: Any, prover_fingerprint: str, version: str | None = None
) -> str:
    """The content-addressed identity of one lemma obligation."""
    return structural_hash(
        "lemma-obligation",
        lemma.fingerprint(),
        prover_fingerprint,
        version if version is not None else code_version(),
    )


def lemma_jobs(
    script: Any,
    prover_fingerprint: str,
    version: str | None = None,
) -> list[Job]:
    """One job per lemma with an obligation, in script order."""
    if version is None:
        version = code_version()
    jobs: list[Job] = []
    for lemma in script.lemmas:
        if lemma.obligation is None:
            continue

        def apply(verdict: Any, lemma: Any = lemma) -> None:
            lemma.verdict = verdict

        jobs.append(
            Job(
                key=lemma_job_key(lemma, prover_fingerprint, version),
                label=f"{script.proof_name}:{lemma.name}",
                thunk=lemma.obligation,
                apply=apply,
            )
        )
    if OBS.enabled:
        OBS.count("farm.lemma_jobs_scheduled", len(jobs))
    return jobs


def global_check_job(
    proof_name: str,
    thunk: Callable[[], Any],
    apply: Callable[[Any], None],
) -> Job:
    """A whole-program bounded refinement check as a queue citizen."""
    if OBS.enabled:
        OBS.count("farm.global_checks_scheduled")
    return Job(
        key=structural_hash("global-check", proof_name),
        label=f"{proof_name}:WholeProgramRefinement",
        thunk=thunk,
        apply=apply,
        cacheable=False,
        wrap_errors=False,
    )
