"""Content-addressed on-disk proof cache (incremental verification).

The paper's toolchain gets incrementality for free from Dafny, which
caches verified modules across runs; re-verifying an unchanged Armada
program only re-proves what changed.  This module reproduces that: every
lemma obligation is keyed by a *structural hash* of

* the lemma's content (name, statement, body, customizations),
* the prover configuration fingerprint (a different sampling budget may
  produce a different verdict), and
* a code-version fingerprint over the ``repro`` package sources (a new
  strategy or prover fix must invalidate old verdicts).

A key therefore identifies the obligation *semantically*: any edit to a
level, a recipe, a lemma customization, the prover budget, or the
toolchain itself changes the key and forces a re-check, while an
untouched lemma is discharged by a single file read.

Verdicts are stored one-per-file under ``<dir>/<k[:2]>/<k[2:]>.verdict``
(sharded by the leading key byte so no directory grows unboundedly),
written atomically via ``os.replace`` so concurrent workers and even
concurrent ``armada`` processes can share a cache directory safely.
Corrupt or unreadable entries are treated as misses and dropped.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from pathlib import Path
from typing import Any

from repro.verifier.prover import Verdict

#: Bump to invalidate every existing cache entry on a format change.
CACHE_FORMAT = 1


def _encode(value: Any, out: list[bytes]) -> None:
    """Canonical, type-tagged encoding of nested str/int/bool/None and
    sequences, so structurally equal values hash equally and
    structurally different ones (``"1"`` vs ``1``, ``["ab"]`` vs
    ``["a", "b"]``) never collide."""
    if value is None:
        out.append(b"N;")
    elif isinstance(value, bool):
        out.append(b"b1;" if value else b"b0;")
    elif isinstance(value, int):
        raw = str(value).encode()
        out.append(b"i%d:%s;" % (len(raw), raw))
    elif isinstance(value, str):
        raw = value.encode()
        out.append(b"s%d:%s;" % (len(raw), raw))
    elif isinstance(value, (list, tuple)):
        out.append(b"l%d:" % len(value))
        for item in value:
            _encode(item, out)
        out.append(b";")
    else:
        raw = repr(value).encode()
        out.append(b"r%d:%s;" % (len(raw), raw))


def structural_hash(*parts: Any) -> str:
    """Stable hex digest of a tuple of (possibly nested) values."""
    out: list[bytes] = [b"v%d;" % CACHE_FORMAT]
    _encode(list(parts), out)
    return hashlib.sha256(b"".join(out)).hexdigest()


_code_version: str | None = None
_code_version_lock = threading.Lock()


def code_version() -> str:
    """Fingerprint of the ``repro`` package sources, memoized per
    process.  Any change to the toolchain (strategies, prover,
    translator, ...) yields a new version and invalidates the cache."""
    global _code_version
    with _code_version_lock:
        if _code_version is None:
            root = Path(__file__).resolve().parent.parent
            digest = hashlib.sha256()
            for path in sorted(root.rglob("*.py")):
                digest.update(path.relative_to(root).as_posix().encode())
                digest.update(b"\x00")
                digest.update(path.read_bytes())
                digest.update(b"\x00")
            _code_version = digest.hexdigest()
        return _code_version


class ProofCache:
    """Content-addressed verdict store rooted at one directory."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self._lock = threading.Lock()

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key[2:]}.verdict"

    def get(self, key: str) -> Verdict | None:
        """Look up a verdict; any failure to read or decode is a miss."""
        path = self._path(key)
        try:
            payload = path.read_bytes()
        except OSError:
            with self._lock:
                self.misses += 1
            return None
        try:
            verdict = pickle.loads(payload)
        except Exception:
            verdict = None
        if not isinstance(verdict, Verdict):
            # Corrupt or foreign entry: drop it so it cannot shadow a
            # future store under the same key.
            try:
                path.unlink()
            except OSError:
                pass
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return verdict

    def put(self, key: str, verdict: Verdict) -> bool:
        """Store a verdict atomically; returns False if the verdict is
        not serializable (the job simply stays uncached)."""
        try:
            payload = pickle.dumps(verdict)
        except Exception:
            return False
        path = self._path(key)
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        with self._lock:
            self.stores += 1
        return True

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("??/*.verdict"))
