"""Content-addressed on-disk proof cache (incremental verification).

The paper's toolchain gets incrementality for free from Dafny, which
caches verified modules across runs; re-verifying an unchanged Armada
program only re-proves what changed.  This module reproduces that: every
lemma obligation is keyed by a *structural hash* of

* the lemma's content (name, statement, body, customizations),
* the prover configuration fingerprint (a different sampling budget may
  produce a different verdict), and
* a code-version fingerprint over the ``repro`` package sources (a new
  strategy or prover fix must invalidate old verdicts).

A key therefore identifies the obligation *semantically*: any edit to a
level, a recipe, a lemma customization, the prover budget, or the
toolchain itself changes the key and forces a re-check, while an
untouched lemma is discharged by a single file read.

Entry framing and self-healing
------------------------------
Verdicts are stored one-per-file under ``<dir>/<k[:2]>/<k[2:]>.verdict``
(sharded by the leading key byte so no directory grows unboundedly),
written atomically via ``os.replace`` so concurrent workers and even
concurrent ``armada`` processes can share a cache directory safely.

Size cap and LRU eviction
-------------------------
A long-running, multi-tenant cache (the ``armada serve`` daemon, or a
shared CI cache directory) must not grow without bound.  Constructing
the cache with ``max_bytes`` arms an LRU policy: every hit touches the
entry's mtime, and a store that pushes the on-disk payload total over
the cap evicts least-recently-used entries until the total is back
under ~90% of it.  Eviction is purely a capacity decision — an evicted
obligation is simply recomputed on its next miss — so it can never
change a verdict, and concurrent evictors racing over the same
directory at worst double-delete (``missing_ok`` unlinks).

Every entry is *framed*: a magic/format header, the payload length, and
a SHA-256 payload checksum precede the pickled verdict.  A read first
validates the frame, so a truncated, garbage, or partially-written
entry — the expected failure modes of a crashed worker or a full disk —
is **detected before unpickling**, moved into ``<dir>/quarantine/`` for
post-mortem inspection, counted, and treated as a miss: the obligation
is simply recomputed and re-stored.  Nothing in the farm ever
tracebacks on a bad cache file, and a quarantined entry can never
shadow a future store under the same key.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import threading
from pathlib import Path
from typing import Any, Callable

from repro.verifier.prover import SETTLED, Verdict

#: Bump to invalidate every existing cache entry on a format change.
#: Format 2 introduced length+checksum framing (unframed format-1
#: entries fail the magic check and are quarantined on first read).
CACHE_FORMAT = 2

#: Entry frame: magic+version, 8-byte payload length, 32-byte SHA-256.
_MAGIC = b"ARMV\x02\n"
_LEN = struct.Struct(">Q")
_HEADER_SIZE = len(_MAGIC) + _LEN.size + hashlib.sha256().digest_size


def _encode(value: Any, out: list[bytes]) -> None:
    """Canonical, type-tagged encoding of nested str/int/bool/None and
    sequences, so structurally equal values hash equally and
    structurally different ones (``"1"`` vs ``1``, ``["ab"]`` vs
    ``["a", "b"]``) never collide."""
    if value is None:
        out.append(b"N;")
    elif isinstance(value, bool):
        out.append(b"b1;" if value else b"b0;")
    elif isinstance(value, int):
        raw = str(value).encode()
        out.append(b"i%d:%s;" % (len(raw), raw))
    elif isinstance(value, str):
        raw = value.encode()
        out.append(b"s%d:%s;" % (len(raw), raw))
    elif isinstance(value, (list, tuple)):
        out.append(b"l%d:" % len(value))
        for item in value:
            _encode(item, out)
        out.append(b";")
    else:
        raw = repr(value).encode()
        out.append(b"r%d:%s;" % (len(raw), raw))


def structural_hash(*parts: Any) -> str:
    """Stable hex digest of a tuple of (possibly nested) values."""
    out: list[bytes] = [b"v%d;" % CACHE_FORMAT]
    _encode(list(parts), out)
    return hashlib.sha256(b"".join(out)).hexdigest()


_code_version: str | None = None
_code_version_lock = threading.Lock()


def code_version() -> str:
    """Fingerprint of the ``repro`` package sources, memoized per
    process.  Any change to the toolchain (strategies, prover,
    translator, ...) yields a new version and invalidates the cache."""
    global _code_version
    with _code_version_lock:
        if _code_version is None:
            root = Path(__file__).resolve().parent.parent
            digest = hashlib.sha256()
            for path in sorted(root.rglob("*.py")):
                digest.update(path.relative_to(root).as_posix().encode())
                digest.update(b"\x00")
                digest.update(path.read_bytes())
                digest.update(b"\x00")
            _code_version = digest.hexdigest()
        return _code_version


def frame_entry(payload: bytes) -> bytes:
    """Wrap a pickled verdict in the length+checksum frame."""
    return (
        _MAGIC
        + _LEN.pack(len(payload))
        + hashlib.sha256(payload).digest()
        + payload
    )


def unframe_entry(raw: bytes) -> bytes | None:
    """Validate a frame, returning the payload or None if the entry is
    truncated, garbage, or partially written."""
    if len(raw) < _HEADER_SIZE or not raw.startswith(_MAGIC):
        return None
    offset = len(_MAGIC)
    (length,) = _LEN.unpack_from(raw, offset)
    offset += _LEN.size
    checksum = raw[offset:offset + hashlib.sha256().digest_size]
    payload = raw[_HEADER_SIZE:]
    if len(payload) != length:
        return None
    if hashlib.sha256(payload).digest() != checksum:
        return None
    return payload


class ProofCache:
    """Content-addressed verdict store rooted at one directory."""

    def __init__(
        self,
        directory: str | Path,
        on_quarantine: Callable[[str, str], None] | None = None,
        max_bytes: int | None = None,
        on_evict: Callable[[str, int], None] | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Corrupt entries detected, moved aside, and recomputed.
        self.quarantined = 0
        #: Entries removed by the LRU policy to respect ``max_bytes``.
        self.evictions = 0
        #: Bytes reclaimed by eviction.
        self.evicted_bytes = 0
        #: Called as ``on_quarantine(key, reason)`` for each bad entry.
        self.on_quarantine = on_quarantine
        #: Byte budget for stored entries; None = unbounded.
        self.max_bytes = max_bytes
        #: Called as ``on_evict(key, size_bytes)`` per evicted entry.
        self.on_evict = on_evict
        self._lock = threading.Lock()

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key[2:]}.verdict"

    def _key_of(self, path: Path) -> str:
        """Invert :meth:`_path`: shard dir + stem back to the hex key."""
        return path.parent.name + path.stem

    def entry_path(self, key: str) -> Path:
        """Where *key*'s entry lives on disk (fault injection and
        tests corrupt entries through this)."""
        return self._path(key)

    def _quarantine(self, key: str, path: Path, reason: str) -> None:
        """Move a bad entry aside so it can neither shadow a future
        store nor traceback a future read, keeping it inspectable."""
        target_dir = self.directory / "quarantine"
        target = target_dir / path.name
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        with self._lock:
            self.quarantined += 1
        if self.on_quarantine is not None:
            self.on_quarantine(key, reason)

    def get(self, key: str) -> Verdict | None:
        """Look up a verdict; any failure to read, unframe, or decode
        quarantines the entry and reports a miss (recompute path)."""
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            with self._lock:
                self.misses += 1
            return None
        payload = unframe_entry(raw)
        if payload is None:
            self._quarantine(key, path, "bad frame (truncated/garbage)")
            with self._lock:
                self.misses += 1
            return None
        try:
            verdict = pickle.loads(payload)
        except Exception:
            verdict = None
        if not isinstance(verdict, Verdict):
            # The frame checked out but the payload is foreign — a
            # format drift the version bump should have caught.
            self._quarantine(key, path, "framed payload is not a Verdict")
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        # LRU recency: a hit is a use.  Failure is harmless (another
        # process may have just evicted the entry).
        try:
            os.utime(path)
        except OSError:
            pass
        return verdict

    def put(self, key: str, verdict: Verdict) -> bool:
        """Store a settled verdict atomically; returns False if the
        verdict is inconclusive (TIMEOUT/UNKNOWN must never be pinned
        by a cache) or not serializable (the job stays uncached)."""
        if verdict.status not in SETTLED:
            return False
        try:
            payload = pickle.dumps(verdict)
        except Exception:
            return False
        path = self._path(key)
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(frame_entry(payload))
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        with self._lock:
            self.stores += 1
        if self.max_bytes is not None:
            self._enforce_cap()
        return True

    # ------------------------------------------------------------------
    # size accounting and LRU eviction

    def _entries(self) -> list[tuple[Path, float, int]]:
        """Every stored entry as ``(path, mtime, size)``; entries that
        vanish mid-scan (concurrent eviction) are skipped."""
        rows: list[tuple[Path, float, int]] = []
        if not self.directory.is_dir():
            return rows
        for path in self.directory.glob("??/*.verdict"):
            try:
                stat = path.stat()
            except OSError:
                continue
            rows.append((path, stat.st_mtime, stat.st_size))
        return rows

    def total_bytes(self) -> int:
        """On-disk payload total (quarantine excluded)."""
        return sum(size for _, _, size in self._entries())

    def _enforce_cap(self) -> None:
        """Evict least-recently-used entries until the stored total is
        back under ~90% of ``max_bytes`` (hysteresis so a cache sitting
        at the cap does not evict one entry per store)."""
        assert self.max_bytes is not None
        entries = self._entries()
        total = sum(size for _, _, size in entries)
        if total <= self.max_bytes:
            return
        target = int(self.max_bytes * 0.9)
        entries.sort(key=lambda row: row[1])  # oldest mtime first
        for path, _, size in entries:
            if total <= target:
                break
            try:
                path.unlink()
            except OSError:
                continue  # already gone: a concurrent evictor won
            total -= size
            with self._lock:
                self.evictions += 1
                self.evicted_bytes += size
            if self.on_evict is not None:
                self.on_evict(self._key_of(path), size)

    def corrupt_entry(self, key: str) -> bool:
        """Deliberately truncate *key*'s entry to half its length (the
        ``corrupt_cache_entry`` chaos fault).  Returns True if an entry
        existed to corrupt."""
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return False
        try:
            path.write_bytes(raw[: max(1, len(raw) // 2)])
        except OSError:
            return False
        return True

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("??/*.verdict"))
