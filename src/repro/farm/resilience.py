"""Resilience policy for the verification farm.

One :class:`ResilienceConfig` travels with a farm and answers three
questions the workers ask about every obligation:

* **How long may it run?**  A per-obligation wall-clock deadline
  (``obligation_timeout``) and a whole-chain deadline budget
  (``chain_deadline``), armed at the farm's first discharge.  An
  expired obligation yields a TIMEOUT verdict — *inconclusive*, never
  refuted — and an expired chain budget short-circuits the remaining
  queue the same way instead of hanging.
* **How often may it fail?**  Transient failures (worker death,
  injected faults) are retried with exponential backoff capped by
  ``max_retries``; once exhausted, the obligation goes UNKNOWN.
* **How long to wait between tries?**  Deterministic jitter: backoff
  delays are derived from SHA-256 over ``(seed, job key, attempt)``,
  so a chaos run sleeps the same pattern every time.

The default config enables crash recovery and retries with no
deadlines and no fault plan — the shape a production farm wants —
while costing the fault-free hot path nothing beyond a few ``is
None`` tests.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field

from repro.faults.plan import FaultPlan, FaultRule

DEFAULT_MAX_RETRIES = 2


class ShutdownToken:
    """A one-way drain signal shared by a farm and its workers.

    Once requested (SIGTERM/SIGINT handler, a serve-side cancel), the
    obligation currently executing on each worker finishes normally,
    every *not-yet-started* obligation short-circuits to an UNKNOWN
    verdict — inconclusive, so it is never cached or journaled and a
    resumed run re-checks it — and the pools wind down without
    orphaning processes.  The token is monotonic: there is no way to
    un-request a drain, which keeps the worker-side check a single
    lock-free ``Event.is_set``.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def request(self) -> None:
        self._event.set()

    @property
    def requested(self) -> bool:
        return self._event.is_set()


@dataclass
class ResilienceConfig:
    """Deadline, retry, and fault-injection policy for one farm."""

    #: Per-obligation wall-clock deadline in seconds; None = unbounded.
    obligation_timeout: float | None = None
    #: Whole-chain wall-clock budget in seconds, measured from the
    #: farm's first discharge; None = unbounded.
    chain_deadline: float | None = None
    #: How many times a transiently failed obligation is re-run before
    #: it is abandoned as UNKNOWN (0 disables retries).
    max_retries: int = DEFAULT_MAX_RETRIES
    #: Exponential backoff: attempt *n* sleeps
    #: ``min(base * 2**n, max) * (1 + jitter)`` seconds.
    retry_base_delay: float = 0.05
    retry_max_delay: float = 2.0
    #: The (disabled-by-default) fault-injection plan; None = no hooks.
    faults: FaultPlan | None = None
    #: Cooperative drain signal; None = this farm cannot be drained.
    shutdown: ShutdownToken | None = field(default=None, repr=False)
    #: Monotonic timestamp the chain budget expires at; armed lazily.
    deadline_at: float | None = field(default=None, repr=False)
    #: Whether the one-per-run ``deadline_expired`` event fired yet.
    _expiry_reported: bool = field(default=False, repr=False)

    # ------------------------------------------------------------------
    # chain deadline budget

    def arm(self) -> None:
        """Start the chain budget clock (idempotent)."""
        if self.chain_deadline is not None and self.deadline_at is None:
            self.deadline_at = time.monotonic() + self.chain_deadline

    def chain_expired(self) -> bool:
        return (
            self.deadline_at is not None
            and time.monotonic() >= self.deadline_at
        )

    def shutdown_requested(self) -> bool:
        return self.shutdown is not None and self.shutdown.requested

    def report_expiry_once(self) -> bool:
        """True exactly once per run, so the workers emit a single
        ``deadline_expired`` event no matter how many obligations the
        expiry short-circuits (a benign race may rarely double it)."""
        if self._expiry_reported:
            return False
        self._expiry_reported = True
        return True

    def attempt_budget(self) -> float | None:
        """Seconds one attempt may run: the tighter of the obligation
        deadline and what is left of the chain budget."""
        remaining = None
        if self.deadline_at is not None:
            remaining = max(0.0, self.deadline_at - time.monotonic())
        if self.obligation_timeout is None:
            return remaining
        if remaining is None:
            return self.obligation_timeout
        return min(self.obligation_timeout, remaining)

    # ------------------------------------------------------------------
    # retry backoff

    def backoff_seconds(self, key: str, attempt: int) -> float:
        """Deterministically jittered exponential backoff delay before
        re-running *key*'s attempt number *attempt* (1-based)."""
        base = min(
            self.retry_base_delay * (2 ** max(0, attempt - 1)),
            self.retry_max_delay,
        )
        seed = self.faults.seed if self.faults is not None else 0
        digest = hashlib.sha256(
            f"{seed}:{key}:{attempt}".encode()
        ).digest()
        jitter = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF
        return base * (1.0 + jitter)

    # ------------------------------------------------------------------
    # fault addressing

    def fault(self, phase: str, index: int, label: str,
              attempt: int) -> FaultRule | None:
        """The injected fault firing at this site, if any."""
        if self.faults is None:
            return None
        return self.faults.match(phase, index, label, attempt)

    def describe(self) -> str:
        parts = [f"retries<={self.max_retries}"]
        if self.obligation_timeout is not None:
            parts.append(f"obligation<={self.obligation_timeout:g}s")
        if self.chain_deadline is not None:
            parts.append(f"chain<={self.chain_deadline:g}s")
        if self.faults is not None:
            parts.append(
                f"faults={len(self.faults)} from {self.faults.name}"
            )
        return ", ".join(parts)
