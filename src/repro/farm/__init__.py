"""``repro.farm`` — a parallel, cached, *fault-tolerant* verification
orchestrator.

Armada's workflow (Figure 1 of the paper) generates thousands of lemmas
per refinement recipe and hands them to Dafny/Z3, which discharge
verification conditions in parallel and cache verified modules between
runs.  This subsystem gives the reproduction the same shape: lemma
discharge becomes a first-class *job system* instead of a sequential
loop inside the proof engine.

Layers (bottom-up):

* :mod:`repro.farm.cache` — content-addressed on-disk verdict store
  with framed, checksummed, self-healing entries; re-verifying an
  unchanged program discharges lemmas by file read.
* :mod:`repro.farm.scheduler` — turns lemma obligations and
  whole-program refinement checks into :class:`~repro.farm.scheduler.Job`
  records with stable keys.
* :mod:`repro.farm.resilience` — deadline, retry, and fault-injection
  policy (see :mod:`repro.faults`).
* :mod:`repro.farm.journal` — append-only settled-verdict log for
  crash-safe resume (``armada verify --journal``).
* :mod:`repro.farm.exploration` — state-space exploration as a third
  job kind (full / POR / dynamic POR / symmetry / sharded), sharing
  flag semantics and output shape across the CLI and the daemon.
* :mod:`repro.farm.workers` — runs the queue sequentially, on a thread
  pool, or on a process pool (with inline fallback for non-picklable
  obligations, crash detection, and pool respawn), and applies verdicts
  back in deterministic order.
* :mod:`repro.farm.events` — structured event stream + summary report.

:class:`VerificationFarm` is the facade the proof engine and the CLI
use; a default-constructed farm (one worker, no cache, no deadlines)
behaves exactly like the historical sequential checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.farm.cache import (  # noqa: F401
    ProofCache,
    code_version,
    structural_hash,
)
from repro.farm.events import (  # noqa: F401
    CACHE_EVICT,
    CACHE_HIT,
    CACHE_QUARANTINE,
    CACHE_STORE,
    DEADLINE_EXPIRED,
    FAULT_INJECTED,
    JOB_ABANDONED,
    JOB_CANCELLED,
    JOB_FINISHED,
    JOB_QUEUED,
    JOB_RETRY,
    JOB_STARTED,
    JOB_TIMEOUT,
    JOURNAL_HIT,
    POOL_FALLBACK,
    WORKER_CRASH,
    WORKER_RESPAWN,
    EventLog,
    FarmEvent,
    FarmSummary,
)
from repro.farm.exploration import (  # noqa: F401
    exploration_job,
    exploration_summary,
    run_exploration,
)
from repro.farm.journal import Journal  # noqa: F401
from repro.farm.resilience import (  # noqa: F401
    DEFAULT_MAX_RETRIES,
    ResilienceConfig,
    ShutdownToken,
)
from repro.farm.scheduler import (  # noqa: F401
    Job,
    global_check_job,
    lemma_job_key,
    lemma_jobs,
)
from repro.farm.workers import (  # noqa: F401
    MODES,
    PROCESS,
    SEQUENTIAL,
    THREAD,
    run_jobs,
)
from repro.faults import FaultPlan  # noqa: F401


@dataclass
class FarmConfig:
    """How a :class:`VerificationFarm` schedules, caches, and survives."""

    #: Worker count; 1 means sequential discharge.
    jobs: int = 1
    #: ``"auto"`` picks threads when jobs > 1; ``"sequential"``,
    #: ``"thread"``, and ``"process"`` force a mode.
    mode: str = "auto"
    #: Proof-cache directory; None disables caching.
    cache_dir: str | Path | None = None
    #: Byte budget for the proof cache; exceeding it evicts
    #: least-recently-used entries.  None = unbounded.
    cache_max_bytes: int | None = None
    #: Per-obligation wall-clock deadline (seconds); None = unbounded.
    obligation_timeout: float | None = None
    #: Whole-chain wall-clock budget (seconds); None = unbounded.
    chain_deadline: float | None = None
    #: Retry budget for transient failures before UNKNOWN.
    max_retries: int = DEFAULT_MAX_RETRIES
    #: Backoff floor between retries (seconds); tests shrink this.
    retry_base_delay: float = 0.05
    #: Deterministic fault-injection plan (disabled when None).
    faults: FaultPlan | None = None
    #: Resume-journal path; None disables journaling.
    journal_path: str | Path | None = None

    def resolved_mode(self) -> str:
        if self.mode != "auto":
            return self.mode
        return THREAD if self.jobs > 1 else SEQUENTIAL


class VerificationFarm:
    """Facade: one farm per verification run.

    The engine hands it job batches via :meth:`discharge`; the farm
    routes them through the cache, the journal, and the worker pool
    under one resilience policy, and accumulates the event stream
    across batches so one summary covers the whole chain.
    """

    def __init__(
        self,
        config: FarmConfig | None = None,
        cache: ProofCache | None = None,
    ) -> None:
        """``cache``: an externally owned :class:`ProofCache` to use
        instead of constructing one from ``config.cache_dir`` — the
        ``armada serve`` daemon shares one capped, multi-tenant cache
        instance across every job's farm this way.  A shared cache's
        quarantine/eviction callbacks stay with its owner."""
        self.config = config or FarmConfig()
        if self.config.resolved_mode() not in MODES:
            raise ValueError(
                f"unknown farm mode {self.config.mode!r}"
            )
        self.events = EventLog()
        self.shutdown = ShutdownToken()
        #: True when this farm's cache is owned by someone else.
        self.cache_shared = cache is not None
        if cache is not None:
            self.cache: ProofCache | None = cache
        else:
            self.cache = (
                ProofCache(
                    self.config.cache_dir,
                    on_quarantine=self._on_quarantine,
                    max_bytes=self.config.cache_max_bytes,
                    on_evict=self._on_evict,
                )
                if self.config.cache_dir is not None
                else None
            )
        self.journal: Journal | None = (
            Journal(self.config.journal_path)
            if self.config.journal_path is not None
            else None
        )
        self.resilience = ResilienceConfig(
            obligation_timeout=self.config.obligation_timeout,
            chain_deadline=self.config.chain_deadline,
            max_retries=self.config.max_retries,
            retry_base_delay=self.config.retry_base_delay,
            faults=self.config.faults,
            shutdown=self.shutdown,
        )

    def _on_quarantine(self, key: str, reason: str) -> None:
        self.events.emit(CACHE_QUARANTINE, key, "", detail=reason)

    def _on_evict(self, key: str, size: int) -> None:
        self.events.emit(CACHE_EVICT, key, "", detail=f"{size} bytes")

    def request_shutdown(self) -> None:
        """Ask the farm to drain: in-flight obligations finish, queued
        ones short-circuit to UNKNOWN (inconclusive, uncached), pools
        wind down.  Safe from signal handlers and other threads."""
        self.shutdown.request()

    @property
    def shutdown_requested(self) -> bool:
        return self.shutdown.requested

    def discharge(self, jobs: list[Job]) -> list[Job]:
        """Run one batch of jobs to completion.  The chain deadline is
        armed at the first discharge and shared by every later batch."""
        return run_jobs(
            jobs,
            mode=self.config.resolved_mode(),
            max_workers=self.config.jobs,
            cache=self.cache,
            events=self.events,
            resilience=self.resilience,
            journal=self.journal,
        )

    def close(self) -> None:
        """Flush and release the journal (idempotent)."""
        if self.journal is not None:
            self.journal.close()

    # ------------------------------------------------------------------

    def describe(self) -> str:
        mode = self.config.resolved_mode()
        if mode == SEQUENTIAL:
            return SEQUENTIAL
        return f"{mode} x{max(1, self.config.jobs)}"

    def summary(self) -> FarmSummary:
        return self.events.summary()

    def summary_line(self) -> str:
        return self.summary().one_line(self.describe())

    def report_lines(self) -> list[str]:
        lines = [f"verification farm [{self.describe()}]"]
        lines.append(f"policy: {self.resilience.describe()}")
        lines.extend(self.summary().report_lines())
        if self.cache is not None:
            line = (
                f"cache: {self.cache.directory} "
                f"({self.cache.hits} hits, {self.cache.misses} misses, "
                f"{self.cache.stores} stores, "
                f"{self.cache.quarantined} quarantined, "
                f"{self.cache.evictions} evicted)"
            )
            if self.cache.max_bytes is not None:
                line += (
                    f" cap {self.cache.max_bytes} bytes, "
                    f"{self.cache.total_bytes()} used"
                )
            if self.cache_shared:
                line += " [shared]"
            lines.append(line)
        if self.journal is not None:
            lines.append(
                f"journal: {self.journal.path} "
                f"({len(self.journal)} entries, "
                f"{self.journal.replayed} replayed, "
                f"{self.journal.corrupt_lines} corrupt lines skipped)"
            )
        return lines
