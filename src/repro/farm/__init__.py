"""``repro.farm`` — a parallel, cached verification orchestrator.

Armada's workflow (Figure 1 of the paper) generates thousands of lemmas
per refinement recipe and hands them to Dafny/Z3, which discharge
verification conditions in parallel and cache verified modules between
runs.  This subsystem gives the reproduction the same shape: lemma
discharge becomes a first-class *job system* instead of a sequential
loop inside the proof engine.

Layers (bottom-up):

* :mod:`repro.farm.cache` — content-addressed on-disk verdict store;
  re-verifying an unchanged program discharges lemmas by file read.
* :mod:`repro.farm.scheduler` — turns lemma obligations and
  whole-program refinement checks into :class:`~repro.farm.scheduler.Job`
  records with stable keys.
* :mod:`repro.farm.workers` — runs the queue sequentially, on a thread
  pool, or on a process pool (with inline fallback for non-picklable
  obligations), and applies verdicts back in deterministic order.
* :mod:`repro.farm.events` — structured event stream + summary report.

:class:`VerificationFarm` is the facade the proof engine and the CLI
use; a default-constructed farm (one worker, no cache) behaves exactly
like the historical sequential checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.farm.cache import (  # noqa: F401
    ProofCache,
    code_version,
    structural_hash,
)
from repro.farm.events import (  # noqa: F401
    CACHE_HIT,
    CACHE_STORE,
    JOB_FINISHED,
    JOB_QUEUED,
    JOB_STARTED,
    POOL_FALLBACK,
    EventLog,
    FarmEvent,
    FarmSummary,
)
from repro.farm.scheduler import (  # noqa: F401
    Job,
    global_check_job,
    lemma_job_key,
    lemma_jobs,
)
from repro.farm.workers import (  # noqa: F401
    MODES,
    PROCESS,
    SEQUENTIAL,
    THREAD,
    run_jobs,
)


@dataclass
class FarmConfig:
    """How a :class:`VerificationFarm` schedules and caches work."""

    #: Worker count; 1 means sequential discharge.
    jobs: int = 1
    #: ``"auto"`` picks threads when jobs > 1; ``"sequential"``,
    #: ``"thread"``, and ``"process"`` force a mode.
    mode: str = "auto"
    #: Proof-cache directory; None disables caching.
    cache_dir: str | Path | None = None

    def resolved_mode(self) -> str:
        if self.mode != "auto":
            return self.mode
        return THREAD if self.jobs > 1 else SEQUENTIAL


class VerificationFarm:
    """Facade: one farm per verification run.

    The engine hands it job batches via :meth:`discharge`; the farm
    routes them through the cache and the worker pool and accumulates
    the event stream across batches so one summary covers the whole
    chain.
    """

    def __init__(self, config: FarmConfig | None = None) -> None:
        self.config = config or FarmConfig()
        if self.config.resolved_mode() not in MODES:
            raise ValueError(
                f"unknown farm mode {self.config.mode!r}"
            )
        self.events = EventLog()
        self.cache: ProofCache | None = (
            ProofCache(self.config.cache_dir)
            if self.config.cache_dir is not None
            else None
        )

    def discharge(self, jobs: list[Job]) -> list[Job]:
        """Run one batch of jobs to completion."""
        return run_jobs(
            jobs,
            mode=self.config.resolved_mode(),
            max_workers=self.config.jobs,
            cache=self.cache,
            events=self.events,
        )

    # ------------------------------------------------------------------

    def describe(self) -> str:
        mode = self.config.resolved_mode()
        if mode == SEQUENTIAL:
            return SEQUENTIAL
        return f"{mode} x{max(1, self.config.jobs)}"

    def summary(self) -> FarmSummary:
        return self.events.summary()

    def summary_line(self) -> str:
        return self.summary().one_line(self.describe())

    def report_lines(self) -> list[str]:
        lines = [f"verification farm [{self.describe()}]"]
        lines.extend(self.summary().report_lines())
        if self.cache is not None:
            lines.append(
                f"cache: {self.cache.directory} "
                f"({self.cache.hits} hits, {self.cache.misses} misses, "
                f"{self.cache.stores} stores)"
            )
        return lines
