"""Exploration as a farm job kind.

The farm historically schedules two kinds of checkable unit: lemma
obligations and whole-program refinement checks.  This module adds a
third — **state-space exploration**.  A level is enumerated under an
optional reduction stack (static POR, dynamic POR + sleep sets,
thread-symmetry, or hash-sharded multi-process partitioning; see
:mod:`repro.explore`) and the verdict is rendered as a JSON-able
summary.

Every exploration entry point — ``armada explore``, ``armada submit
--kind explore``, and the serve daemon — routes through
:func:`run_exploration` / :func:`exploration_summary`, so they agree on
flag semantics (what combines with what, how unsupported memory models
degrade) and on the output shape.

Flag semantics, shared by all entry points:

* ``dpor`` takes precedence over ``por`` (the dynamic reducer subsumes
  the static one); ``symmetry`` composes with either; ``atomic``
  (the regular-to-atomic lift) composes with any of them.
* ``shard_workers > 1`` selects the sharded explorer, which runs the
  full fan-out on every shard — combining it with a reduction flag is
  rejected rather than silently ignored.
* Under a memory model without reduction support (release/acquire),
  the explorer drops the reduction flags and explores unreduced; the
  summary carries the reason in ``reductions_disabled``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ArmadaError
from repro.farm.cache import structural_hash
from repro.farm.scheduler import Job
from repro.obs import OBS


def run_exploration(
    machine: Any,
    *,
    max_states: int = 200_000,
    por: bool = False,
    dpor: bool = False,
    symmetry: bool = False,
    atomic: bool = False,
    shard_workers: int = 0,
    compiled: bool = True,
    invariants: dict[str, Callable] | None = None,
) -> tuple[Any, str | None]:
    """Explore *machine* under the requested reduction stack.

    Returns ``(result, reductions_disabled)`` where the second element
    is the explorer's reason for dropping requested reductions (``None``
    when they were honoured).  Raises :class:`ArmadaError` on flag
    combinations with no sound meaning.
    """
    workers = int(shard_workers or 0)
    if workers > 1:
        if por or dpor or symmetry or atomic:
            raise ArmadaError(
                "sharded exploration partitions the full fan-out across "
                "shards and cannot compose with --por/--dpor/--symmetry/"
                "--atomic (per-shard reductions would prune against an "
                "incomplete seen set); drop the reduction flags or "
                "--shard-workers"
            )
        from repro.explore.sharded import ShardedExplorer

        result = ShardedExplorer(
            machine, workers=workers, max_states=max_states,
            compiled=compiled,
        ).explore(invariants)
        return result, None
    from repro.explore import Explorer

    explorer = Explorer(
        machine, max_states=max_states, por=por, dpor=dpor,
        symmetry=symmetry, atomic=atomic, compiled=compiled,
    )
    return explorer.explore(invariants), explorer.reductions_disabled


def exploration_summary(
    machine: Any,
    level: str,
    result: Any,
    reductions_disabled: str | None = None,
) -> dict[str, Any]:
    """Render an :class:`~repro.explore.explorer.ExplorationResult` as
    the JSON-able payload shared by the CLI, the daemon, and farm jobs."""
    outcomes = sorted(
        result.final_outcomes,
        key=lambda o: (o[0], tuple(map(str, o[1]))),
    )
    stats = result.por_stats
    memmodel = getattr(machine, "memmodel", None)
    return {
        "level": level,
        "memory_model": memmodel.name if memmodel is not None else "tso",
        "states": result.states_visited,
        "transitions": result.transitions_taken,
        "outcomes": [
            {"kind": kind, "log": list(log)} for kind, log in outcomes
        ],
        "ub": [
            {"reason": reason, "trace": [t.describe() for t in trace]}
            for reason, trace in zip(result.ub_reasons, result.ub_traces)
        ],
        "violations": [
            {
                "invariant": v.invariant_name,
                "trace": [t.describe() for t in v.trace],
            }
            for v in result.violations
        ],
        "hit_state_budget": result.hit_state_budget,
        "reductions_disabled": reductions_disabled,
        "atomic": {
            "chains": result.atomic_stats.chains,
            "micro_absorbed": result.atomic_stats.micro_absorbed,
        } if getattr(result, "atomic_stats", None) is not None else None,
        "por": (
            None if stats is None else {
                "ample_states": stats.ample_states,
                "full_states": stats.full_states,
                "transitions_pruned": stats.transitions_pruned,
                "dynamic_states": stats.dynamic_states,
                "sleep_pruned": stats.sleep_pruned,
                "symmetry_merged": stats.symmetry_merged,
            }
        ),
    }


def exploration_job(
    machine: Any,
    level: str,
    *,
    max_states: int = 200_000,
    por: bool = False,
    dpor: bool = False,
    symmetry: bool = False,
    atomic: bool = False,
    shard_workers: int = 0,
    compiled: bool = True,
    invariants: dict[str, Callable] | None = None,
    apply: Callable[[Any], None] | None = None,
) -> Job:
    """One exploration as a farm queue citizen.

    Like whole-program refinement checks, the job is keyed by identity
    (level name + flags) and non-cacheable: its input is a state
    machine, which the structural hash does not cover.  The thunk
    returns the :func:`exploration_summary` payload.
    """

    def thunk() -> dict[str, Any]:
        result, disabled = run_exploration(
            machine,
            max_states=max_states,
            por=por,
            dpor=dpor,
            symmetry=symmetry,
            atomic=atomic,
            shard_workers=shard_workers,
            compiled=compiled,
            invariants=invariants,
        )
        return exploration_summary(machine, level, result, disabled)

    if OBS.enabled:
        OBS.count("farm.exploration_jobs_scheduled")
    mode = (
        f"sharded-{shard_workers}" if int(shard_workers or 0) > 1
        else "dpor+symmetry" if dpor and symmetry
        else "dpor" if dpor
        else "por+symmetry" if por and symmetry
        else "por" if por
        else "symmetry" if symmetry
        else "full"
    )
    if atomic and int(shard_workers or 0) <= 1:
        mode = "atomic" if mode == "full" else f"atomic+{mode}"
    return Job(
        key=structural_hash(
            "exploration", level, mode, str(max_states), str(compiled)
        ),
        label=f"{level}:Exploration[{mode}]",
        thunk=thunk,
        apply=apply if apply is not None else (lambda _result: None),
        cacheable=False,
        wrap_errors=False,
    )
