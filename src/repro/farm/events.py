"""Structured event stream for the verification farm.

Every scheduling decision the farm makes — a job entering the queue, a
worker picking it up, a verdict coming back, a cache hit avoiding work —
is recorded as a :class:`FarmEvent`.  The log is append-only and
thread-safe so workers can emit from any thread; consumers read it after
a discharge round to build the summary report (``armada verify
--farm-report``) or to assert scheduling behaviour in tests.

Events are telemetry: verdict *application* is kept deterministic by the
workers regardless of the order events were emitted in.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

JOB_QUEUED = "job_queued"
JOB_STARTED = "job_started"
JOB_FINISHED = "job_finished"
CACHE_HIT = "cache_hit"
CACHE_STORE = "cache_store"
POOL_FALLBACK = "pool_fallback"


@dataclass
class FarmEvent:
    """One observation from the farm's job lifecycle."""

    kind: str
    job_key: str
    label: str
    #: Wall-clock seconds the job's obligation ran (finish events only).
    wall_seconds: float = 0.0
    #: Jobs not yet finished at emission time (start/finish events).
    queue_depth: int = 0
    timestamp: float = 0.0


class EventLog:
    """Append-only, thread-safe event sink."""

    def __init__(self) -> None:
        self._events: list[FarmEvent] = []
        self._lock = threading.Lock()

    def emit(
        self,
        kind: str,
        job_key: str,
        label: str,
        wall_seconds: float = 0.0,
        queue_depth: int = 0,
    ) -> None:
        event = FarmEvent(
            kind, job_key, label, wall_seconds, queue_depth,
            time.monotonic(),
        )
        with self._lock:
            self._events.append(event)

    def events(self, kind: str | None = None) -> list[FarmEvent]:
        with self._lock:
            snapshot = list(self._events)
        if kind is None:
            return snapshot
        return [e for e in snapshot if e.kind == kind]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def summary(self) -> FarmSummary:
        return FarmSummary.from_events(self.events())


@dataclass
class FarmSummary:
    """Aggregate view of one or more discharge rounds."""

    jobs: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_stores: int = 0
    pool_fallbacks: int = 0
    worker_seconds: float = 0.0
    max_queue_depth: int = 0
    #: The slowest executed jobs, as (label, wall seconds), slowest first.
    slowest: list[tuple[str, float]] = field(default_factory=list)

    @classmethod
    def from_events(cls, events: list[FarmEvent]) -> FarmSummary:
        summary = cls()
        timed: list[tuple[str, float]] = []
        for event in events:
            if event.kind == JOB_QUEUED:
                summary.jobs += 1
            elif event.kind == JOB_FINISHED:
                summary.executed += 1
                summary.worker_seconds += event.wall_seconds
                timed.append((event.label, event.wall_seconds))
            elif event.kind == CACHE_HIT:
                summary.cache_hits += 1
            elif event.kind == CACHE_STORE:
                summary.cache_stores += 1
            elif event.kind == POOL_FALLBACK:
                summary.pool_fallbacks += 1
            if event.queue_depth > summary.max_queue_depth:
                summary.max_queue_depth = event.queue_depth
        timed.sort(key=lambda pair: -pair[1])
        summary.slowest = timed[:5]
        return summary

    @property
    def hit_rate(self) -> float:
        """Fraction of queued jobs discharged from cache."""
        return self.cache_hits / self.jobs if self.jobs else 0.0

    def one_line(self, mode: str = "sequential") -> str:
        return (
            f"farm: {self.jobs} obligations, "
            f"{self.cache_hits} from cache, "
            f"{self.executed} executed in "
            f"{self.worker_seconds:.2f}s worker time [{mode}]"
        )

    def report_lines(self) -> list[str]:
        lines = [
            f"obligations queued:   {self.jobs}",
            f"discharged from cache: {self.cache_hits} "
            f"({self.hit_rate:.1%})",
            f"executed by workers:  {self.executed} "
            f"({self.worker_seconds:.2f}s worker time)",
            f"cache stores:         {self.cache_stores}",
            f"max queue depth:      {self.max_queue_depth}",
        ]
        if self.pool_fallbacks:
            lines.append(
                f"process-pool fallbacks to inline: {self.pool_fallbacks}"
            )
        if self.slowest:
            lines.append("slowest obligations:")
            for label, seconds in self.slowest:
                lines.append(f"  {seconds:8.3f}s  {label}")
        return lines
