"""Structured event stream for the verification farm.

Every scheduling decision the farm makes — a job entering the queue, a
worker picking it up, a verdict coming back, a cache hit avoiding work —
is recorded as a :class:`FarmEvent`.  The log is append-only and
thread-safe so workers can emit from any thread; consumers read it after
a discharge round to build the summary report (``armada verify
--farm-report``) or to assert scheduling behaviour in tests.

Events are telemetry: verdict *application* is kept deterministic by the
workers regardless of the order events were emitted in.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

JOB_QUEUED = "job_queued"
JOB_STARTED = "job_started"
JOB_FINISHED = "job_finished"
CACHE_HIT = "cache_hit"
CACHE_STORE = "cache_store"
POOL_FALLBACK = "pool_fallback"
# --- resilience / chaos events ---
JOB_RETRY = "job_retry"
JOB_TIMEOUT = "job_timeout"
JOB_ABANDONED = "job_abandoned"
WORKER_CRASH = "worker_crash"
WORKER_RESPAWN = "worker_respawn"
FAULT_INJECTED = "fault_injected"
CACHE_QUARANTINE = "cache_quarantine"
CACHE_EVICT = "cache_evict"
JOURNAL_HIT = "journal_hit"
DEADLINE_EXPIRED = "deadline_expired"
#: A drain request (SIGTERM/SIGINT, serve cancel) short-circuited this
#: job before it ran; its verdict is UNKNOWN and is never cached.
JOB_CANCELLED = "job_cancelled"


@dataclass
class FarmEvent:
    """One observation from the farm's job lifecycle."""

    kind: str
    job_key: str
    label: str
    #: Wall-clock seconds the job's obligation ran (finish events only).
    wall_seconds: float = 0.0
    #: Jobs not yet finished at emission time (start/finish events).
    queue_depth: int = 0
    #: Free-text qualifier (which fault fired, why a retry happened).
    detail: str = ""
    timestamp: float = 0.0


class EventLog:
    """Append-only, thread-safe event sink."""

    def __init__(self) -> None:
        self._events: list[FarmEvent] = []
        self._lock = threading.Lock()

    def emit(
        self,
        kind: str,
        job_key: str,
        label: str,
        wall_seconds: float = 0.0,
        queue_depth: int = 0,
        detail: str = "",
    ) -> None:
        event = FarmEvent(
            kind, job_key, label, wall_seconds, queue_depth, detail,
            time.monotonic(),
        )
        with self._lock:
            self._events.append(event)

    def events(self, kind: str | None = None) -> list[FarmEvent]:
        with self._lock:
            snapshot = list(self._events)
        if kind is None:
            return snapshot
        return [e for e in snapshot if e.kind == kind]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def summary(self) -> FarmSummary:
        return FarmSummary.from_events(self.events())


@dataclass
class FarmSummary:
    """Aggregate view of one or more discharge rounds."""

    jobs: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_stores: int = 0
    pool_fallbacks: int = 0
    #: Re-executions of transiently failed obligations.
    retries: int = 0
    #: Obligations that exceeded a wall-clock deadline (TIMEOUT verdicts).
    timeouts: int = 0
    #: Obligations abandoned as UNKNOWN after retry exhaustion.
    abandoned: int = 0
    #: Worker deaths observed (real SIGKILLs and simulated crashes).
    worker_crashes: int = 0
    #: Process pools rebuilt after a crash.
    worker_respawns: int = 0
    #: Faults fired by an injected plan.
    faults_injected: int = 0
    #: Corrupt cache entries quarantined and recomputed.
    cache_quarantined: int = 0
    #: Entries the LRU policy removed to respect the cache byte cap.
    cache_evictions: int = 0
    #: Obligations replayed from a resume journal.
    journal_hits: int = 0
    #: Obligations short-circuited by a drain request.
    cancelled: int = 0
    worker_seconds: float = 0.0
    max_queue_depth: int = 0
    #: The slowest executed jobs, as (label, wall seconds), slowest first.
    slowest: list[tuple[str, float]] = field(default_factory=list)

    @classmethod
    def from_events(cls, events: list[FarmEvent]) -> FarmSummary:
        summary = cls()
        timed: list[tuple[str, float]] = []
        for event in events:
            if event.kind == JOB_QUEUED:
                summary.jobs += 1
            elif event.kind == JOB_FINISHED:
                summary.executed += 1
                summary.worker_seconds += event.wall_seconds
                timed.append((event.label, event.wall_seconds))
            elif event.kind == CACHE_HIT:
                summary.cache_hits += 1
            elif event.kind == CACHE_STORE:
                summary.cache_stores += 1
            elif event.kind == POOL_FALLBACK:
                summary.pool_fallbacks += 1
            elif event.kind == JOB_RETRY:
                summary.retries += 1
            elif event.kind == JOB_TIMEOUT:
                summary.timeouts += 1
            elif event.kind == JOB_ABANDONED:
                summary.abandoned += 1
            elif event.kind == WORKER_CRASH:
                summary.worker_crashes += 1
            elif event.kind == WORKER_RESPAWN:
                summary.worker_respawns += 1
            elif event.kind == FAULT_INJECTED:
                summary.faults_injected += 1
            elif event.kind == CACHE_QUARANTINE:
                summary.cache_quarantined += 1
            elif event.kind == CACHE_EVICT:
                summary.cache_evictions += 1
            elif event.kind == JOURNAL_HIT:
                summary.journal_hits += 1
            elif event.kind == JOB_CANCELLED:
                summary.cancelled += 1
            if event.queue_depth > summary.max_queue_depth:
                summary.max_queue_depth = event.queue_depth
        timed.sort(key=lambda pair: -pair[1])
        summary.slowest = timed[:5]
        return summary

    @property
    def hit_rate(self) -> float:
        """Fraction of queued jobs discharged from cache."""
        return self.cache_hits / self.jobs if self.jobs else 0.0

    def one_line(self, mode: str = "sequential") -> str:
        return (
            f"farm: {self.jobs} obligations, "
            f"{self.cache_hits} from cache, "
            f"{self.executed} executed in "
            f"{self.worker_seconds:.2f}s worker time [{mode}]"
        )

    def report_lines(self) -> list[str]:
        lines = [
            f"obligations queued:   {self.jobs}",
            f"discharged from cache: {self.cache_hits} "
            f"({self.hit_rate:.1%})",
            f"executed by workers:  {self.executed} "
            f"({self.worker_seconds:.2f}s worker time)",
            f"cache stores:         {self.cache_stores}",
            f"max queue depth:      {self.max_queue_depth}",
        ]
        if self.pool_fallbacks:
            lines.append(
                f"process-pool fallbacks to inline: {self.pool_fallbacks}"
            )
        if self.journal_hits:
            lines.append(
                f"replayed from journal:  {self.journal_hits}"
            )
        if self.cache_evictions:
            lines.append(
                f"cache entries evicted (LRU): {self.cache_evictions}"
            )
        if self.cancelled:
            lines.append(
                f"cancelled by drain request: {self.cancelled}"
            )
        if self.retries or self.worker_crashes or self.timeouts \
                or self.abandoned or self.faults_injected \
                or self.cache_quarantined:
            lines.append(
                f"retries: {self.retries}  timeouts: {self.timeouts}  "
                f"abandoned: {self.abandoned}"
            )
            lines.append(
                f"worker crashes: {self.worker_crashes}  "
                f"respawns: {self.worker_respawns}  "
                f"faults injected: {self.faults_injected}  "
                f"cache entries quarantined: {self.cache_quarantined}"
            )
        if self.slowest:
            lines.append("slowest obligations:")
            for label, seconds in self.slowest:
                lines.append(f"  {seconds:8.3f}s  {label}")
        return lines
