"""Worker pool: discharges farm jobs concurrently, deterministically,
and — since the resilience layer — *fault-tolerantly*.

``run_jobs`` is the farm's execution core.  It takes the scheduler's job
queue and drives it to completion in phases:

1. **Cache/journal probe** — cacheable jobs are looked up in the proof
   cache (``cache_hit``) and then in the resume journal
   (``journal_hit``); hits skip execution entirely.
2. **Execution** — remaining jobs run sequentially, on a thread pool, or
   on a process pool.  Process workers require picklable thunks; lemma
   obligations are closures over machines and contexts, which pickle
   refuses, so such jobs *fall back to inline execution* in the
   scheduling process (``pool_fallback`` event).  Correctness therefore
   never depends on the pool: every mode runs every job.
3. **Apply + store** — results are written back via each job's ``apply``
   callback *in queue order* on the calling thread, so the per-lemma
   verdict sequence is identical across all modes; freshly computed
   settled verdicts are stored to the cache and appended to the journal.

Resilience semantics (see :mod:`repro.farm.resilience`):

* An attempt that exceeds its wall-clock budget (per-obligation
  deadline, or what is left of the chain budget) yields a **TIMEOUT
  verdict** — inconclusive, never refuted, never hung.  The runaway
  attempt is abandoned on a daemon thread; obligations are pure
  functions of their fingerprint, so the discarded result is harmless.
* A **transient failure** (:class:`~repro.errors.TransientFault`:
  worker death, injected chaos) is retried with deterministic
  exponential backoff, capped by the retry budget; exhaustion yields an
  UNKNOWN verdict (``job_abandoned``).
* A **dead process worker** (real ``kill -9``) breaks the pool; every
  completed result is kept, the casualties are requeued, and the pool
  is rebuilt (``worker_crash`` / ``worker_respawn``).  Requeueing is
  sound because obligations are pure: at-least-once execution cannot
  change a verdict.  The scheduler never waits on a dead queue — a
  broken pool always surfaces as an exception that the respawn loop
  consumes.

An ``ArmadaError`` inside a wrapped obligation becomes a refuted verdict
carrying the error text (the proof engine's historical behaviour); any
other exception propagates to the caller, in every mode.
"""

from __future__ import annotations

import os
import pickle
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.errors import (
    ArmadaError,
    InconclusiveCheck,
    ObligationTimeout,
    TransientFault,
    WorkerCrash,
)
from repro.farm.events import (
    CACHE_HIT,
    CACHE_STORE,
    DEADLINE_EXPIRED,
    FAULT_INJECTED,
    JOB_ABANDONED,
    JOB_CANCELLED,
    JOB_FINISHED,
    JOB_QUEUED,
    JOB_RETRY,
    JOB_STARTED,
    JOB_TIMEOUT,
    JOURNAL_HIT,
    POOL_FALLBACK,
    WORKER_CRASH,
    WORKER_RESPAWN,
    EventLog,
)
from repro.farm.scheduler import Job
from repro.faults.plan import (
    CRASH_WORKER,
    DELAY,
    PHASE_CACHE_STORE,
    PHASE_EXECUTE,
    RAISE,
    TIMEOUT_FAULT,
    FaultRule,
)
from repro.obs import OBS
from repro.verifier.prover import TIMEOUT, UNKNOWN, Verdict

SEQUENTIAL = "sequential"
THREAD = "thread"
PROCESS = "process"
MODES = (SEQUENTIAL, THREAD, PROCESS)


class _DepthTracker:
    """Counts unfinished jobs so events can record queue depth."""

    def __init__(self, pending: int) -> None:
        self._pending = pending
        self._lock = threading.Lock()

    def depth(self) -> int:
        with self._lock:
            return self._pending

    def finish_one(self) -> int:
        with self._lock:
            self._pending -= 1
            return self._pending


def _wrap_armada_error(error: ArmadaError) -> Verdict:
    from repro.proofs.artifacts import bool_verdict

    return bool_verdict(False, {"error": str(error)})


def _timeout_verdict(detail: str) -> Verdict:
    return Verdict(TIMEOUT, {"error": detail})


def _abandoned_verdict(attempts: int, reason: str) -> Verdict:
    return Verdict(
        UNKNOWN,
        {"error": f"abandoned after {attempts} attempt(s): {reason}"},
    )


def _cancelled_verdict() -> Verdict:
    """UNKNOWN, not TIMEOUT: the obligation never ran.  Inconclusive
    verdicts are never cached or journaled, so a drained obligation is
    re-checked by the next (resumed) run."""
    return Verdict(
        UNKNOWN,
        {"error": "cancelled: shutdown requested before this "
                  "obligation ran"},
    )


def _cancel_job(job: Job, events: EventLog,
                tracker: _DepthTracker) -> None:
    """Short-circuit one job a drain request left unstarted."""
    job.result = _inconclusive_result(job, _cancelled_verdict())
    job.finished = True
    events.emit(JOB_CANCELLED, job.key, job.label,
                detail="shutdown requested")
    if OBS.enabled:
        OBS.count("farm.cancelled")
    depth = tracker.finish_one()
    events.emit(JOB_FINISHED, job.key, job.label, queue_depth=depth)


def _inconclusive_result(job: Job, verdict: Verdict):
    """Inconclusive outcome in the shape the job's ``apply`` expects.

    Lemma jobs take Verdicts; global-check jobs (``wrap_errors=False``)
    take strategy results or ArmadaErrors, so their timeout surfaces as
    a validation error instead."""
    if job.wrap_errors:
        return verdict
    detail = (verdict.counterexample or {}).get("error", verdict.status)
    return InconclusiveCheck(str(detail))


def _call_with_deadline(fn, budget: float | None):
    """Run *fn* with a wall-clock budget.

    The attempt runs on a daemon helper thread; if the budget expires
    the helper is abandoned (its eventual result is discarded — sound
    because obligations are pure) and :class:`ObligationTimeout` is
    raised in the caller."""
    if budget is None:
        return fn()
    if budget <= 0:
        raise ObligationTimeout(0.0, "chain deadline budget")
    box: dict[str, object] = {}

    def target() -> None:
        try:
            box["result"] = fn()
        except BaseException as error:  # re-raised on the caller side
            box["error"] = error

    helper = threading.Thread(
        target=target, daemon=True, name="armada-obligation"
    )
    helper.start()
    helper.join(budget)
    if helper.is_alive():
        raise ObligationTimeout(budget)
    if "error" in box:
        raise box["error"]  # type: ignore[misc]
    return box["result"]


def _fire_execute_fault(rule: FaultRule, in_pool_worker: bool) -> None:
    """Apply one injected fault at the execute phase.  ``delay``
    returns (the obligation then runs late); the rest interrupt."""
    if rule.action == DELAY:
        time.sleep(rule.seconds)
        return
    if rule.action == RAISE:
        raise TransientFault(
            rule.message or f"injected transient fault ({rule.describe()})"
        )
    if rule.action == CRASH_WORKER:
        if in_pool_worker:
            # A real kill -9 of this pool worker, mid-obligation.
            os.kill(os.getpid(), signal.SIGKILL)
        raise WorkerCrash(f"injected worker crash ({rule.describe()})")
    if rule.action == TIMEOUT_FAULT:
        raise ObligationTimeout(rule.seconds, "injected deadline")


def _picklable(thunk) -> bool:
    try:
        pickle.dumps(thunk)
        return True
    except Exception:
        return False


def _chain_budget_expired(job: Job, events: EventLog,
                          tracker: _DepthTracker, res) -> None:
    """Short-circuit a job the chain deadline left no budget for."""
    detail = (
        f"chain deadline budget ({res.chain_deadline:g}s) exhausted "
        "before this obligation ran"
    )
    job.result = _inconclusive_result(job, _timeout_verdict(detail))
    job.finished = True
    if res.report_expiry_once():
        events.emit(DEADLINE_EXPIRED, "", "", detail=detail)
    events.emit(JOB_TIMEOUT, job.key, job.label, detail=detail)
    if OBS.enabled:
        OBS.count("farm.timeouts")
    depth = tracker.finish_one()
    events.emit(JOB_FINISHED, job.key, job.label, queue_depth=depth)


def _run_one(job: Job, events: EventLog, tracker: _DepthTracker,
             res=None) -> None:
    """Execute one job in this process, with retries and deadlines."""
    events.emit(JOB_STARTED, job.key, job.label,
                queue_depth=tracker.depth())
    traced = OBS.enabled
    if traced:
        queued_at = job.metadata.get("queued_at")
        if queued_at is not None:
            OBS.observe("farm.queue_wait_seconds",
                        time.perf_counter() - queued_at)
    while True:
        if res is not None and res.shutdown_requested():
            job.result = _inconclusive_result(job, _cancelled_verdict())
            events.emit(JOB_CANCELLED, job.key, job.label,
                        detail="shutdown requested")
            if traced:
                OBS.count("farm.cancelled")
            break
        if res is not None and res.chain_expired():
            detail = (
                f"chain deadline budget ({res.chain_deadline:g}s) "
                "exhausted"
            )
            job.result = _inconclusive_result(
                job, _timeout_verdict(detail)
            )
            if res.report_expiry_once():
                events.emit(DEADLINE_EXPIRED, "", "", detail=detail)
            events.emit(JOB_TIMEOUT, job.key, job.label, detail=detail)
            if traced:
                OBS.count("farm.timeouts")
            break
        rule = None
        if res is not None:
            rule = res.fault(PHASE_EXECUTE, job.index, job.label,
                             job.attempts)
        if rule is not None:
            job.faults_hit.append(rule.action)
            events.emit(FAULT_INJECTED, job.key, job.label,
                        detail=rule.describe())
            if traced:
                OBS.count("farm.faults_injected")
        budget = res.attempt_budget() if res is not None else None
        job.attempts += 1
        started = time.perf_counter()
        span_attrs = {"cached": False}
        if rule is not None:
            span_attrs["fault"] = rule.action

        def attempt():
            if rule is not None:
                _fire_execute_fault(rule, in_pool_worker=False)
            return job.thunk()

        try:
            with OBS.span(job.label, "obligation", **span_attrs) \
                    if traced else _NULL_CONTEXT:
                try:
                    if budget is None and rule is None:
                        result = job.thunk()  # zero-overhead fast path
                    else:
                        result = _call_with_deadline(attempt, budget)
                except ArmadaError as error:
                    if not job.wrap_errors:
                        raise
                    result = _wrap_armada_error(error)
            job.result = result
            job.wall_seconds = time.perf_counter() - started
            break
        except ObligationTimeout as timeout:
            job.wall_seconds = time.perf_counter() - started
            job.result = _inconclusive_result(
                job, _timeout_verdict(str(timeout))
            )
            events.emit(JOB_TIMEOUT, job.key, job.label,
                        wall_seconds=job.wall_seconds,
                        detail=str(timeout))
            if traced:
                OBS.count("farm.timeouts")
            break
        except TransientFault as fault:
            job.wall_seconds = time.perf_counter() - started
            if isinstance(fault, WorkerCrash):
                events.emit(WORKER_CRASH, job.key, job.label,
                            detail=str(fault))
                if traced:
                    OBS.count("farm.worker_crashes")
            max_retries = res.max_retries if res is not None else 0
            if job.attempts > max_retries:
                job.result = _inconclusive_result(
                    job, _abandoned_verdict(job.attempts, str(fault))
                )
                events.emit(JOB_ABANDONED, job.key, job.label,
                            detail=str(fault))
                if traced:
                    OBS.count("farm.abandoned")
                break
            events.emit(JOB_RETRY, job.key, job.label,
                        detail=str(fault))
            if traced:
                OBS.count("farm.retries")
            time.sleep(res.backoff_seconds(job.key, job.attempts))
    job.finished = True
    depth = tracker.finish_one()
    events.emit(JOB_FINISHED, job.key, job.label,
                wall_seconds=job.wall_seconds, queue_depth=depth)


class _NullContext:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None


_NULL_CONTEXT = _NullContext()


def run_jobs(
    jobs: list[Job],
    mode: str = SEQUENTIAL,
    max_workers: int = 1,
    cache=None,
    events: EventLog | None = None,
    resilience=None,
    journal=None,
) -> list[Job]:
    """Discharge every job; returns the same list with results filled."""
    if mode not in MODES:
        raise ValueError(f"unknown farm mode {mode!r}; expected {MODES}")
    if events is None:
        events = EventLog()
    res = resilience
    if res is not None:
        res.arm()

    traced = OBS.enabled
    queued_at = time.perf_counter() if traced else 0.0
    for position, job in enumerate(jobs):
        # Batch-relative obligation index: the deterministic address
        # fault-plan rules use (``armada verify`` discharges the whole
        # chain as one batch, so indices are chain-wide there).
        job.index = position
        events.emit(JOB_QUEUED, job.key, job.label,
                    queue_depth=len(jobs) - position)
        if traced:
            job.metadata["queued_at"] = queued_at

    to_run: list[Job] = []
    for job in jobs:
        if cache is not None and job.cacheable:
            verdict = cache.get(job.key)
            if verdict is not None:
                job.result = verdict
                job.finished = True
                job.from_cache = True
                events.emit(CACHE_HIT, job.key, job.label)
                if traced:
                    OBS.count("farm.cache_hits")
                    # A zero-duration span so traces cover *every*
                    # obligation, discharged-from-cache ones included.
                    with OBS.span(job.label, "obligation", cached=True):
                        pass
                continue
            if traced:
                OBS.count("farm.cache_misses")
        if journal is not None and job.cacheable:
            verdict = journal.lookup(job.key)
            if verdict is not None:
                job.result = verdict
                job.finished = True
                job.from_journal = True
                events.emit(JOURNAL_HIT, job.key, job.label)
                if traced:
                    OBS.count("farm.journal_hits")
                    with OBS.span(job.label, "obligation",
                                  cached=True, journal=True):
                        pass
                continue
        to_run.append(job)

    tracker = _DepthTracker(len(to_run))
    workers = max(1, max_workers)
    if mode == SEQUENTIAL or workers == 1 or len(to_run) <= 1:
        for job in to_run:
            _run_one(job, events, tracker, res)
    elif mode == THREAD:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_run_one, job, events, tracker, res)
                for job in to_run
            ]
            for future in futures:
                future.result()
    else:  # PROCESS
        _run_process_mode(to_run, events, tracker, workers, res)

    # Deterministic write-back: queue order, calling thread.
    for job in jobs:
        job.apply(job.result)
        if (
            cache is not None
            and job.cacheable
            and not job.from_cache
            and not job.from_journal
            and isinstance(job.result, Verdict)
        ):
            if cache.put(job.key, job.result):
                events.emit(CACHE_STORE, job.key, job.label)
                rule = None
                if res is not None:
                    rule = res.fault(PHASE_CACHE_STORE, job.index,
                                     job.label, 0)
                if rule is not None and cache.corrupt_entry(job.key):
                    job.faults_hit.append(rule.action)
                    events.emit(FAULT_INJECTED, job.key, job.label,
                                detail=rule.describe())
                    if traced:
                        OBS.count("farm.faults_injected")
        if (
            journal is not None
            and job.cacheable
            and not job.from_journal
            and isinstance(job.result, Verdict)
        ):
            journal.record(job.key, job.result)
    return jobs


# ----------------------------------------------------------------------
# process mode


def _pool_attempt(thunk, label, rule, budget, shard_dir, traced):
    """One attempt inside a pool worker process.

    Transient and timeout outcomes cross the process boundary as tagged
    tuples (custom exceptions do not all survive pickling); ArmadaError
    propagates as before.  A ``crash_worker`` rule SIGKILLs this worker
    mid-obligation — this function then never returns and the parent
    observes a broken pool.
    """
    if traced and not OBS.enabled and shard_dir is not None:
        OBS.enable_shard(shard_dir)
    span_attrs = {"cached": False}
    if rule is not None:
        span_attrs["fault"] = rule.action
    with OBS.span(label, "obligation", **span_attrs) \
            if OBS.enabled else _NULL_CONTEXT:

        def attempt():
            if rule is not None:
                _fire_execute_fault(rule, in_pool_worker=True)
            return thunk()

        try:
            return ("ok", _call_with_deadline(attempt, budget))
        except ObligationTimeout as timeout:
            return ("timeout", str(timeout))
        except TransientFault as fault:
            return ("transient", str(fault))


def _finish_pool_job(job, result, started, events, tracker) -> None:
    job.result = result
    job.wall_seconds = time.perf_counter() - started
    job.finished = True
    depth = tracker.finish_one()
    events.emit(JOB_FINISHED, job.key, job.label,
                wall_seconds=job.wall_seconds, queue_depth=depth)


def _run_process_mode(
    to_run: list[Job],
    events: EventLog,
    tracker: _DepthTracker,
    workers: int,
    res=None,
) -> None:
    """Process-pool execution with inline fallback, crash detection,
    and pool respawn.

    Obligations that close over non-picklable state (in practice: any
    closure) cannot cross a process boundary; they run inline through
    the same resilient path as thread mode.  Poolable jobs run in
    rounds: a worker death breaks the whole pool (that is how
    ``ProcessPoolExecutor`` surfaces SIGKILL), so completed results are
    kept, the casualties are requeued, and a fresh pool is spawned for
    the next round.  Rounds always terminate: every round either
    finishes a job or consumes someone's retry budget, and both are
    finite.
    """
    poolable = [job for job in to_run if _picklable(job.thunk)]
    inline = [job for job in to_run if not _picklable(job.thunk)]
    traced = OBS.enabled
    shard_dir = OBS.shard_dir() if traced else None
    for job in inline:
        events.emit(POOL_FALLBACK, job.key, job.label,
                    queue_depth=tracker.depth())
        job.ran_inline = True
        _run_one(job, events, tracker, res)

    pending = list(poolable)
    pool: ProcessPoolExecutor | None = None
    try:
        while pending:
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=workers)
            batch, pending = pending, []
            submitted: list[tuple[Job, object, FaultRule | None,
                                  float]] = []
            pool_broken = False
            for job in batch:
                if res is not None and res.shutdown_requested():
                    _cancel_job(job, events, tracker)
                    continue
                if res is not None and res.chain_expired():
                    _chain_budget_expired(job, events, tracker, res)
                    continue
                rule = None
                if res is not None:
                    rule = res.fault(PHASE_EXECUTE, job.index,
                                     job.label, job.attempts)
                if rule is not None:
                    job.faults_hit.append(rule.action)
                    events.emit(FAULT_INJECTED, job.key, job.label,
                                detail=rule.describe())
                    if traced:
                        OBS.count("farm.faults_injected")
                budget = (
                    res.attempt_budget() if res is not None else None
                )
                events.emit(JOB_STARTED, job.key, job.label,
                            queue_depth=tracker.depth())
                job.attempts += 1
                try:
                    future = pool.submit(
                        _pool_attempt, job.thunk, job.label, rule,
                        budget, shard_dir, traced,
                    )
                except BrokenProcessPool:
                    # Pool died while we were still submitting: the
                    # attempt never ran, so it costs no retry budget.
                    job.attempts -= 1
                    pool_broken = True
                    pending.append(job)
                    continue
                submitted.append((job, future, rule, time.perf_counter()))

            casualties: list[tuple[Job, FaultRule | None]] = []
            for job, future, rule, started in submitted:
                try:
                    tag, *payload = future.result()
                except BrokenProcessPool:
                    pool_broken = True
                    casualties.append((job, rule))
                    continue
                except ArmadaError as error:
                    if not job.wrap_errors:
                        raise
                    _finish_pool_job(job, _wrap_armada_error(error),
                                     started, events, tracker)
                    continue
                if tag == "ok":
                    _finish_pool_job(job, payload[0], started, events,
                                     tracker)
                elif tag == "timeout":
                    events.emit(JOB_TIMEOUT, job.key, job.label,
                                detail=payload[0])
                    if traced:
                        OBS.count("farm.timeouts")
                    _finish_pool_job(
                        job,
                        _inconclusive_result(
                            job, _timeout_verdict(payload[0])
                        ),
                        started, events, tracker,
                    )
                else:  # transient
                    reason = payload[0]
                    max_retries = (
                        res.max_retries if res is not None else 0
                    )
                    if job.attempts > max_retries:
                        events.emit(JOB_ABANDONED, job.key, job.label,
                                    detail=reason)
                        if traced:
                            OBS.count("farm.abandoned")
                        _finish_pool_job(
                            job,
                            _inconclusive_result(
                                job,
                                _abandoned_verdict(job.attempts, reason),
                            ),
                            started, events, tracker,
                        )
                    else:
                        events.emit(JOB_RETRY, job.key, job.label,
                                    detail=reason)
                        if traced:
                            OBS.count("farm.retries")
                        time.sleep(
                            res.backoff_seconds(job.key, job.attempts)
                        )
                        pending.append(job)

            if casualties:
                events.emit(
                    WORKER_CRASH, casualties[0][0].key,
                    casualties[0][0].label,
                    detail=(
                        f"process-pool worker died; {len(casualties)} "
                        "in-flight obligation(s) requeued"
                    ),
                )
                if traced:
                    OBS.count("farm.worker_crashes")
                # Blame: jobs whose injected rule was the crash consumed
                # their attempt; innocent bystanders that died with the
                # pool get their attempt back (it never completed).
                # With no injected crash (a real kill), every casualty
                # keeps the attempt so retries stay bounded.
                blamed = {
                    id(job) for job, rule in casualties
                    if rule is not None and rule.action == CRASH_WORKER
                }
                max_retries = res.max_retries if res is not None else 0
                for job, rule in casualties:
                    if blamed and id(job) not in blamed:
                        job.attempts -= 1
                    if job.attempts > max_retries:
                        events.emit(JOB_ABANDONED, job.key, job.label,
                                    detail="worker crash")
                        if traced:
                            OBS.count("farm.abandoned")
                        _finish_pool_job(
                            job,
                            _inconclusive_result(
                                job,
                                _abandoned_verdict(
                                    job.attempts,
                                    "worker crash (kill -9?)",
                                ),
                            ),
                            time.perf_counter(), events, tracker,
                        )
                    else:
                        events.emit(JOB_RETRY, job.key, job.label,
                                    detail="worker crash — requeued")
                        if traced:
                            OBS.count("farm.retries")
                        pending.append(job)

            if pool_broken:
                pool.shutdown(wait=False)
                pool = None
                if pending:
                    events.emit(WORKER_RESPAWN, "", "",
                                detail=f"pool rebuilt x{workers}")
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
    if traced:
        # The scheduler side merges worker shards back into the main
        # trace once the pool has drained (process-safe by design).
        OBS.merge_shards()
