"""Worker pool: discharges farm jobs concurrently, deterministically.

``run_jobs`` is the farm's execution core.  It takes the scheduler's job
queue and drives it to completion in three phases:

1. **Cache probe** — cacheable jobs are looked up in the proof cache;
   hits skip execution entirely (a ``cache_hit`` event is emitted).
2. **Execution** — remaining jobs run sequentially, on a thread pool, or
   on a process pool.  Process workers require picklable thunks; lemma
   obligations are closures over machines and contexts, which pickle
   refuses, so such jobs *fall back to inline execution* in the
   scheduling process (``pool_fallback`` event).  Correctness therefore
   never depends on the pool: every mode runs every job.
3. **Apply + store** — results are written back via each job's ``apply``
   callback *in queue order* on the calling thread, so the per-lemma
   verdict sequence is identical across all modes; freshly computed
   cacheable verdicts are stored to the cache.

An ``ArmadaError`` inside a wrapped obligation becomes a refuted verdict
carrying the error text (the proof engine's historical behaviour); any
other exception propagates to the caller, in every mode.
"""

from __future__ import annotations

import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.errors import ArmadaError
from repro.farm.events import (
    CACHE_HIT,
    CACHE_STORE,
    JOB_FINISHED,
    JOB_QUEUED,
    JOB_STARTED,
    POOL_FALLBACK,
    EventLog,
)
from repro.farm.scheduler import Job
from repro.obs import OBS
from repro.verifier.prover import Verdict

SEQUENTIAL = "sequential"
THREAD = "thread"
PROCESS = "process"
MODES = (SEQUENTIAL, THREAD, PROCESS)


class _DepthTracker:
    """Counts unfinished jobs so events can record queue depth."""

    def __init__(self, pending: int) -> None:
        self._pending = pending
        self._lock = threading.Lock()

    def depth(self) -> int:
        with self._lock:
            return self._pending

    def finish_one(self) -> int:
        with self._lock:
            self._pending -= 1
            return self._pending


def _wrap_armada_error(error: ArmadaError) -> Verdict:
    from repro.proofs.artifacts import bool_verdict

    return bool_verdict(False, {"error": str(error)})


def _run_thunk(job: Job) -> tuple:
    """Execute one job's thunk, returning (result, wall_seconds)."""
    started = time.perf_counter()
    try:
        result = job.thunk()
    except ArmadaError as error:
        if not job.wrap_errors:
            raise
        result = _wrap_armada_error(error)
    return result, time.perf_counter() - started


def _invoke(thunk):
    """Module-level trampoline so process pools can call a pickled
    thunk."""
    return thunk()


def _invoke_traced(thunk, label, shard_dir):
    """Trampoline for traced process-pool jobs: record the obligation
    span into this worker's shard.

    Forked workers inherit an enabled observer and are redirected to a
    shard automatically; spawned workers start disabled, so the parent
    ships the shard directory along and the worker opens its shard
    explicitly.  Either way the parent merges shards after the round.
    """
    if not OBS.enabled and shard_dir is not None:
        OBS.enable_shard(shard_dir)
    with OBS.span(label, "obligation", cached=False):
        return thunk()


def _picklable(thunk) -> bool:
    try:
        pickle.dumps(thunk)
        return True
    except Exception:
        return False


def _run_one(job: Job, events: EventLog, tracker: _DepthTracker) -> None:
    events.emit(JOB_STARTED, job.key, job.label,
                queue_depth=tracker.depth())
    if OBS.enabled:
        queued_at = job.metadata.get("queued_at")
        if queued_at is not None:
            OBS.observe("farm.queue_wait_seconds",
                        time.perf_counter() - queued_at)
        with OBS.span(job.label, "obligation", cached=False):
            job.result, job.wall_seconds = _run_thunk(job)
    else:
        job.result, job.wall_seconds = _run_thunk(job)
    job.finished = True
    depth = tracker.finish_one()
    events.emit(JOB_FINISHED, job.key, job.label,
                wall_seconds=job.wall_seconds, queue_depth=depth)


def run_jobs(
    jobs: list[Job],
    mode: str = SEQUENTIAL,
    max_workers: int = 1,
    cache=None,
    events: EventLog | None = None,
) -> list[Job]:
    """Discharge every job; returns the same list with results filled."""
    if mode not in MODES:
        raise ValueError(f"unknown farm mode {mode!r}; expected {MODES}")
    if events is None:
        events = EventLog()

    traced = OBS.enabled
    queued_at = time.perf_counter() if traced else 0.0
    for position, job in enumerate(jobs):
        events.emit(JOB_QUEUED, job.key, job.label,
                    queue_depth=len(jobs) - position)
        if traced:
            job.metadata["queued_at"] = queued_at

    to_run: list[Job] = []
    for job in jobs:
        if cache is not None and job.cacheable:
            verdict = cache.get(job.key)
            if verdict is not None:
                job.result = verdict
                job.finished = True
                job.from_cache = True
                events.emit(CACHE_HIT, job.key, job.label)
                if traced:
                    OBS.count("farm.cache_hits")
                    # A zero-duration span so traces cover *every*
                    # obligation, discharged-from-cache ones included.
                    with OBS.span(job.label, "obligation", cached=True):
                        pass
                continue
            if traced:
                OBS.count("farm.cache_misses")
        to_run.append(job)

    tracker = _DepthTracker(len(to_run))
    workers = max(1, max_workers)
    if mode == SEQUENTIAL or workers == 1 or len(to_run) <= 1:
        for job in to_run:
            _run_one(job, events, tracker)
    elif mode == THREAD:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_run_one, job, events, tracker)
                for job in to_run
            ]
            for future in futures:
                future.result()
    else:  # PROCESS
        _run_process_mode(to_run, events, tracker, workers)

    # Deterministic write-back: queue order, calling thread.
    for job in jobs:
        job.apply(job.result)
        if (
            cache is not None
            and job.cacheable
            and not job.from_cache
            and isinstance(job.result, Verdict)
        ):
            if cache.put(job.key, job.result):
                events.emit(CACHE_STORE, job.key, job.label)
    return jobs


def _run_process_mode(
    to_run: list[Job],
    events: EventLog,
    tracker: _DepthTracker,
    workers: int,
) -> None:
    """Process-pool execution with per-job inline fallback.

    Obligations that close over non-picklable state (in practice: any
    closure) cannot cross a process boundary; they run inline here so
    the verdicts are always complete and identical to the other modes.
    """
    poolable = [job for job in to_run if _picklable(job.thunk)]
    inline = [job for job in to_run if not _picklable(job.thunk)]
    traced = OBS.enabled
    shard_dir = OBS.shard_dir() if traced else None
    futures = {}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for job in poolable:
            events.emit(JOB_STARTED, job.key, job.label,
                        queue_depth=tracker.depth())
            if traced:
                future = pool.submit(
                    _invoke_traced, job.thunk, job.label, shard_dir
                )
            else:
                future = pool.submit(_invoke, job.thunk)
            futures[id(job)] = (job, future, time.perf_counter())
        for job in inline:
            events.emit(POOL_FALLBACK, job.key, job.label,
                        queue_depth=tracker.depth())
            job.ran_inline = True
            _run_one(job, events, tracker)
        for job, future, started in futures.values():
            try:
                job.result = future.result()
            except ArmadaError as error:
                if not job.wrap_errors:
                    raise
                job.result = _wrap_armada_error(error)
            job.wall_seconds = time.perf_counter() - started
            job.finished = True
            depth = tracker.finish_one()
            events.emit(JOB_FINISHED, job.key, job.label,
                        wall_seconds=job.wall_seconds, queue_depth=depth)
    if traced:
        # The scheduler side merges worker shards back into the main
        # trace once the pool has drained (process-safe by design).
        OBS.merge_shards()
