"""Deterministic fault plans: seeded, addressable chaos injection.

A :class:`FaultPlan` is a list of :class:`FaultRule` records, each
naming *where* a fault fires (an obligation index in the farm's batch
queue, a label substring, a pipeline phase, a retry attempt) and *what*
happens there:

* ``crash_worker`` — the worker holding the obligation dies.  In a
  process-pool worker this is a real ``SIGKILL`` of the worker process
  mid-obligation; in thread/sequential modes it raises
  :class:`~repro.errors.WorkerCrash`, which the farm treats identically
  (the obligation is requeued and retried).
* ``delay`` — sleep ``seconds`` before running the obligation (useful
  for forcing real deadline expiries).
* ``raise`` — raise a :class:`~repro.errors.TransientFault` (a generic
  retriable infrastructure failure).
* ``timeout`` — the obligation's deadline expires immediately: it
  yields a TIMEOUT verdict without burning wall-clock time.
* ``corrupt_cache_entry`` — after the verdict is stored, truncate its
  on-disk cache entry, exercising the cache's framing/checksum
  self-healing on the next read.

Rules address a specific ``attempt`` (0 = first execution), so a rule
that crashes attempt 0 lets the retry at attempt 1 succeed — plans are
fully deterministic with no shared mutable state, which is what lets
the same plan object be evaluated consistently in the scheduling
process *and* inside spawned pool workers.  The plan's ``seed`` feeds
the farm's retry-backoff jitter, making even the sleep pattern of a
chaos run reproducible.

Plans are disabled by default everywhere: the farm only evaluates a
plan when one was explicitly supplied (``armada verify --inject-faults
PLAN.json``), and every hook guards itself with a single ``is None``
test, so the zero-fault hot path pays nothing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import FaultPlanError

CRASH_WORKER = "crash_worker"
DELAY = "delay"
RAISE = "raise"
TIMEOUT_FAULT = "timeout"
CORRUPT_CACHE_ENTRY = "corrupt_cache_entry"
ACTIONS = (CRASH_WORKER, DELAY, RAISE, TIMEOUT_FAULT,
           CORRUPT_CACHE_ENTRY)

#: Pipeline phases a rule can attach to.
PHASE_EXECUTE = "execute"
PHASE_CACHE_STORE = "cache_store"
PHASES = (PHASE_EXECUTE, PHASE_CACHE_STORE)

#: The phase each action fires in unless the rule says otherwise.
_DEFAULT_PHASE = {
    CRASH_WORKER: PHASE_EXECUTE,
    DELAY: PHASE_EXECUTE,
    RAISE: PHASE_EXECUTE,
    TIMEOUT_FAULT: PHASE_EXECUTE,
    CORRUPT_CACHE_ENTRY: PHASE_CACHE_STORE,
}


@dataclass(frozen=True)
class FaultRule:
    """One addressable fault.

    A rule matches an obligation when every constraint it states holds:
    ``index`` (position in the farm's batch queue), ``label`` (substring
    of the job's ``proof:lemma`` label), and ``attempt`` (which retry;
    ``None`` fires on every attempt — use with care, an always-crashing
    rule exhausts the retry budget and the obligation goes UNKNOWN).
    """

    action: str
    index: int | None = None
    label: str | None = None
    phase: str = ""
    attempt: int | None = 0
    #: ``delay``: how long to sleep; ``timeout``: the deadline to report.
    seconds: float = 0.0
    #: ``raise``: the TransientFault message.
    message: str = ""

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise FaultPlanError(
                f"unknown fault action {self.action!r} "
                f"(expected one of {', '.join(ACTIONS)})"
            )
        phase = self.phase or _DEFAULT_PHASE[self.action]
        if phase not in PHASES:
            raise FaultPlanError(
                f"unknown fault phase {phase!r} "
                f"(expected one of {', '.join(PHASES)})"
            )
        object.__setattr__(self, "phase", phase)
        if self.index is None and self.label is None:
            raise FaultPlanError(
                f"fault rule {self.action!r} must be addressable: "
                "give an obligation index and/or a label substring"
            )

    def matches(self, phase: str, index: int, label: str,
                attempt: int) -> bool:
        if phase != self.phase:
            return False
        if self.index is not None and index != self.index:
            return False
        if self.label is not None and self.label not in label:
            return False
        if self.attempt is not None and attempt != self.attempt:
            return False
        return True

    def describe(self) -> str:
        where = []
        if self.index is not None:
            where.append(f"index={self.index}")
        if self.label is not None:
            where.append(f"label~{self.label!r}")
        if self.attempt is not None:
            where.append(f"attempt={self.attempt}")
        return f"{self.action}[{', '.join(where)}]"

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"action": self.action,
                               "phase": self.phase}
        if self.index is not None:
            out["index"] = self.index
        if self.label is not None:
            out["label"] = self.label
        if self.attempt != 0:
            out["attempt"] = self.attempt
        if self.seconds:
            out["seconds"] = self.seconds
        if self.message:
            out["message"] = self.message
        return out


_RULE_KEYS = {"action", "index", "label", "phase", "attempt",
              "seconds", "message"}


def _rule_from_dict(raw: Any, position: int) -> FaultRule:
    if not isinstance(raw, dict):
        raise FaultPlanError(
            f"fault #{position} is not an object: {raw!r}"
        )
    unknown = set(raw) - _RULE_KEYS
    if unknown:
        raise FaultPlanError(
            f"fault #{position} has unknown keys: "
            + ", ".join(sorted(unknown))
        )
    if "action" not in raw:
        raise FaultPlanError(f"fault #{position} is missing 'action'")
    try:
        return FaultRule(
            action=raw["action"],
            index=raw.get("index"),
            label=raw.get("label"),
            phase=raw.get("phase", ""),
            attempt=raw.get("attempt", 0),
            seconds=float(raw.get("seconds", 0.0)),
            message=str(raw.get("message", "")),
        )
    except (TypeError, ValueError) as error:
        raise FaultPlanError(f"fault #{position}: {error}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable, picklable set of fault rules."""

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0
    name: str = "<plan>"

    def match(self, phase: str, index: int, label: str,
              attempt: int = 0) -> FaultRule | None:
        """The first rule firing at this site, or None."""
        for rule in self.rules:
            if rule.matches(phase, index, label, attempt):
                return rule
        return None

    def __len__(self) -> int:
        return len(self.rules)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, raw: Any, name: str = "<plan>") -> "FaultPlan":
        if not isinstance(raw, dict):
            raise FaultPlanError(
                "fault plan must be a JSON object with a 'faults' list"
            )
        unknown = set(raw) - {"seed", "faults"}
        if unknown:
            raise FaultPlanError(
                "fault plan has unknown keys: "
                + ", ".join(sorted(unknown))
            )
        faults = raw.get("faults", [])
        if not isinstance(faults, list):
            raise FaultPlanError("'faults' must be a list")
        seed = raw.get("seed", 0)
        if not isinstance(seed, int):
            raise FaultPlanError("'seed' must be an integer")
        rules = tuple(
            _rule_from_dict(rule, position)
            for position, rule in enumerate(faults)
        )
        return cls(rules=rules, seed=seed, name=name)


def load_fault_plan(path: str | Path) -> FaultPlan:
    """Parse a ``--inject-faults`` JSON file into a plan."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise FaultPlanError(f"cannot read fault plan {path}: {error}")
    try:
        raw = json.loads(text)
    except ValueError as error:
        raise FaultPlanError(
            f"fault plan {path} is not valid JSON: {error}"
        )
    return FaultPlan.from_dict(raw, name=str(path))
