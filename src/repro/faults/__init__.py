"""``repro.faults`` — deterministic fault injection for the farm.

Chaos engineering for the verification farm: a :class:`FaultPlan` is a
seeded, JSON-serializable description of *exactly which* obligations
fail *in exactly which way* (worker crash, delay, transient raise,
forced timeout, cache-entry corruption), threaded through the
scheduler/workers/cache behind a single disabled-by-default guard and
exposed as ``armada verify --inject-faults PLAN.json`` — so chaos runs
are reproducible in tests and CI instead of being flaky by
construction.

See :mod:`repro.faults.plan` for the rule/plan model and the JSON
format, and :mod:`repro.farm.resilience` for the policy knobs (retries,
deadlines) that determine how the farm *survives* what a plan throws
at it.
"""

from repro.faults.plan import (  # noqa: F401
    ACTIONS,
    CORRUPT_CACHE_ENTRY,
    CRASH_WORKER,
    DELAY,
    PHASE_CACHE_STORE,
    PHASE_EXECUTE,
    PHASES,
    RAISE,
    TIMEOUT_FAULT,
    FaultPlan,
    FaultRule,
    load_fault_plan,
)
