"""Step objects: the program-specific transition types of the state
machine (§3.2.2) with encapsulated nondeterminism (§4.1).

Each statement of an Armada program translates into one or more step
*types*, each with "a function that describes its specific semantics".
A step instance is attached to a source PC and names its successor PC.
All nondeterminism of a step — nondet ``*`` expressions, havoced values
of a ``somehow``, uninitialized stack variables of a call, allocation
failure of ``malloc`` — is manifest in the step's *parameters*
(:meth:`Step.nondet_vars`), so that ``next_state(state, step-with-params)``
is a deterministic function.  This is exactly the paper's
non-determinism encapsulation, which later makes reduction-commutativity
lemmas mechanical.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any, TYPE_CHECKING

from repro.lang import asts as ast
from repro.lang import types as ty
from repro.machine import evaluator as ev
from repro.machine.evaluator import (
    EvalContext,
    GhostPlace,
    LocalPlace,
    MemoryPlace,
    Place,
)
from repro.machine.state import (
    Frame,
    ProgramState,
    TERM_NORMAL,
    ThreadState,
    UBSignal,
)
from repro.machine.values import (
    CompositeValue,
    Location,
    NULL,
    Pointer,
    Root,
    default_value,
    leaf_locations,
)
#: Fallback for contexts without an attached model (legacy callers);
#: resolved lazily because repro.memmodel imports repro.machine.state.
_TSO = None


def _default_model():
    global _TSO
    if _TSO is None:
        from repro.memmodel import get_model

        _TSO = get_model("tso")
    return _TSO

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.program import StateMachine


@dataclass(frozen=True, slots=True)
class NondetVar:
    """One encapsulated source of nondeterminism in a step.

    ``kind`` distinguishes guard/expression nondet (``expr``), havoc
    targets of ``somehow``/extern models (``havoc``), uninitialized
    stack variables (``newframe``, the paper's ``newframe_x``), and
    allocation success (``alloc``).
    """

    key: Any
    type: ty.Type
    kind: str


def _collect_nondet(exprs: list[ast.Expr]) -> list[ast.Nondet]:
    found: list[ast.Nondet] = []
    for expr in exprs:
        for node in ast.walk_expr(expr):
            if isinstance(node, ast.Nondet):
                found.append(node)
    return found


# ---------------------------------------------------------------------------
# Writing places


def write_place(
    ec: EvalContext,
    state: ProgramState,
    place: Place,
    value: Any,
    buffered: bool,
) -> ProgramState:
    """Write *value* to *place*.

    Shared-memory writes are committed by the active memory model: under
    x86-TSO they go through the thread's store buffer when *buffered*
    (ordinary ``:=``) or directly to global memory for bypassing ``::=``
    writes; under SC always directly; under RA as release writes
    appended to the location history.  Contexts without an attached
    model (strategy/analysis evaluation) use the inline TSO path.
    Frame and ghost writes are always direct.  Composite values
    decompose into leaf writes in order.
    """
    tid = ec.tid
    if isinstance(place, MemoryPlace):
        status = state.allocation.get(place.location.root)
        if status == "freed":
            raise UBSignal(f"write to freed object {place.location.root}")
        if status is None and place.location.root.kind != "global":
            raise UBSignal(f"write to invalid object {place.location.root}")
        leaves = _decompose(place.location, place.type, value)
        if ec.memmodel is not None:
            return ec.memmodel.write_leaves(state, tid, leaves, buffered)
        if buffered:
            thread = state.thread(tid)
            for loc, leaf in leaves:
                thread = thread.push_buffer(loc, leaf)
            return state.with_thread(thread)
        new_memory = state.memory
        for loc, leaf in leaves:
            new_memory = new_memory.set(loc, leaf)
        return replace(state, memory=new_memory)
    if isinstance(place, LocalPlace):
        thread = state.thread(tid)
        frame = thread.top
        if place.path:
            current = frame.locals.get(place.name)
            if not isinstance(current, CompositeValue):
                raise UBSignal(f"component write to non-composite "
                               f"{place.name}")
            current = _update_composite(current, place.path, value)
            value = current
        return state.with_thread(thread.set_local(place.name, value))
    assert isinstance(place, GhostPlace)
    return state.with_ghost(place.name, value)


def _decompose(
    location: Location, t: ty.Type, value: Any
) -> list[tuple[Location, Any]]:
    if isinstance(t, (ty.ArrayType, ty.StructType)):
        if not isinstance(value, CompositeValue):
            raise UBSignal("composite write with non-composite value")
        result: list[tuple[Location, Any]] = []
        children = (
            [(i, t.element) for i in range(t.size)]
            if isinstance(t, ty.ArrayType)
            else [(i, f.type) for i, f in enumerate(t.fields)]
        )
        for index, sub in children:
            result.extend(
                _decompose(location.child(index), sub, value.children[index])
            )
        return result
    return [(location, value)]


def _update_composite(
    value: CompositeValue, path: tuple[int, ...], new: Any
) -> CompositeValue:
    if len(path) == 1:
        return value.with_child(path[0], new)
    child = value.children[path[0]]
    if not isinstance(child, CompositeValue):
        raise UBSignal("component write through non-composite")
    return value.with_child(
        path[0], _update_composite(child, path[1:], new)
    )


# ---------------------------------------------------------------------------
# Step base


@dataclass(eq=False)
class Step:
    """Base class for steps.  Identity-based equality: each step object
    is a unique transition type of one program."""

    pc: str
    target: str | None
    loc: Any = field(default=None, kw_only=True)
    #: Label of the originating statement (for cross-level matching).
    label: str | None = field(default=None, kw_only=True)

    def nondet_vars(self) -> list[NondetVar]:
        """The encapsulated nondeterminism parameters of this step."""
        return []

    def reads_exprs(self) -> list[ast.Expr]:
        """Expressions this step evaluates (used by strategies)."""
        return []

    def enabled(
        self, machine: "StateMachine", state: ProgramState, tid: int,
        params: dict[Any, Any],
    ) -> bool:
        """Whether this step may fire (blocking semantics).

        Undefined behaviour is *not* blocking: a step whose execution
        would be UB is enabled and produces a UB-terminated state.
        """
        return True

    def apply(
        self, machine: "StateMachine", state: ProgramState, tid: int,
        params: dict[Any, Any],
    ) -> ProgramState:
        raise NotImplementedError

    def _ec(
        self, machine: "StateMachine", state: ProgramState, tid: int,
        params: dict[Any, Any], old_state: ProgramState | None = None,
    ) -> EvalContext:
        method = state.thread(tid).top.method
        return EvalContext(machine.ctx, state, tid, method, params, old_state,
                           memmodel=getattr(machine, "memmodel", None))

    def _advance(self, state: ProgramState, tid: int,
                 machine: "StateMachine") -> ProgramState:
        thread = state.thread(tid).with_pc(self.target)
        state = state.with_thread(thread)
        return machine.update_atomic_owner(state, tid)

    def describe(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.pc}->{self.target}>"


# ---------------------------------------------------------------------------
# Concrete steps


@dataclass(eq=False)
class AssignStep(Step):
    """Simultaneous assignment ``lhs, ... := rhs, ...`` (§3.1.1).

    ``tso_bypass`` distinguishes ``::=`` (sequentially consistent) from
    the default x86-TSO buffered write.
    """

    lhss: list[ast.Expr] = field(default_factory=list)
    rhss: list[ast.Expr] = field(default_factory=list)
    tso_bypass: bool = False
    ghost_only: bool = False

    def nondet_vars(self) -> list[NondetVar]:
        nodes = _collect_nondet(self.lhss + self.rhss)
        return [
            NondetVar(id(n), n.type or ty.MATHINT, "expr") for n in nodes
        ]

    def reads_exprs(self) -> list[ast.Expr]:
        return self.lhss + self.rhss

    def apply(self, machine, state, tid, params):
        ec = self._ec(machine, state, tid, params)
        values = [ev.eval_expr(ec, rhs) for rhs in self.rhss]
        values = [_coerce(rhs, v) for rhs, v in zip(self.rhss, values)]
        places = [ev.eval_place(ec, lhs) for lhs in self.lhss]
        for place, value, lhs in zip(places, values, self.lhss):
            value = _fit(lhs.type, value)
            buffered = (not self.tso_bypass) and isinstance(
                place, MemoryPlace
            )
            state = write_place(
                ec.with_state(state), state, place, value, buffered
            )
        return self._advance(state, tid, machine)


def _coerce(rhs: ast.Expr, value: Any) -> Any:
    return value


def _fit(t: ty.Type | None, value: Any) -> Any:
    """Check that *value* fits the target type (C assignment semantics:
    implicit narrowing is not allowed in Armada; a mismatch is UB)."""
    if isinstance(t, ty.IntType) and isinstance(value, int) \
            and not isinstance(value, bool):
        if not t.contains(value):
            raise UBSignal(f"value {value} does not fit {t}")
    return value


@dataclass(eq=False)
class BranchStep(Step):
    """One direction of an ``if``/``while`` guard evaluation.

    A guard produces two step types (true/false).  A nondeterministic
    ``*`` guard makes both unconditionally enabled; the scheduler's
    choice of step is the encapsulated nondeterminism.
    """

    cond: ast.Expr | None = None  # None = nondeterministic guard
    when: bool = True

    def nondet_vars(self) -> list[NondetVar]:
        if self.cond is None:
            return []
        nodes = _collect_nondet([self.cond])
        return [NondetVar(id(n), n.type or ty.BOOL, "expr") for n in nodes]

    def reads_exprs(self) -> list[ast.Expr]:
        return [self.cond] if self.cond is not None else []

    def enabled(self, machine, state, tid, params):
        if self.cond is None:
            return True
        ec = self._ec(machine, state, tid, params)
        try:
            return bool(ev.eval_expr(ec, self.cond)) == self.when
        except UBSignal:
            # The guard evaluation itself is UB: let the step fire and
            # produce the UB state (only via the `when=True` twin so the
            # UB behaviour is not duplicated).
            return self.when

    def apply(self, machine, state, tid, params):
        if self.cond is not None:
            ec = self._ec(machine, state, tid, params)
            ev.eval_expr(ec, self.cond)  # may raise UBSignal
        return self._advance(state, tid, machine)


@dataclass(eq=False)
class AssumeStep(Step):
    """An enablement condition (§3.1.2): blocks until the predicate holds."""

    cond: ast.Expr = None  # type: ignore[assignment]

    def reads_exprs(self) -> list[ast.Expr]:
        return [self.cond]

    def enabled(self, machine, state, tid, params):
        ec = self._ec(machine, state, tid, params)
        try:
            return bool(ev.eval_expr(ec, self.cond))
        except UBSignal:
            return False

    def apply(self, machine, state, tid, params):
        return self._advance(state, tid, machine)


@dataclass(eq=False)
class AssertStep(Step):
    """``assert e;`` — crashes (assert-failure termination) if false."""

    cond: ast.Expr = None  # type: ignore[assignment]

    def reads_exprs(self) -> list[ast.Expr]:
        return [self.cond]

    def apply(self, machine, state, tid, params):
        ec = self._ec(machine, state, tid, params)
        if not ev.eval_expr(ec, self.cond):
            return state.terminate("assert_failure", f"at {self.pc}")
        return self._advance(state, tid, machine)


@dataclass(eq=False)
class SomehowStep(Step):
    """A declarative atomic action (§3.1.2).

    UB if a precondition fails; otherwise havocs the modifies lvalues
    with parameter-chosen values, enabled only when every two-state
    ensures predicate holds between old and new state.
    """

    spec: ast.SomehowSpec = field(default_factory=ast.SomehowSpec)

    def nondet_vars(self) -> list[NondetVar]:
        result = []
        for i, target in enumerate(self.spec.modifies):
            result.append(
                NondetVar(("havoc", self.pc, i), target.type or ty.MATHINT,
                          "havoc")
            )
        return result

    def reads_exprs(self) -> list[ast.Expr]:
        return (list(self.spec.requires) + list(self.spec.modifies)
                + list(self.spec.ensures))

    def _post_state(self, machine, state, tid, params):
        ec = self._ec(machine, state, tid, params)
        for pre in self.spec.requires:
            if not ev.eval_expr(ec, pre):
                raise UBSignal(f"somehow precondition failed at {self.pc}")
        new_state = state
        for i, target in enumerate(self.spec.modifies):
            value = params.get(("havoc", self.pc, i))
            place = ev.eval_place(ec, target)
            new_state = write_place(
                ec.with_state(new_state), new_state, place, value,
                buffered=False,
            )
        return new_state

    def witness_candidates(self, machine, state, tid):
        """Witness heuristics (§4.2.5): mine the postconditions for
        equalities ``target == e`` and offer the pre-state value of *e*
        as a havoc candidate, so enumeration can hit exact effects."""
        return _ensures_witnesses(
            self, machine, state, tid, self.spec.modifies,
            self.spec.ensures, self.pc,
        )

    def enabled(self, machine, state, tid, params):
        try:
            new_state = self._post_state(machine, state, tid, params)
        except UBSignal:
            return True  # fires and manifests UB
        ec2 = self._ec(machine, new_state, tid, params, old_state=state)
        try:
            return all(ev.eval_expr(ec2, e) for e in self.spec.ensures)
        except UBSignal:
            return True

    def apply(self, machine, state, tid, params):
        new_state = self._post_state(machine, state, tid, params)
        ec2 = self._ec(machine, new_state, tid, params, old_state=state)
        for e in self.spec.ensures:
            ev.eval_expr(ec2, e)
        return self._advance(new_state, tid, machine)


def _ensures_witnesses(
    step: Step,
    machine,
    state: ProgramState,
    tid: int,
    modifies: list[ast.Expr],
    ensures: list[ast.Expr],
    pc: str,
    bindings: dict[str, Any] | None = None,
) -> dict[Any, list[Any]]:
    """Extract havoc-value candidates from postcondition equalities.

    For each modified target ``t`` and each conjunct of the form
    ``t == e`` (or ``e == t``), evaluate *e* in the pre-state (where
    ``old(x)`` and plain ``x`` coincide) and offer it as a candidate
    value for the havoc parameter of ``t``.
    """
    method = state.thread(tid).top.method
    ec = EvalContext(machine.ctx, state, tid, method, {}, state, bindings)
    candidates: dict[Any, list[Any]] = {}
    for i, target in enumerate(modifies):
        key = ("havoc", pc, i)
        for post in ensures:
            for node in ast.walk_expr(post):
                if not (isinstance(node, ast.Binary) and node.op == "=="):
                    continue
                other = None
                if _is_target(node.left, target):
                    other = node.right
                elif _is_target(node.right, target):
                    other = node.left
                if other is None:
                    continue
                try:
                    value = ev.eval_expr(ec, other)
                except (UBSignal, KeyError):
                    continue
                candidates.setdefault(key, []).append(value)
    return candidates


def _is_target(expr: ast.Expr, target: ast.Expr) -> bool:
    from repro.lang.astutil import expr_equal

    return expr_equal(expr, target)


@dataclass(eq=False)
class CallStep(Step):
    """A method call: push a frame; uninitialized stack variables take
    arbitrary (parameter-encapsulated ``newframe_x``) values."""

    method: str = ""
    args: list[ast.Expr] = field(default_factory=list)
    result_local: str | None = None

    def nondet_vars(self) -> list[NondetVar]:
        # newframe parameters are provided by the machine (it knows the
        # callee's uninitialized locals); see StateMachine.newframe_vars.
        return []

    def reads_exprs(self) -> list[ast.Expr]:
        return list(self.args)

    def apply(self, machine, state, tid, params):
        ec = self._ec(machine, state, tid, params)
        values = [ev.eval_expr(ec, a) for a in self.args]
        return machine.push_frame(
            state, tid, self.method, values, self.target, self.result_local,
            params,
        )


@dataclass(eq=False)
class ReturnStep(Step):
    """Method return: pop the frame, deliver the return value, free
    address-taken local roots, terminate the thread on its last frame."""

    value: ast.Expr | None = None

    def reads_exprs(self) -> list[ast.Expr]:
        return [self.value] if self.value is not None else []

    def apply(self, machine, state, tid, params):
        value = None
        if self.value is not None:
            ec = self._ec(machine, state, tid, params)
            value = ev.eval_expr(ec, self.value)
        return machine.pop_frame(state, tid, value)


@dataclass(eq=False)
class CreateThreadStep(Step):
    """``create_thread m(args)`` — spawn a thread running *m*."""

    method: str = ""
    args: list[ast.Expr] = field(default_factory=list)
    lhs: ast.Expr | None = None

    def reads_exprs(self) -> list[ast.Expr]:
        exprs = list(self.args)
        if self.lhs is not None:
            exprs.append(self.lhs)
        return exprs

    def apply(self, machine, state, tid, params):
        ec = self._ec(machine, state, tid, params)
        values = [ev.eval_expr(ec, a) for a in self.args]
        state, new_tid = machine.spawn_thread(state, self.method, values,
                                              params, parent_tid=tid)
        if self.lhs is not None:
            ec = self._ec(machine, state, tid, params)
            place = ev.eval_place(ec, self.lhs)
            buffered = isinstance(place, MemoryPlace)
            state = write_place(ec, state, place, new_tid, buffered)
        return self._advance(state, tid, machine)


@dataclass(eq=False)
class JoinStep(Step):
    """``join e`` — blocks until thread *e* has terminated."""

    thread: ast.Expr = None  # type: ignore[assignment]

    def reads_exprs(self) -> list[ast.Expr]:
        return [self.thread]

    def enabled(self, machine, state, tid, params):
        ec = self._ec(machine, state, tid, params)
        try:
            target = ev.eval_expr(ec, self.thread)
        except UBSignal:
            return True
        other = state.threads.get(target)
        return other is not None and other.terminated

    def apply(self, machine, state, tid, params):
        ec = self._ec(machine, state, tid, params)
        target = ev.eval_expr(ec, self.thread)
        mm = ec.memmodel if ec.memmodel is not None else _default_model()
        state = mm.on_join(state, tid, target)
        return self._advance(state, tid, machine)


@dataclass(eq=False)
class MallocStep(Step):
    """``lhs := malloc(T)`` / ``calloc(T, n)``.

    Allocation is modeled as *finding* a pre-existing object in the
    forest and marking it valid (§3.2.4).  Success is a nondeterministic
    parameter: malloc may return null.
    """

    lhs: ast.Expr = None  # type: ignore[assignment]
    alloc_type: ty.Type = None  # type: ignore[assignment]
    count: ast.Expr | None = None  # calloc only

    def nondet_vars(self) -> list[NondetVar]:
        return [NondetVar(("alloc", self.pc), ty.BOOL, "alloc")]

    def reads_exprs(self) -> list[ast.Expr]:
        return [self.lhs] + ([self.count] if self.count else [])

    def apply(self, machine, state, tid, params):
        ec = self._ec(machine, state, tid, params)
        success = params.get(("alloc", self.pc), True)
        if not success:
            pointer: Any = NULL
        else:
            object_type = self.alloc_type
            if self.count is not None:
                n = ev.eval_expr(ec, self.count)
                if not isinstance(n, int) or n <= 0:
                    raise UBSignal(f"calloc with count {n!r}")
                object_type = ty.ArrayType(self.alloc_type, n)
            serial = state.next_serial
            root = Root("alloc", "", serial)
            updates = {
                loc: default_value(leaf_t)
                for loc, leaf_t in leaf_locations(root, object_type)
            }
            state = replace(
                state,
                memory=state.memory.set_many(updates),
                allocation=state.allocation.set(root, "valid"),
                ghosts=state.ghosts.set(("alloc_type", serial), object_type),
                next_serial=serial + 1,
            )
            target_loc = Location(root)
            target_type = object_type
            if self.count is not None:
                target_loc = target_loc.child(0)
                target_type = self.alloc_type
            pointer = Pointer(target_loc, target_type)
        ec = self._ec(machine, state, tid, params)
        place = ev.eval_place(ec, self.lhs)
        buffered = isinstance(place, MemoryPlace)
        state = write_place(ec, state, place, pointer, buffered)
        return self._advance(state, tid, machine)


@dataclass(eq=False)
class DeallocStep(Step):
    """``dealloc e`` — marks the whole allocation freed; subsequent
    access through any pointer into it is UB."""

    ptr: ast.Expr = None  # type: ignore[assignment]

    def reads_exprs(self) -> list[ast.Expr]:
        return [self.ptr]

    def apply(self, machine, state, tid, params):
        ec = self._ec(machine, state, tid, params)
        pointer = ev.eval_expr(ec, self.ptr)
        if not isinstance(pointer, Pointer):
            raise UBSignal("dealloc of non-pointer")
        root = pointer.location.root
        if state.allocation.get(root) != "valid":
            raise UBSignal(f"dealloc of non-allocated object {root}")
        state = replace(state, allocation=state.allocation.set(root, "freed"))
        return self._advance(state, tid, machine)


@dataclass(eq=False)
class ExternStep(Step):
    """A call to a prelude external method with built-in concurrency-
    aware semantics (§3.1.4): mutexes, hardware atomics, fences, output.

    Atomic read-modify-write steps require an empty store buffer (x86's
    LOCK prefix drains it) and write global memory directly.
    """

    name: str = ""
    args: list[ast.Expr] = field(default_factory=list)
    lhs: ast.Expr | None = None

    def reads_exprs(self) -> list[ast.Expr]:
        exprs = list(self.args)
        if self.lhs is not None:
            exprs.append(self.lhs)
        return exprs

    def _mutex_location(self, machine, state, tid, params) -> Location:
        ec = self._ec(machine, state, tid, params)
        pointer = ev.eval_expr(ec, self.args[0])
        if not isinstance(pointer, Pointer):
            raise UBSignal(f"{self.name} of non-pointer")
        return pointer.location

    def enabled(self, machine, state, tid, params):
        thread = state.thread(tid)
        if self.name in ("lock", "unlock", "compare_and_swap",
                         "atomic_exchange", "atomic_fetch_add", "fence"):
            if not thread.sb_empty:
                return False
        if self.name == "lock":
            try:
                loc = self._mutex_location(machine, state, tid, params)
            except UBSignal:
                return True
            return state.memory.get(loc, 0) == 0
        return True

    def apply(self, machine, state, tid, params):
        ec = self._ec(machine, state, tid, params)
        mm = ec.memmodel if ec.memmodel is not None else _default_model()
        name = self.name
        result: Any = None
        if name == "initialize_mutex":
            loc = self._mutex_location(machine, state, tid, params)
            state = mm.atomic_update(state, tid, loc, 0)
        elif name == "lock":
            loc = self._mutex_location(machine, state, tid, params)
            state = mm.atomic_update(state, tid, loc, tid)
        elif name == "unlock":
            loc = self._mutex_location(machine, state, tid, params)
            if state.memory.get(loc) != tid:
                raise UBSignal("unlock of a mutex not held by this thread")
            state = mm.atomic_update(state, tid, loc, 0)
        elif name == "compare_and_swap":
            loc = self._mutex_location(machine, state, tid, params)
            expected = ev.eval_expr(ec, self.args[1])
            desired = ev.eval_expr(ec, self.args[2])
            current = state.memory.get(loc)
            if current is None:
                raise UBSignal("CAS on unmapped location")
            if current == expected:
                state = mm.atomic_update(state, tid, loc, desired)
                result = True
            else:
                state = mm.atomic_acquire(state, tid, loc)
                result = False
        elif name == "atomic_exchange":
            loc = self._mutex_location(machine, state, tid, params)
            value = ev.eval_expr(ec, self.args[1])
            current = state.memory.get(loc)
            if current is None:
                raise UBSignal("exchange on unmapped location")
            state = mm.atomic_update(state, tid, loc, value)
            result = current
        elif name == "atomic_fetch_add":
            loc = self._mutex_location(machine, state, tid, params)
            delta = ev.eval_expr(ec, self.args[1])
            current = state.memory.get(loc)
            if current is None:
                raise UBSignal("fetch_add on unmapped location")
            state = mm.atomic_update(
                state, tid, loc, ty.UINT64.wrap(current + delta)
            )
            result = current
        elif name == "fence":
            state = mm.fence(state, tid)
        elif name in ("print_uint64", "print_uint32"):
            value = ev.eval_expr(ec, self.args[0])
            state = state.append_log(value)
        else:
            raise UBSignal(f"unknown extern {name}")
        if self.lhs is not None:
            ec = self._ec(machine, state, tid, params)
            place = ev.eval_place(ec, self.lhs)
            buffered = isinstance(place, MemoryPlace)
            state = write_place(ec, state, place, result, buffered)
        return self._advance(state, tid, machine)


@dataclass(eq=False)
class ExternSpecStep(Step):
    """A call to a *declared* extern method without a body: the default
    model of Figure 8, collapsed to a single atomic havoc of the write
    set subject to the postconditions.

    The paper's full default model re-havocs in a loop and manifests UB
    if the read set changes concurrently; our collapsed form preserves
    the reachable post-states (each terminating loop execution's net
    effect is one havoc satisfying the postcondition) — see DESIGN.md.
    """

    method_name: str = ""
    args: list[ast.Expr] = field(default_factory=list)
    result_local: str | None = None
    params_decl: list = field(default_factory=list)
    spec: ast.MethodSpec = field(default_factory=ast.MethodSpec)

    def nondet_vars(self) -> list[NondetVar]:
        result = []
        for i, target in enumerate(self.spec.modifies):
            result.append(
                NondetVar(("havoc", self.pc, i), target.type or ty.MATHINT,
                          "havoc")
            )
        return result

    def reads_exprs(self) -> list[ast.Expr]:
        return list(self.args) + list(self.spec.modifies)

    def _bindings(self, machine, state, tid, params) -> dict[str, Any]:
        ec = self._ec(machine, state, tid, params)
        return {
            p.name: ev.eval_expr(ec, arg)
            for p, arg in zip(self.params_decl, self.args)
        }

    def _post_state(self, machine, state, tid, params):
        bindings = self._bindings(machine, state, tid, params)
        method = state.thread(tid).top.method
        ec = EvalContext(machine.ctx, state, tid, method, params, None,
                         bindings,
                         memmodel=getattr(machine, "memmodel", None))
        for pre in self.spec.requires:
            if not ev.eval_expr(ec, pre):
                raise UBSignal(
                    f"extern {self.method_name} precondition failed"
                )
        new_state = state
        for i, target in enumerate(self.spec.modifies):
            value = params.get(("havoc", self.pc, i))
            place = ev.eval_place(ec, target)
            new_state = write_place(
                ec.with_state(new_state), new_state, place, value,
                buffered=False,
            )
        return new_state, bindings

    def witness_candidates(self, machine, state, tid):
        try:
            bindings = self._bindings(machine, state, tid, {})
        except (UBSignal, KeyError):
            bindings = {}
        return _ensures_witnesses(
            self, machine, state, tid, self.spec.modifies,
            self.spec.ensures, self.pc, bindings,
        )

    def enabled(self, machine, state, tid, params):
        try:
            new_state, bindings = self._post_state(machine, state, tid,
                                                   params)
        except UBSignal:
            return True
        method = state.thread(tid).top.method
        ec2 = EvalContext(machine.ctx, new_state, tid, method, params, state,
                          bindings)
        try:
            return all(ev.eval_expr(ec2, e) for e in self.spec.ensures)
        except UBSignal:
            return True

    def apply(self, machine, state, tid, params):
        new_state, bindings = self._post_state(machine, state, tid, params)
        method = state.thread(tid).top.method
        ec2 = EvalContext(machine.ctx, new_state, tid, method, params, state,
                          bindings)
        for e in self.spec.ensures:
            ev.eval_expr(ec2, e)
        return self._advance(new_state, tid, machine)
