"""Small-step state-machine semantics for Armada programs (§3.2)."""

from repro.machine.program import (  # noqa: F401
    DomainConfig,
    PcInfo,
    StateMachine,
    Transition,
)
from repro.machine.state import (  # noqa: F401
    Frame,
    ProgramState,
    TERM_ASSERT,
    TERM_NORMAL,
    TERM_UB,
    Termination,
    ThreadState,
    UBSignal,
)
from repro.machine.translator import translate_level  # noqa: F401
