"""Program states for the small-step semantics (§3.2).

A state contains the set of threads, the (shared, forest-structured)
heap/global memory, ghost state, the externally-visible console log,
and whether and how the program terminated.  Thread state includes the
program counter, the stack, and the x86-TSO store buffer (§3.2.1).

States are immutable and hashable so the explorer can deduplicate them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.machine.pmap import EMPTY_PMAP, PMap
from repro.machine.values import Location, Root, install_fast_pickle


# ---------------------------------------------------------------------------
# Termination (§3.2.3): normal exit, assert failure, or undefined behaviour.

TERM_NORMAL = "normal"
TERM_ASSERT = "assert_failure"
TERM_UB = "undefined_behavior"


@dataclass(frozen=True, slots=True)
class Termination:
    kind: str
    detail: str = ""

    def __str__(self) -> str:
        return f"{self.kind}({self.detail})" if self.detail else self.kind


class UBSignal(Exception):
    """Internal signal: evaluating an expression invoked undefined
    behaviour (freed-pointer access, division by zero, signed overflow,
    out-of-bounds index, ...).  Converted into a UB-terminated state."""

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(reason)


# ---------------------------------------------------------------------------
# Threads


@dataclass(frozen=True, slots=True)
class Frame:
    """One stack frame: the method, a serial (for address-taken local
    roots), the local variable store, and where to resume on return."""

    method: str
    serial: int
    locals: PMap
    return_pc: str | None = None
    return_lhs_key: Any = None  # local name to receive the return value
    _hash: int | None = field(
        default=None, init=False, repr=False, compare=False
    )


@dataclass(frozen=True, slots=True)
class ThreadState:
    """A thread: program counter, stack (top frame first), and its FIFO
    store buffer of pending (location, value) writes.

    ``view`` is the per-thread state of the release/acquire memory
    model (Location -> observed timestamp); it is ``None`` under
    SC/TSO, keeping those models' state equality untouched.
    """

    tid: int
    pc: str | None  # None once the thread has terminated (returned)
    frames: tuple[Frame, ...] = ()
    store_buffer: tuple[tuple[Location, Any], ...] = ()
    view: PMap | None = None
    _hash: int | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def terminated(self) -> bool:
        return self.pc is None

    @property
    def top(self) -> Frame:
        return self.frames[0]

    def with_pc(self, pc: str | None) -> "ThreadState":
        return replace(self, pc=pc)

    def with_top_frame(self, frame: Frame) -> "ThreadState":
        return replace(self, frames=(frame,) + self.frames[1:])

    def set_local(self, name: str, value: Any) -> "ThreadState":
        top = self.frames[0]
        return self.with_top_frame(
            replace(top, locals=top.locals.set(name, value))
        )

    def push_buffer(self, location: Location, value: Any) -> "ThreadState":
        return replace(
            self, store_buffer=self.store_buffer + ((location, value),)
        )

    def pop_buffer(self) -> tuple["ThreadState", Location, Any]:
        (location, value), rest = self.store_buffer[0], self.store_buffer[1:]
        return replace(self, store_buffer=rest), location, value

    @property
    def sb_empty(self) -> bool:
        return not self.store_buffer


# ---------------------------------------------------------------------------
# Whole-program state


# Not ``frozen=True`` like the node classes above: successor states are
# the explorer's hottest allocation, and the frozen-dataclass ``__init__``
# (one ``object.__setattr__`` call per field) costs ~5x a plain slotted
# store.  States are still immutable by convention — nothing in the
# codebase mutates one after construction, and the memoized ``_hash``
# relies on that.
@dataclass(slots=True)
class ProgramState:
    """The complete state of an Armada program (one level)."""

    threads: PMap  # tid -> ThreadState
    memory: PMap  # Location -> value (global shared memory)
    allocation: PMap  # Root -> "valid" | "freed"
    ghosts: PMap  # name -> ghost value (sequentially consistent, §3.1.2)
    log: tuple = ()  # externally visible output (print_* externs)
    termination: Termination | None = None
    next_tid: int = 1
    next_serial: int = 1
    #: The thread currently inside an uninterruptible (atomic /
    #: explicit_yield) region, if any.  Other threads may not step.
    atomic_owner: int | None = None
    #: Release/acquire write histories (Location -> tuple of
    #: (value, message-view) records); ``None`` under SC/TSO.
    histories: PMap | None = None
    _hash: int | None = field(
        default=None, init=False, repr=False, compare=False
    )

    # -- convenience ----------------------------------------------------

    @property
    def running(self) -> bool:
        return self.termination is None

    def thread(self, tid: int) -> ThreadState:
        return self.threads[tid]

    def with_thread(self, thread: ThreadState) -> "ProgramState":
        return replace(self, threads=self.threads.set(thread.tid, thread))

    def with_memory(self, location: Location, value: Any) -> "ProgramState":
        return replace(self, memory=self.memory.set(location, value))

    def with_ghost(self, name: str, value: Any) -> "ProgramState":
        return replace(self, ghosts=self.ghosts.set(name, value))

    def terminate(self, kind: str, detail: str = "") -> "ProgramState":
        return replace(self, termination=Termination(kind, detail))

    def append_log(self, entry: Any) -> "ProgramState":
        return replace(self, log=self.log + (entry,))

    # -- memory-model reads ----------------------------------------------

    def local_view(self, tid: int, location: Location) -> Any:
        """A thread's local view of a memory cell.

        Under SC/TSO (``thread.view is None``): the youngest pending
        store-buffer entry for that location, else global memory.
        Under RA: the history record at the thread's current view
        timestamp (locations never release-written fall back to plain
        memory).
        """
        thread = self.threads[tid]
        if thread.view is not None:
            hist = (
                self.histories.get(location)
                if self.histories is not None else None
            )
            if hist is not None:
                return hist[thread.view.get(location, 0)][0]
            if location not in self.memory:
                raise UBSignal(f"access to unmapped location {location}")
            return self.memory[location]
        for loc, value in reversed(thread.store_buffer):
            if loc == location:
                return value
        if location not in self.memory:
            raise UBSignal(f"access to unmapped location {location}")
        return self.memory[location]

    def drain_one(self, tid: int) -> "ProgramState":
        """Asynchronously drain the oldest store-buffer entry of *tid*
        into global memory (the hardware's FIFO write-back)."""
        thread, location, value = self.threads[tid].pop_buffer()
        return replace(
            self,
            threads=self.threads.set(tid, thread),
            memory=self.memory.set(location, value),
        )

    def root_status(self, root: Root) -> str | None:
        return self.allocation.get(root)

    # -- factory ----------------------------------------------------------

    @staticmethod
    def initial(
        main_thread: ThreadState,
        memory: dict,
        allocation: dict,
        ghosts: dict,
    ) -> "ProgramState":
        return ProgramState(
            threads=PMap({main_thread.tid: main_thread}),
            memory=PMap(memory),
            allocation=PMap(allocation),
            ghosts=PMap(ghosts),
        )


# ---------------------------------------------------------------------------
# Cached hashing.  The explorer hashes every state it admits to the seen
# set; hashing whole states is the explorer's hottest operation.  Each
# node caches its hash in a ``_hash`` slot (init=False, so
# ``dataclasses.replace`` resets it on derived objects), and the PMap
# components hash incrementally, so a successor state re-hashes only the
# thread/cell that actually changed.  The ``__hash__`` assignments must
# come *after* the class definitions: ``@dataclass(frozen=True)``
# installs its own generated ``__hash__`` on the class.


def _frame_hash(self: Frame) -> int:
    h = self._hash
    if h is None:
        h = hash((
            self.method, self.serial, self.locals,
            self.return_pc, self.return_lhs_key,
        ))
        object.__setattr__(self, "_hash", h)
    return h


def _thread_hash(self: ThreadState) -> int:
    h = self._hash
    if h is None:
        h = hash((
            self.tid, self.pc, self.frames, self.store_buffer, self.view,
        ))
        object.__setattr__(self, "_hash", h)
    return h


def _program_hash(self: ProgramState) -> int:
    h = self._hash
    if h is None:
        h = hash((
            self.threads, self.memory, self.allocation, self.ghosts,
            self.log, self.termination, self.next_tid,
            self.next_serial, self.atomic_owner, self.histories,
        ))
        object.__setattr__(self, "_hash", h)
    return h


Frame.__hash__ = _frame_hash  # type: ignore[method-assign]
ThreadState.__hash__ = _thread_hash  # type: ignore[method-assign]
ProgramState.__hash__ = _program_hash  # type: ignore[method-assign]


# Fast pickle paths for the sharded explorer's state handoff (see
# repro.machine.values.install_fast_pickle).  The memoized ``_hash`` is
# shipped along: it is content-derived and the shard workers are forked
# from one interpreter, so every process agrees on string hashes.
install_fast_pickle(Termination, "kind", "detail")
install_fast_pickle(
    Frame,
    "method", "serial", "locals", "return_pc", "return_lhs_key", "_hash",
)
install_fast_pickle(
    ThreadState,
    "tid", "pc", "frames", "store_buffer", "view", "_hash",
)
install_fast_pickle(
    ProgramState,
    "threads", "memory", "allocation", "ghosts", "log", "termination",
    "next_tid", "next_serial", "atomic_owner", "histories", "_hash",
)


EMPTY_STATE = ProgramState(
    threads=EMPTY_PMAP,
    memory=EMPTY_PMAP,
    allocation=EMPTY_PMAP,
    ghosts=EMPTY_PMAP,
)
