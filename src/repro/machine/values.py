"""Runtime values and memory locations for the Armada state machine.

Values are plain immutable Python data:

* fixed-width and mathematical integers → ``int``
* booleans → ``bool``
* pointers → :class:`Pointer` (a path into the forest heap, §3.2.4)
* ghost sequences → ``tuple``
* ghost sets → ``frozenset``
* ghost maps → :class:`GhostMap`
* ghost options → :class:`OptionValue`
* structs / arrays → :class:`CompositeValue` (tuple of children)

A *location* names one primitive cell of shared memory: a root plus a
path of child indices (struct field indices or array element indices).
Roots are global variables, allocations, or address-taken locals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.lang import types as ty


# ---------------------------------------------------------------------------
# Roots and locations


@dataclass(frozen=True, slots=True)
class Root:
    """The root of one tree in the forest heap.

    ``kind`` is ``"global"`` (a global variable whose address is taken or
    which is shared), ``"alloc"`` (malloc/calloc result), or ``"local"``
    (an address-taken stack variable of one method invocation).
    """

    kind: str
    name: str = ""
    serial: int = 0

    def __str__(self) -> str:
        if self.kind == "global":
            return f"&{self.name}"
        if self.kind == "alloc":
            return f"alloc#{self.serial}"
        return f"&{self.name}@frame{self.serial}"


@dataclass(frozen=True, slots=True)
class Location:
    """One primitive memory cell: a root and a path of child indices."""

    root: Root
    path: tuple[int, ...] = ()

    def child(self, index: int) -> "Location":
        return Location(self.root, self.path + (index,))

    def __str__(self) -> str:
        suffix = "".join(f".{i}" for i in self.path)
        return f"{self.root}{suffix}"


# ---------------------------------------------------------------------------
# Pointers


@dataclass(frozen=True, slots=True)
class Pointer:
    """A pointer value: a location plus the pointee type.

    Armada pointers may point to whole objects, struct fields, or array
    elements (§3.1.1); all are just locations in the forest.
    """

    location: Location
    target_type: ty.Type

    def __str__(self) -> str:
        return f"ptr({self.location})"


@dataclass(frozen=True, slots=True)
class NullPointer:
    """The null pointer."""

    def __str__(self) -> str:
        return "null"


NULL = NullPointer()


# ---------------------------------------------------------------------------
# Ghost values


@dataclass(frozen=True, slots=True)
class OptionValue:
    """``Some(v)`` or ``None`` for ghost ``option<T>`` values."""

    value: Any = None
    is_some: bool = False

    def __str__(self) -> str:
        return f"Some({self.value})" if self.is_some else "None"


NONE_OPTION = OptionValue()


def some(value: Any) -> OptionValue:
    return OptionValue(value, True)


class GhostMap:
    """An immutable finite map (ghost ``map<K, V>``)."""

    __slots__ = ("_items", "_hash")

    def __init__(self, items: dict | None = None) -> None:
        self._items = dict(items) if items else {}
        self._hash: int | None = None

    def get(self, key: Any, default: Any = None) -> Any:
        return self._items.get(key, default)

    def __getitem__(self, key: Any) -> Any:
        return self._items[key]

    def __contains__(self, key: Any) -> bool:
        return key in self._items

    def set(self, key: Any, value: Any) -> "GhostMap":
        items = dict(self._items)
        items[key] = value
        return GhostMap(items)

    def remove(self, key: Any) -> "GhostMap":
        items = dict(self._items)
        items.pop(key, None)
        return GhostMap(items)

    def keys(self):
        return self._items.keys()

    def items(self):
        return self._items.items()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GhostMap) and self._items == other._items

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._items.items()))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}: {v}" for k, v in self._items.items())
        return f"map[{inner}]"


# ---------------------------------------------------------------------------
# Composite (struct / array) values for non-shared locals


@dataclass(frozen=True, slots=True)
class CompositeValue:
    """A struct or array value held by-value in a stack frame.

    Shared (addressed) composites live as individual leaf cells in memory;
    this class is only used for locals whose address is never taken.
    """

    children: tuple[Any, ...]

    def with_child(self, index: int, value: Any) -> "CompositeValue":
        children = list(self.children)
        children[index] = value
        return CompositeValue(tuple(children))

    def __str__(self) -> str:
        return "{" + ", ".join(str(c) for c in self.children) + "}"


# ---------------------------------------------------------------------------
# Fast pickling.  The sharded explorer (repro.explore.sharded) ships
# program states between worker processes by the hundred thousand; the
# generic slots-dataclass __getstate__/__setstate__ resolves
# ``dataclasses.fields()`` per object and dominated shard IPC time, so
# the value/state node classes pickle their slot tuples directly.


def install_fast_pickle(cls: type, *names: str) -> None:
    """Replace *cls*'s pickle protocol with a plain slot-value tuple."""

    def __getstate__(self):
        return tuple(getattr(self, name) for name in names)

    def __setstate__(self, state):
        set_ = object.__setattr__
        for name, value in zip(names, state):
            set_(self, name, value)

    cls.__getstate__ = __getstate__  # type: ignore[attr-defined]
    cls.__setstate__ = __setstate__  # type: ignore[attr-defined]


install_fast_pickle(Root, "kind", "name", "serial")
install_fast_pickle(Location, "root", "path")
install_fast_pickle(Pointer, "location", "target_type")
install_fast_pickle(OptionValue, "value", "is_some")
install_fast_pickle(CompositeValue, "children")
install_fast_pickle(GhostMap, "_items", "_hash")


# ---------------------------------------------------------------------------
# Default values and type structure helpers


def default_value(t: ty.Type) -> Any:
    """The zero/default value of type *t* (used by calloc and globals)."""
    if isinstance(t, ty.IntType) or isinstance(t, ty.MathIntType):
        return 0
    if isinstance(t, ty.BoolType):
        return False
    if isinstance(t, ty.PtrType):
        return NULL
    if isinstance(t, ty.ArrayType):
        return CompositeValue(tuple(default_value(t.element)
                                    for _ in range(t.size)))
    if isinstance(t, ty.StructType):
        return CompositeValue(tuple(default_value(f.type)
                                    for f in t.fields))
    if isinstance(t, ty.SeqType):
        return ()
    if isinstance(t, ty.SetType):
        return frozenset()
    if isinstance(t, ty.MapType):
        return GhostMap()
    if isinstance(t, ty.OptionType):
        return NONE_OPTION
    if isinstance(t, ty.VoidType):
        return None
    raise ValueError(f"no default value for type {t}")


def leaf_locations(root: Root, t: ty.Type) -> list[tuple[Location, ty.Type]]:
    """All primitive (leaf) cells of an object of type *t* rooted at *root*,
    with their types, in declaration order."""
    result: list[tuple[Location, ty.Type]] = []

    def walk(loc: Location, node_type: ty.Type) -> None:
        if isinstance(node_type, ty.ArrayType):
            for i in range(node_type.size):
                walk(loc.child(i), node_type.element)
        elif isinstance(node_type, ty.StructType):
            for i, f in enumerate(node_type.fields):
                walk(loc.child(i), f.type)
        else:
            result.append((loc, node_type))

    walk(Location(root), t)
    return result


def child_type(t: ty.Type, index: int) -> ty.Type:
    """The type of child *index* of an object of composite type *t*."""
    if isinstance(t, ty.ArrayType):
        if not 0 <= index < t.size:
            raise IndexError(index)
        return t.element
    if isinstance(t, ty.StructType):
        return t.fields[index].type
    raise ValueError(f"{t} has no children")


def type_at_path(t: ty.Type, path: tuple[int, ...]) -> ty.Type:
    """The type found by following *path* from an object of type *t*."""
    for index in path:
        t = child_type(t, index)
    return t
