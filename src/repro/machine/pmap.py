"""A small persistent (immutable, hashable) map used throughout the
state machine.

The explicit-state explorer hashes whole program states, so every state
component must be hashable and comparisons must be structural.  States
are small (a handful of threads and a few dozen memory cells), so a
copy-on-write dict with a cached hash is the right tradeoff — no need
for a HAMT.
"""

from __future__ import annotations

from typing import Any, Iterator


class PMap:
    """Immutable hashable mapping with copy-on-write updates."""

    __slots__ = ("_items", "_hash")

    def __init__(self, items: dict | None = None) -> None:
        self._items: dict = dict(items) if items else {}
        self._hash: int | None = None

    @classmethod
    def _wrap(cls, items: dict) -> "PMap":
        pm = cls.__new__(cls)
        pm._items = items
        pm._hash = None
        return pm

    def get(self, key: Any, default: Any = None) -> Any:
        return self._items.get(key, default)

    def __getitem__(self, key: Any) -> Any:
        return self._items[key]

    def __contains__(self, key: Any) -> bool:
        return key in self._items

    def set(self, key: Any, value: Any) -> "PMap":
        if key in self._items and self._items[key] == value:
            return self
        items = dict(self._items)
        items[key] = value
        return PMap._wrap(items)

    def set_many(self, updates: dict) -> "PMap":
        if not updates:
            return self
        items = dict(self._items)
        items.update(updates)
        return PMap._wrap(items)

    def remove(self, key: Any) -> "PMap":
        if key not in self._items:
            return self
        items = dict(self._items)
        del items[key]
        return PMap._wrap(items)

    def keys(self):
        return self._items.keys()

    def values(self):
        return self._items.values()

    def items(self):
        return self._items.items()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PMap):
            return self._items == other._items
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._items.items()))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{k!r}: {v!r}" for k, v in self._items.items())
        return f"pmap({{{inner}}})"


EMPTY_PMAP = PMap()
