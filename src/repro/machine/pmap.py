"""A small persistent (immutable, hashable) map used throughout the
state machine.

The explicit-state explorer hashes whole program states, so every state
component must be hashable and comparisons must be structural.  States
are small (a handful of threads and a few dozen memory cells), so a
copy-on-write dict is the right tradeoff — no need for a HAMT.

Hashing is **incremental**: the hash accumulator is a commutative XOR
of per-entry hashes, so a single-key update derives the child's
accumulator from the parent's in O(1) instead of re-hashing every
entry.  This is what makes the explorer's ``seen``-set membership cheap
— a successor state differs from its parent in one or two components
(one thread moved, one memory cell changed), and only the changed
entries are re-hashed.
"""

from __future__ import annotations

from typing import Any, Iterator

_MISSING = object()


def _entry_hash(key: Any, value: Any) -> int:
    return hash((key, value))


class PMap:
    """Immutable hashable mapping with copy-on-write updates."""

    __slots__ = ("_items", "_acc")

    def __init__(self, items: dict | None = None) -> None:
        self._items: dict = dict(items) if items else {}
        #: Commutative XOR of entry hashes; None until first demanded.
        #: Derived incrementally by set/set_many/remove once computed.
        self._acc: int | None = None

    @classmethod
    def _wrap(cls, items: dict, acc: int | None = None) -> "PMap":
        pm = cls.__new__(cls)
        pm._items = items
        pm._acc = acc
        return pm

    def get(self, key: Any, default: Any = None) -> Any:
        return self._items.get(key, default)

    def __getitem__(self, key: Any) -> Any:
        return self._items[key]

    def __contains__(self, key: Any) -> bool:
        return key in self._items

    def set(self, key: Any, value: Any) -> "PMap":
        old = self._items.get(key, _MISSING)
        if old is not _MISSING and old == value:
            return self
        items = dict(self._items)
        items[key] = value
        acc = self._acc
        if acc is not None:
            if old is not _MISSING:
                acc ^= _entry_hash(key, old)
            acc ^= _entry_hash(key, value)
        return PMap._wrap(items, acc)

    def set_many(self, updates: dict) -> "PMap":
        if not updates:
            return self
        items = dict(self._items)
        acc = self._acc
        if acc is not None:
            for key, value in updates.items():
                old = items.get(key, _MISSING)
                if old is not _MISSING:
                    acc ^= _entry_hash(key, old)
                acc ^= _entry_hash(key, value)
        items.update(updates)
        return PMap._wrap(items, acc)

    def remove(self, key: Any) -> "PMap":
        if key not in self._items:
            return self
        items = dict(self._items)
        old = items.pop(key)
        acc = self._acc
        if acc is not None:
            acc ^= _entry_hash(key, old)
        return PMap._wrap(items, acc)

    def keys(self):
        return self._items.keys()

    def values(self):
        return self._items.values()

    def items(self):
        return self._items.items()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PMap):
            if self._items is other._items:
                return True
            return self._items == other._items
        return NotImplemented

    def __getstate__(self):
        # Plain tuple pickling (the sharded explorer ships states by
        # the hundred thousand).  The accumulator is content-derived
        # and shard workers share one fork family, so it stays valid.
        return (self._items, self._acc)

    def __setstate__(self, state) -> None:
        self._items, self._acc = state

    def __hash__(self) -> int:
        acc = self._acc
        if acc is None:
            acc = 0
            for entry in self._items.items():
                acc ^= hash(entry)
            self._acc = acc
        # Mix in the length so maps whose entry hashes XOR-cancel to the
        # same accumulator but differ in size still separate.
        return hash((len(self._items), acc))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k!r}: {v!r}" for k, v in self._items.items())
        return f"pmap({{{inner}}})"


EMPTY_PMAP = PMap()
