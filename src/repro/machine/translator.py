"""Translation of Armada levels into program-specific state machines.

Each method body becomes a control-flow graph of :class:`Step` objects
over an enumerated set of PC values named ``method#index`` (§3.2.2).
Structured control flow is lowered with a PC-aliasing pass (a union-find
over PC names) so that empty statements, block ends, and ``break``/
``continue`` produce no spurious no-op steps.

Atomicity regions (``atomic`` and ``explicit_yield`` blocks, §3.1.2)
are encoded in the PCs themselves: a PC inside such a region is marked
non-yieldable, except PCs marked by a ``yield`` statement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TranslationError
from repro.lang import asts as ast
from repro.lang import types as ty
from repro.lang.prelude import PRELUDE_NAMES
from repro.lang.resolver import LevelContext, LocalInfo
from repro.machine.program import PcInfo, StateMachine
from repro.machine.steps import (
    AssertStep,
    AssignStep,
    AssumeStep,
    BranchStep,
    CallStep,
    CreateThreadStep,
    DeallocStep,
    ExternSpecStep,
    ExternStep,
    JoinStep,
    MallocStep,
    ReturnStep,
    SomehowStep,
    Step,
)


@dataclass
class _LoopTargets:
    break_pc: str
    continue_pc: str


class MethodTranslator:
    """Translates one method body into steps of the machine."""

    def __init__(self, machine: StateMachine, method: ast.MethodDecl) -> None:
        self.machine = machine
        self.method = method
        self.ctx: LevelContext = machine.ctx
        self.counter = 0
        self.alias: dict[str, str] = {}
        self.steps: list[Step] = []
        self.pc_infos: dict[str, PcInfo] = {}
        self.loop_stack: list[_LoopTargets] = []
        self.yieldable_default = True
        self.pending_label: str | None = None
        self.temp_counter = 0
        self.explicit_yields: set[str] = set()

    # ------------------------------------------------------------------

    def new_pc(self, kind: str = "", loc=None) -> str:
        pc = f"{self.method.name}#{self.counter}"
        self.counter += 1
        self.pc_infos[pc] = PcInfo(
            pc=pc,
            method=self.method.name,
            index=self.counter - 1,
            yieldable=self.yieldable_default,
            loc=loc,
            kind=kind,
        )
        return pc

    def resolve(self, pc: str | None) -> str | None:
        while pc in self.alias:
            pc = self.alias[pc]
        return pc

    def emit(self, step: Step) -> None:
        if self.pending_label is not None:
            step.label = self.pending_label
            self.pc_infos[step.pc].label = self.pending_label
            self.pending_label = None
        self.steps.append(step)

    # ------------------------------------------------------------------

    def translate(self) -> str:
        """Translate the method, returning its entry PC."""
        entry = self.new_pc("entry", self.method.loc)
        body = self.method.body
        assert body is not None
        exit_pc = self.translate_block(body, entry)
        # Implicit return at the end of the body.
        self.pc_infos[exit_pc].kind = "return"
        self.emit(ReturnStep(exit_pc, None, loc=self.method.loc))
        self._finalize()
        return self.resolve(entry)  # type: ignore[return-value]

    def _finalize(self) -> None:
        """Resolve PC aliases and install steps into the machine."""
        # Merge label metadata across alias chains, and propagate
        # explicit yield marks (a `yield;` at the end of a block marks
        # whatever PC the block's exit resolves to).
        for pc, info in self.pc_infos.items():
            target = self.resolve(pc)
            if target != pc and target in self.pc_infos:
                target_info = self.pc_infos[target]
                if info.label and not target_info.label:
                    target_info.label = info.label
        for pc in self.explicit_yields:
            target = self.resolve(pc)
            if target in self.pc_infos:
                self.pc_infos[target].yieldable = True
        live_pcs = set()
        for step in self.steps:
            step.pc = self.resolve(step.pc)
            step.target = self.resolve(step.target)
            live_pcs.add(step.pc)
            if step.target is not None:
                live_pcs.add(step.target)
        for step in self.steps:
            self.machine.steps_by_pc.setdefault(step.pc, []).append(step)
        for pc, info in self.pc_infos.items():
            if pc in live_pcs:
                self.machine.pcs[pc] = info

    # ------------------------------------------------------------------

    def translate_block(self, block: ast.Block, entry: str) -> str:
        current = entry
        for stmt in block.stmts:
            current = self.translate_stmt(stmt, current)
        return current

    def translate_stmt(self, stmt: ast.Stmt, entry: str) -> str:
        """Translate *stmt* with control entering at *entry*; returns the
        PC where control continues afterwards."""
        if isinstance(stmt, ast.Block):
            return self.translate_block(stmt, entry)
        if isinstance(stmt, ast.VarDeclStmt):
            return self._translate_vardecl(stmt, entry)
        if isinstance(stmt, ast.AssignStmt):
            return self._translate_assign(stmt, entry)
        if isinstance(stmt, ast.IfStmt):
            return self._translate_if(stmt, entry)
        if isinstance(stmt, ast.WhileStmt):
            return self._translate_while(stmt, entry)
        if isinstance(stmt, ast.BreakStmt):
            if not self.loop_stack:
                raise TranslationError("break outside loop", stmt.loc)
            self.alias[entry] = self.loop_stack[-1].break_pc
            return self.new_pc("unreachable", stmt.loc)
        if isinstance(stmt, ast.ContinueStmt):
            if not self.loop_stack:
                raise TranslationError("continue outside loop", stmt.loc)
            self.alias[entry] = self.loop_stack[-1].continue_pc
            return self.new_pc("unreachable", stmt.loc)
        if isinstance(stmt, ast.ReturnStmt):
            self.pc_infos[entry].kind = "return"
            self.emit(ReturnStep(entry, None, value=stmt.value, loc=stmt.loc))
            return self.new_pc("unreachable", stmt.loc)
        if isinstance(stmt, ast.AssertStmt):
            nxt = self.new_pc()
            self.pc_infos[entry].kind = "assert"
            self.emit(AssertStep(entry, nxt, cond=stmt.cond, loc=stmt.loc))
            return nxt
        if isinstance(stmt, ast.AssumeStmt):
            nxt = self.new_pc()
            self.pc_infos[entry].kind = "assume"
            self.emit(AssumeStep(entry, nxt, cond=stmt.cond, loc=stmt.loc))
            return nxt
        if isinstance(stmt, ast.SomehowStmt):
            nxt = self.new_pc()
            self.pc_infos[entry].kind = "somehow"
            self.emit(SomehowStep(entry, nxt, spec=stmt.spec, loc=stmt.loc))
            return nxt
        if isinstance(stmt, ast.DeallocStmt):
            nxt = self.new_pc()
            self.pc_infos[entry].kind = "dealloc"
            self.emit(DeallocStep(entry, nxt, ptr=stmt.ptr, loc=stmt.loc))
            return nxt
        if isinstance(stmt, ast.JoinStmt):
            nxt = self.new_pc()
            self.pc_infos[entry].kind = "join"
            self.emit(JoinStep(entry, nxt, thread=stmt.thread, loc=stmt.loc))
            return nxt
        if isinstance(stmt, ast.LabelStmt):
            self.pending_label = stmt.label
            self.pc_infos[entry].label = stmt.label
            return self.translate_stmt(stmt.stmt, entry)
        if isinstance(stmt, ast.YieldStmt):
            self.pc_infos[entry].yieldable = True
            self.explicit_yields.add(entry)
            return entry
        if isinstance(stmt, (ast.ExplicitYieldBlock, ast.AtomicBlock)):
            return self._translate_atomic_region(stmt, entry)
        raise TranslationError(
            f"cannot translate {type(stmt).__name__}", stmt.loc
        )

    # ------------------------------------------------------------------

    def _translate_vardecl(self, stmt: ast.VarDeclStmt, entry: str) -> str:
        if stmt.init is None:
            # Value supplied by the newframe parameters at call time.
            return entry
        lhs = ast.Var(stmt.name, loc=stmt.loc)
        lhs.type = stmt.var_type
        assign = ast.AssignStmt([lhs], [stmt.init], loc=stmt.loc)
        return self._translate_assign(assign, entry)

    def _translate_assign(self, stmt: ast.AssignStmt, entry: str) -> str:
        rhss = stmt.rhss
        # Special RHS forms must be the sole RHS of the statement.
        if len(rhss) == 1 and not isinstance(rhss[0], ast.ExprRhs):
            return self._translate_special_assign(stmt, rhss[0], entry)
        exprs: list[ast.Expr] = []
        for rhs in rhss:
            if not isinstance(rhs, ast.ExprRhs):
                raise TranslationError(
                    "calls and allocation must be the only right-hand side",
                    stmt.loc,
                )
            exprs.append(rhs.expr)
        nxt = self.new_pc()
        self.pc_infos[entry].kind = "assign"
        ghost_only = bool(stmt.lhss) and all(
            self._is_ghost_lhs(e) for e in stmt.lhss
        )
        self.emit(
            AssignStep(
                entry,
                nxt,
                lhss=stmt.lhss,
                rhss=exprs,
                tso_bypass=stmt.tso_bypass,
                ghost_only=ghost_only,
                loc=stmt.loc,
            )
        )
        return nxt

    def _is_ghost_lhs(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.Var):
            g = self.ctx.globals.get(expr.name)
            if g is not None:
                return g.ghost
            info = self.ctx.local(self.method.name, expr.name)
            return info is not None and info.ghost
        return False

    def _translate_special_assign(
        self, stmt: ast.AssignStmt, rhs: ast.Rhs, entry: str
    ) -> str:
        lhs = stmt.lhss[0] if stmt.lhss else None
        if isinstance(rhs, ast.MallocRhs):
            nxt = self.new_pc()
            self.pc_infos[entry].kind = "malloc"
            self.emit(
                MallocStep(entry, nxt, lhs=lhs, alloc_type=rhs.alloc_type,
                           loc=stmt.loc)
            )
            return nxt
        if isinstance(rhs, ast.CallocRhs):
            nxt = self.new_pc()
            self.pc_infos[entry].kind = "malloc"
            self.emit(
                MallocStep(
                    entry, nxt, lhs=lhs, alloc_type=rhs.alloc_type,
                    count=rhs.count, loc=stmt.loc,
                )
            )
            return nxt
        if isinstance(rhs, ast.CreateThreadRhs):
            nxt = self.new_pc()
            self.pc_infos[entry].kind = "create_thread"
            self.emit(
                CreateThreadStep(
                    entry, nxt, method=rhs.method, args=rhs.args, lhs=lhs,
                    loc=stmt.loc,
                )
            )
            return nxt
        assert isinstance(rhs, ast.CallRhs)
        return self._translate_call(stmt, rhs, lhs, entry)

    def _translate_call(
        self,
        stmt: ast.AssignStmt,
        rhs: ast.CallRhs,
        lhs: ast.Expr | None,
        entry: str,
    ) -> str:
        decl = self.ctx.methods.get(rhs.method)
        if decl is None:
            raise TranslationError(f"call to unknown method {rhs.method}",
                                   stmt.loc)
        if decl.is_extern and decl.body is None:
            if rhs.method in PRELUDE_NAMES:
                # Built-in extern with machine semantics.
                nxt = self.new_pc()
                self.pc_infos[entry].kind = "extern"
                self.emit(
                    ExternStep(entry, nxt, name=rhs.method, args=rhs.args,
                               lhs=lhs, loc=stmt.loc)
                )
                return nxt
            # Declared extern without a body: default Figure 8 model.
            if lhs is not None:
                raise TranslationError(
                    "externs without bodies cannot return values; "
                    "supply a model body",
                    stmt.loc,
                )
            nxt = self.new_pc()
            self.pc_infos[entry].kind = "extern_spec"
            self.emit(
                ExternSpecStep(
                    entry, nxt, method_name=rhs.method, args=rhs.args,
                    params_decl=decl.params, spec=decl.spec, loc=stmt.loc,
                )
            )
            return nxt
        # Ordinary method (or extern with a model body): push a frame.
        result_local: str | None = None
        tail_assign: ast.AssignStmt | None = None
        if lhs is not None:
            if (
                isinstance(lhs, ast.Var)
                and (info := self.ctx.local(self.method.name, lhs.name))
                is not None
                and not info.address_taken
            ):
                result_local = lhs.name
            else:
                result_local = self._fresh_temp(decl.return_type)
                temp_var = ast.Var(result_local, loc=stmt.loc)
                temp_var.type = decl.return_type
                tail_assign = ast.AssignStmt(
                    [lhs], [ast.ExprRhs(temp_var)], loc=stmt.loc
                )
        nxt = self.new_pc()
        self.pc_infos[entry].kind = "call"
        self.emit(
            CallStep(
                entry, nxt, method=rhs.method, args=rhs.args,
                result_local=result_local, loc=stmt.loc,
            )
        )
        if tail_assign is not None:
            return self._translate_assign(tail_assign, nxt)
        return nxt

    def _fresh_temp(self, t: ty.Type) -> str:
        name = f"$ret{self.temp_counter}"
        self.temp_counter += 1
        mctx = self.ctx.method_contexts[self.method.name]
        mctx.locals[name] = LocalInfo(name, t)
        return name

    # ------------------------------------------------------------------

    def _translate_if(self, stmt: ast.IfStmt, entry: str) -> str:
        self.pc_infos[entry].kind = "guard"
        exit_pc = self.new_pc()
        then_entry = self.new_pc()
        cond = None if isinstance(stmt.cond, ast.Nondet) else stmt.cond
        if stmt.els is not None:
            else_entry = self.new_pc()
            self.emit(BranchStep(entry, then_entry, cond=cond, when=True,
                                 loc=stmt.loc))
            self.emit(BranchStep(entry, else_entry, cond=cond, when=False,
                                 loc=stmt.loc))
            then_out = self.translate_block(stmt.then, then_entry)
            else_out = self.translate_block(stmt.els, else_entry)
            self.alias[then_out] = exit_pc
            if else_out != then_out:
                self.alias[else_out] = exit_pc
        else:
            self.emit(BranchStep(entry, then_entry, cond=cond, when=True,
                                 loc=stmt.loc))
            self.emit(BranchStep(entry, exit_pc, cond=cond, when=False,
                                 loc=stmt.loc))
            then_out = self.translate_block(stmt.then, then_entry)
            self.alias[then_out] = exit_pc
        return exit_pc

    def _translate_while(self, stmt: ast.WhileStmt, entry: str) -> str:
        self.pc_infos[entry].kind = "loop_guard"
        exit_pc = self.new_pc()
        body_entry = self.new_pc()
        cond = None if isinstance(stmt.cond, ast.Nondet) else stmt.cond
        self.emit(BranchStep(entry, body_entry, cond=cond, when=True,
                             loc=stmt.loc))
        self.emit(BranchStep(entry, exit_pc, cond=cond, when=False,
                             loc=stmt.loc))
        if stmt.invariants:
            self.machine.loop_invariants[self.resolve(entry)] = list(
                stmt.invariants
            )
        self.loop_stack.append(_LoopTargets(exit_pc, entry))
        body_out = self.translate_block(stmt.body, body_entry)
        self.loop_stack.pop()
        self.alias[body_out] = entry
        return exit_pc

    def _translate_atomic_region(
        self, stmt: ast.ExplicitYieldBlock | ast.AtomicBlock, entry: str
    ) -> str:
        """Translate an atomic / explicit_yield region.

        PCs created inside are non-yieldable; a ``yield`` statement
        re-marks its PC yieldable.  The region's exit PC is ordinary.
        """
        saved = self.yieldable_default
        self.yieldable_default = False
        body_out = self.translate_block(stmt.body, entry)
        self.yieldable_default = saved
        exit_pc = self.new_pc()
        self.alias[body_out] = exit_pc
        return exit_pc


def translate_level(
    ctx: LevelContext,
    main_method: str = "main",
    memory_model: str | None = None,
) -> StateMachine:
    """Translate a resolved, type-checked level into a state machine
    running under *memory_model* (``None`` selects the TSO default)."""
    machine = StateMachine(ctx, main_method, memory_model=memory_model)
    for method in ctx.level.methods:
        if method.body is None:
            continue
        translator = MethodTranslator(machine, method)
        machine.method_entry[method.name] = translator.translate()
    if main_method not in machine.method_entry:
        raise TranslationError(
            f"level {ctx.level.name} has no {main_method} method"
        )
    # Precompute newframe havoc targets and memory-resident locals.
    for name, mctx in ctx.method_contexts.items():
        memory_locals = []
        newframe = []
        for lname, info in mctx.locals.items():
            if info.address_taken:
                memory_locals.append(lname)
            elif not info.is_param and isinstance(
                info.type, (ty.IntType, ty.BoolType)
            ):
                newframe.append((lname, info.type))
        machine.memory_locals[name] = memory_locals
        machine.newframe_locals[name] = newframe
    return machine
