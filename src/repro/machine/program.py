"""The program-specific state machine (§3.2.2) and its execution engine.

A :class:`StateMachine` holds the enumerated PC type (one value per
program position), the step types at each PC, and the deterministic
``next_state`` function.  The machine also provides transition
enumeration for the explicit-state explorer, including the implicit
x86-TSO store-buffer drain transitions and the atomic-region scheduling
constraint of ``explicit_yield`` blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable, TYPE_CHECKING

from repro.errors import TranslationError
from repro.lang import asts as ast
from repro.lang import types as ty
from repro.lang.resolver import LevelContext
from repro.machine.pmap import PMap
from repro.machine.state import (
    Frame,
    ProgramState,
    TERM_NORMAL,
    TERM_UB,
    ThreadState,
    UBSignal,
)
from repro.machine.steps import NondetVar, Step
from repro.machine.values import (
    Location,
    Root,
    default_value,
    leaf_locations,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.memmodel import MemoryModel


@dataclass
class PcInfo:
    """Metadata for one program counter value."""

    pc: str
    method: str
    index: int
    yieldable: bool = True
    label: str | None = None
    loc: Any = None
    kind: str = ""  # statement kind for strategy matching


@dataclass(frozen=True)
class Transition:
    """One schedulable transition: a thread step (with its encapsulated
    nondeterminism resolved) or a memory-model environment move (a TSO
    store-buffer drain, an RA view advance)."""

    tid: int
    step: Step | None  # None = environment move
    params: tuple[tuple[Any, Any], ...] = ()

    @property
    def is_drain(self) -> bool:
        return self.step is None

    def params_dict(self) -> dict:
        return dict(self.params)

    def describe(self) -> str:
        if self.is_drain:
            if self.params:
                detail = ",".join(
                    f"{k}={v}" for k, v in self.params
                )
                return f"t{self.tid}:env:{detail}"
            return f"t{self.tid}:drain"
        return f"t{self.tid}:{self.step.pc}:{type(self.step).__name__}"


@dataclass
class DomainConfig:
    """Finite value domains for encapsulated nondeterminism.

    This is where the reproduction's *bounded* checking substitutes for
    Z3's unbounded reasoning: the explorer enumerates these domains; the
    symbolic verifier treats the same parameters as free variables.
    """

    bool_values: tuple = (False, True)
    int_values: tuple = (0, 1)
    newframe_int_values: tuple = (0,)
    overrides: dict[Any, tuple] = field(default_factory=dict)

    def values(self, var: NondetVar) -> tuple:
        if var.key in self.overrides:
            return self.overrides[var.key]
        t = var.type
        if isinstance(t, ty.BoolType):
            return self.bool_values
        if t.is_integer():
            if var.kind == "newframe":
                return self.newframe_int_values
            return self.int_values
        # Pointers, options, composites: default value only.
        return (default_value(t),)


class StateMachine:
    """A translated Armada level: PCs, steps, and execution."""

    def __init__(
        self,
        ctx: LevelContext,
        main_method: str = "main",
        memory_model: "str | MemoryModel | None" = None,
    ) -> None:
        # Deferred import: repro.memmodel reaches back into
        # repro.machine.state/pmap at module load.
        from repro.memmodel import get_model

        self.ctx = ctx
        self.level_name = ctx.level.name
        self.main_method = main_method
        self.memmodel: "MemoryModel" = get_model(memory_model)
        self.pcs: dict[str, PcInfo] = {}
        self.steps_by_pc: dict[str, list[Step]] = {}
        self.method_entry: dict[str, str] = {}
        self.domains = DomainConfig()
        #: Per-method locals that live in shared memory (address taken).
        self.memory_locals: dict[str, list[str]] = {}
        #: Per-method uninitialized scalar locals (newframe havoc targets).
        self.newframe_locals: dict[str, list[tuple[str, ty.Type]]] = {}
        #: Loop invariants attached to loop-guard PCs (rely-guarantee).
        self.loop_invariants: dict[str, list[ast.Expr]] = {}

    # ------------------------------------------------------------------
    # structure access

    def steps_at(self, pc: str) -> list[Step]:
        return self.steps_by_pc.get(pc, [])

    def pc_info(self, pc: str) -> PcInfo:
        return self.pcs[pc]

    def all_steps(self) -> Iterable[Step]:
        for steps in self.steps_by_pc.values():
            yield from steps

    def step_count(self) -> int:
        return sum(len(s) for s in self.steps_by_pc.values())

    # ------------------------------------------------------------------
    # initial state

    def initial_state(self) -> ProgramState:
        memory: dict[Location, Any] = {}
        ghosts: dict[Any, Any] = {}
        for g in self.ctx.level.globals:
            init_value = (
                _const_eval(g.init) if g.init is not None
                else default_value(g.var_type)
            )
            if g.ghost:
                ghosts[g.name] = init_value
            else:
                root = Root("global", g.name)
                leaves = leaf_locations(root, g.var_type)
                flat = _flatten(g.var_type, init_value)
                for (loc, _leaf_t), v in zip(leaves, flat):
                    memory[loc] = v
        state = ProgramState(
            threads=PMap(),
            memory=PMap(memory),
            allocation=PMap(),
            ghosts=PMap(ghosts),
            next_tid=1,
            next_serial=1,
        )
        state = self.memmodel.init_state(state)
        state, main_tid = self.spawn_thread(state, self.main_method, [], {})
        return state

    # ------------------------------------------------------------------
    # frames and threads

    def _make_frame(
        self,
        state: ProgramState,
        method: str,
        args: list[Any],
        params: dict,
        return_pc: str | None,
        result_local: str | None,
    ) -> tuple[ProgramState, Frame]:
        decl = self.ctx.methods.get(method)
        if decl is None:
            raise TranslationError(f"no such method {method}")
        serial = state.next_serial
        state = replace(state, next_serial=serial + 1)
        locals_map: dict[str, Any] = {}
        for param, value in zip(decl.params, args):
            locals_map[param.name] = value
        mctx = self.ctx.method_contexts.get(method)
        if mctx is not None:
            memory_updates: dict[Location, Any] = {}
            allocation_updates: dict[Root, str] = {}
            for name, info in mctx.locals.items():
                if info.is_param:
                    continue
                if info.address_taken:
                    root = Root("local", name, serial)
                    for loc, leaf_t in leaf_locations(root, info.type):
                        memory_updates[loc] = default_value(leaf_t)
                    allocation_updates[root] = "valid"
                else:
                    key = ("newframe", method, name)
                    locals_map[name] = params.get(
                        key, default_value(info.type)
                    )
            if memory_updates:
                state = replace(
                    state,
                    memory=state.memory.set_many(memory_updates),
                    allocation=state.allocation.set_many(allocation_updates),
                )
        frame = Frame(method, serial, PMap(locals_map), return_pc,
                      result_local)
        return state, frame

    def push_frame(
        self,
        state: ProgramState,
        tid: int,
        method: str,
        args: list[Any],
        return_pc: str | None,
        result_local: str | None,
        params: dict,
    ) -> ProgramState:
        state, frame = self._make_frame(
            state, method, args, params, return_pc, result_local
        )
        thread = state.thread(tid)
        thread = replace(
            thread,
            pc=self.method_entry[method],
            frames=(frame,) + thread.frames,
        )
        state = state.with_thread(thread)
        return self.update_atomic_owner(state, tid)

    def pop_frame(
        self, state: ProgramState, tid: int, value: Any
    ) -> ProgramState:
        thread = state.thread(tid)
        frame = thread.frames[0]
        # Free address-taken local roots: pointers into them dangle.
        mctx = self.ctx.method_contexts.get(frame.method)
        if mctx is not None:
            freed = {}
            for name, info in mctx.locals.items():
                if info.address_taken:
                    root = Root("local", name, frame.serial)
                    if state.allocation.get(root) == "valid":
                        freed[root] = "freed"
            if freed:
                state = replace(
                    state, allocation=state.allocation.set_many(freed)
                )
        rest = thread.frames[1:]
        if not rest:
            thread = replace(thread, pc=None, frames=())
            state = state.with_thread(thread)
            state = self.update_atomic_owner(state, tid)
            if tid == 1:
                # Main thread exit terminates the program normally.
                state = state.terminate(TERM_NORMAL)
            return state
        caller = rest[0]
        if frame.return_lhs_key is not None and value is not None:
            caller = replace(
                caller, locals=caller.locals.set(frame.return_lhs_key, value)
            )
        thread = replace(
            thread, pc=frame.return_pc, frames=(caller,) + rest[1:]
        )
        state = state.with_thread(thread)
        return self.update_atomic_owner(state, tid)

    def spawn_thread(
        self,
        state: ProgramState,
        method: str,
        args: list[Any],
        params: dict,
        parent_tid: int | None = None,
    ) -> tuple[ProgramState, int]:
        tid = state.next_tid
        state = replace(state, next_tid=tid + 1)
        state, frame = self._make_frame(state, method, args, params, None,
                                        None)
        thread = ThreadState(
            tid=tid, pc=self.method_entry[method], frames=(frame,)
        )
        parent = (
            state.threads.get(parent_tid) if parent_tid is not None else None
        )
        thread = self.memmodel.init_thread(thread, parent)
        state = state.with_thread(thread)
        return state, tid

    # ------------------------------------------------------------------
    # atomic-region scheduling

    def update_atomic_owner(
        self, state: ProgramState, tid: int
    ) -> ProgramState:
        """Recompute the atomic-region owner after *tid* moved."""
        thread = state.thread(tid)
        inside = (
            thread.pc is not None and not self.pcs[thread.pc].yieldable
        )
        if inside:
            return replace(state, atomic_owner=tid)
        if state.atomic_owner == tid:
            return replace(state, atomic_owner=None)
        return state

    # ------------------------------------------------------------------
    # transition enumeration

    def param_assignments(
        self,
        step: Step,
        method: str,
        state: ProgramState | None = None,
        tid: int | None = None,
    ) -> list[tuple[tuple[Any, Any], ...]]:
        """Cartesian product of the step's nondeterminism domains.

        When *state* is supplied, steps may contribute state-dependent
        *witness candidates* (e.g. a ``somehow`` whose postcondition is
        ``x == old(x) + 2`` contributes the pre-state value of
        ``old(x) + 2`` for the havoc of ``x``) — the witness heuristics
        of §4.2.5 applied to transition enumeration.
        """
        variables = list(step.nondet_vars())
        from repro.machine.steps import CallStep, CreateThreadStep

        if isinstance(step, (CallStep, CreateThreadStep)):
            callee = step.method
            for name, t in self.newframe_locals.get(callee, []):
                variables.append(
                    NondetVar(("newframe", callee, name), t, "newframe")
                )
        if not variables:
            return [()]
        candidates: dict[Any, list[Any]] = {}
        if state is not None and tid is not None:
            collect = getattr(step, "witness_candidates", None)
            if collect is not None:
                try:
                    candidates = collect(self, state, tid)
                except Exception:
                    candidates = {}
        assignments: list[tuple[tuple[Any, Any], ...]] = [()]
        for var in variables:
            values = list(self.domains.values(var))
            for extra in candidates.get(var.key, []):
                if extra not in values:
                    values.append(extra)
            assignments = [
                partial + ((var.key, value),)
                for partial in assignments
                for value in values
            ]
        return assignments

    def enabled_transitions(self, state: ProgramState) -> list[Transition]:
        if not state.running:
            return []
        transitions: list[Transition] = []
        tids = sorted(state.threads.keys())
        if state.atomic_owner is not None:
            tids = [state.atomic_owner]
        memmodel = self.memmodel
        for tid in tids:
            thread = state.threads[tid]
            # Environment moves are asynchronous hardware effects (TSO
            # write-backs, RA view advances); under TSO they remain
            # enabled even after the thread has terminated (a thread may
            # exit with pending stores that must still reach memory).
            for env_params in memmodel.env_moves(state, thread, self):
                transitions.append(Transition(tid, None, env_params))
            if thread.terminated or thread.pc is None:
                continue
            method = thread.top.method
            for step in self.steps_at(thread.pc):
                for params in self.param_assignments(step, method, state,
                                                     tid):
                    try:
                        is_enabled = step.enabled(
                            self, state, tid, dict(params)
                        )
                    except UBSignal:
                        is_enabled = True
                    if is_enabled:
                        transitions.append(Transition(tid, step, params))
        return transitions

    # ------------------------------------------------------------------
    # deterministic next-state function (§4.1)

    def next_state(
        self, state: ProgramState, transition: Transition
    ) -> ProgramState:
        """The deterministic ``NextState(state, step-object)`` function.

        Undefined behaviour during the step terminates the program with
        the UB termination kind (§3.2.3).
        """
        if not state.running:
            return state
        if transition.is_drain:
            return self.memmodel.apply_env(
                state, transition.tid, transition.params
            )
        try:
            return transition.step.apply(
                self, state, transition.tid, transition.params_dict()
            )
        except UBSignal as signal:
            return state.terminate(TERM_UB, signal.reason)


# ---------------------------------------------------------------------------
# constant evaluation for global initializers


def _const_eval(expr: ast.Expr) -> Any:
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.BoolLit):
        return expr.value
    if isinstance(expr, ast.NullLit):
        from repro.machine.values import NULL

        return NULL
    if isinstance(expr, ast.Var) and expr.name == "None":
        from repro.machine.values import NONE_OPTION

        return NONE_OPTION
    if isinstance(expr, ast.SeqLit):
        return tuple(_const_eval(e) for e in expr.elements)
    if isinstance(expr, ast.SetLit):
        return frozenset(_const_eval(e) for e in expr.elements)
    if isinstance(expr, ast.Unary) and expr.op == "-":
        return -_const_eval(expr.operand)
    if isinstance(expr, ast.Binary):
        left = _const_eval(expr.left)
        right = _const_eval(expr.right)
        ops = {
            "+": lambda: left + right,
            "-": lambda: left - right,
            "*": lambda: left * right,
        }
        if expr.op in ops:
            return ops[expr.op]()
    raise TranslationError(
        f"global initializer must be a constant expression", expr.loc
    )


def _flatten(t: ty.Type, value: Any) -> list[Any]:
    """Flatten a (possibly composite) value into leaf order."""
    from repro.machine.values import CompositeValue

    if isinstance(t, ty.ArrayType):
        if not isinstance(value, CompositeValue):
            raise TranslationError("array initializer must be composite")
        result = []
        for child in value.children:
            result.extend(_flatten(t.element, child))
        return result
    if isinstance(t, ty.StructType):
        if not isinstance(value, CompositeValue):
            raise TranslationError("struct initializer must be composite")
        result = []
        for f, child in zip(t.fields, value.children):
            result.extend(_flatten(f.type, child))
        return result
    return [value]
