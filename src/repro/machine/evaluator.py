"""Expression evaluation over program states.

Evaluates typed AST expressions against a thread's view of a state:
reads of shared memory go through the thread's x86-TSO store buffer
(:meth:`ProgramState.local_view`); reads of non-addressed locals hit the
stack frame; ghost state is sequentially consistent.

Undefined behaviour (§3.2.3/§3.2.4) — freed/null dereference, division
by zero, signed overflow, shifts out of range, out-of-bounds indexing,
pointer comparison across arrays — raises :class:`UBSignal`, which the
step semantics converts into a UB-terminated state.

Assignment targets are *places* (:class:`MemoryPlace`, :class:`LocalPlace`,
:class:`GhostPlace`), computed by :func:`eval_place`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.lang import asts as ast
from repro.lang import types as ty
from repro.lang.resolver import LevelContext
from repro.machine.state import ProgramState, UBSignal
from repro.machine.values import (
    NONE_OPTION,
    NULL,
    CompositeValue,
    GhostMap,
    Location,
    NullPointer,
    OptionValue,
    Pointer,
    Root,
    child_type,
    some,
    type_at_path,
)

STATUS_VALID = "valid"
STATUS_FREED = "freed"


# ---------------------------------------------------------------------------
# Places


@dataclass(frozen=True, slots=True)
class MemoryPlace:
    """A shared-memory target: a location (possibly of composite type)."""

    location: Location
    type: ty.Type


@dataclass(frozen=True, slots=True)
class LocalPlace:
    """A stack-frame target: local name plus a path into its composite."""

    name: str
    path: tuple[int, ...]
    type: ty.Type


@dataclass(frozen=True, slots=True)
class GhostPlace:
    """A ghost-variable target (sequentially consistent)."""

    name: str
    type: ty.Type


Place = MemoryPlace | LocalPlace | GhostPlace


# ---------------------------------------------------------------------------
# Evaluation context


class EvalContext:
    """Everything needed to evaluate an expression for one thread."""

    __slots__ = (
        "ctx", "state", "tid", "method", "nondet", "old_state",
        "bound", "mem_locals", "memmodel",
    )

    def __init__(
        self,
        ctx: LevelContext,
        state: ProgramState,
        tid: int,
        method: str,
        nondet: dict[int, Any] | None = None,
        old_state: ProgramState | None = None,
        bound: dict[str, Any] | None = None,
        memmodel: Any = None,
    ) -> None:
        self.ctx = ctx
        self.state = state
        self.tid = tid
        self.method = method
        self.nondet = nondet or {}
        self.old_state = old_state
        self.bound = bound or {}
        #: The active MemoryModel, when the caller carries one (contexts
        #: built without a model fall back to the inline TSO write path).
        self.memmodel = memmodel
        mctx = ctx.method_contexts.get(method)
        self.mem_locals = (
            {n for n, info in mctx.locals.items() if info.address_taken}
            if mctx else set()
        )

    def with_state(self, state: ProgramState) -> "EvalContext":
        clone = EvalContext.__new__(EvalContext)
        clone.ctx = self.ctx
        clone.state = state
        clone.tid = self.tid
        clone.method = self.method
        clone.nondet = self.nondet
        clone.old_state = self.old_state
        clone.bound = self.bound
        clone.mem_locals = self.mem_locals
        clone.memmodel = self.memmodel
        return clone


# ---------------------------------------------------------------------------
# Reading memory


def read_location(ec: EvalContext, location: Location, t: ty.Type) -> Any:
    """Read a (possibly composite) object at *location* through the
    thread's TSO view, checking validity of the root."""
    status = ec.state.allocation.get(location.root)
    if status == STATUS_FREED:
        raise UBSignal(f"access to freed object {location.root}")
    if status is None and location.root.kind != "global":
        raise UBSignal(f"access to unallocated object {location.root}")
    return _read_tree(ec, location, t)


def _read_tree(ec: EvalContext, location: Location, t: ty.Type) -> Any:
    if isinstance(t, ty.ArrayType):
        return CompositeValue(tuple(
            _read_tree(ec, location.child(i), t.element)
            for i in range(t.size)
        ))
    if isinstance(t, ty.StructType):
        return CompositeValue(tuple(
            _read_tree(ec, location.child(i), f.type)
            for i, f in enumerate(t.fields)
        ))
    return ec.state.local_view(ec.tid, location)


def global_root(name: str) -> Root:
    return Root("global", name)


def local_root(name: str, serial: int) -> Root:
    return Root("local", name, serial)


# ---------------------------------------------------------------------------
# Place computation (lvalues)


def eval_place(ec: EvalContext, expr: ast.Expr) -> Place:
    """Compute the place denoted by lvalue *expr*."""
    if isinstance(expr, ast.Var):
        return _var_place(ec, expr)
    if isinstance(expr, ast.Deref):
        pointer = eval_expr(ec, expr.operand)
        return _pointer_place(ec, pointer)
    if isinstance(expr, ast.FieldAccess):
        base = eval_place(ec, expr.base)
        base_type = base.type
        if not isinstance(base_type, ty.StructType):
            raise UBSignal(f"field access on non-struct {base_type}")
        index = base_type.field_index(expr.fieldname)
        assert index is not None
        return _child_place(base, index)
    if isinstance(expr, ast.Index):
        base = eval_place(ec, expr.base)
        if isinstance(base.type, ty.PtrType):
            # p[i] on a pointer place: read the pointer then offset.
            pointer = read_place(ec, base)
            index = eval_expr(ec, expr.index)
            shifted = offset_pointer(ec, pointer, index)
            return _pointer_place(ec, shifted)
        index = eval_expr(ec, expr.index)
        if isinstance(base.type, ty.ArrayType):
            if not 0 <= index < base.type.size:
                raise UBSignal(
                    f"index {index} out of bounds for {base.type}"
                )
            return _child_place(base, index)
        if isinstance(base.type, (ty.SeqType, ty.MapType)):
            raise UBSignal("ghost collections are assigned wholesale")
        raise UBSignal(f"cannot index into {base.type}")
    raise UBSignal(f"not an lvalue: {type(expr).__name__}")


def _var_place(ec: EvalContext, expr: ast.Var) -> Place:
    name = expr.name
    mctx = ec.ctx.method_contexts.get(ec.method)
    if mctx and name in mctx.locals:
        info = mctx.locals[name]
        if info.address_taken:
            frame = ec.state.thread(ec.tid).top
            root = local_root(name, frame.serial)
            return MemoryPlace(Location(root), info.type)
        return LocalPlace(name, (), info.type)
    g = ec.ctx.globals.get(name)
    if g is not None:
        if g.ghost:
            return GhostPlace(name, g.var_type)
        return MemoryPlace(Location(global_root(name)), g.var_type)
    raise UBSignal(f"unknown variable {name}")


def _pointer_place(ec: EvalContext, pointer: Any) -> MemoryPlace:
    if isinstance(pointer, NullPointer):
        raise UBSignal("null pointer dereference")
    if not isinstance(pointer, Pointer):
        raise UBSignal(f"dereference of non-pointer {pointer!r}")
    status = ec.state.allocation.get(pointer.location.root)
    if status == STATUS_FREED:
        raise UBSignal(f"dereference of freed pointer {pointer}")
    if status is None and pointer.location.root.kind != "global":
        raise UBSignal(f"dereference of invalid pointer {pointer}")
    return MemoryPlace(pointer.location, pointer.target_type)


def _child_place(place: Place, index: int) -> Place:
    sub = child_type(place.type, index)
    if isinstance(place, MemoryPlace):
        return MemoryPlace(place.location.child(index), sub)
    if isinstance(place, LocalPlace):
        return LocalPlace(place.name, place.path + (index,), sub)
    raise UBSignal("cannot take a component of a ghost variable")


def read_place(ec: EvalContext, place: Place) -> Any:
    if isinstance(place, MemoryPlace):
        return read_location(ec, place.location, place.type)
    if isinstance(place, LocalPlace):
        frame = ec.state.thread(ec.tid).top
        if place.name not in frame.locals:
            raise UBSignal(f"read of undefined local {place.name}")
        value = frame.locals[place.name]
        for index in place.path:
            if not isinstance(value, CompositeValue):
                raise UBSignal("component access on non-composite value")
            value = value.children[index]
        return value
    if place.name not in ec.state.ghosts:
        raise UBSignal(f"read of undefined ghost {place.name}")
    return ec.state.ghosts[place.name]


# ---------------------------------------------------------------------------
# Pointer arithmetic and comparison (§3.2.4)


def offset_pointer(ec: EvalContext, pointer: Any, delta: int) -> Pointer:
    """``p + delta``: must stay within the bounds of a single array
    (one-past-the-end is representable but not dereferenceable)."""
    if not isinstance(pointer, Pointer):
        raise UBSignal("pointer arithmetic on non-pointer")
    if delta == 0:
        return pointer
    location = pointer.location
    if not location.path:
        raise UBSignal("pointer arithmetic on a whole object")
    parent_path = location.path[:-1]
    index = location.path[-1] + delta
    parent_type = _root_type_at(ec, location.root, parent_path)
    if not isinstance(parent_type, ty.ArrayType):
        raise UBSignal("pointer arithmetic outside an array")
    if not 0 <= index <= parent_type.size:
        raise UBSignal(
            f"pointer arithmetic strays outside the array "
            f"(index {index} of {parent_type.size})"
        )
    return Pointer(
        Location(location.root, parent_path + (index,)), pointer.target_type
    )


def _root_type_at(
    ec: EvalContext, root: Root, path: tuple[int, ...]
) -> ty.Type:
    root_type = root_object_type(ec, root)
    return type_at_path(root_type, path)


def root_object_type(ec: EvalContext, root: Root) -> ty.Type:
    """The declared type of the whole object rooted at *root*."""
    if root.kind == "global":
        g = ec.ctx.globals.get(root.name)
        if g is None:
            raise UBSignal(f"unknown global root {root}")
        return g.var_type
    if root.kind == "local":
        for mctx in ec.ctx.method_contexts.values():
            info = mctx.locals.get(root.name)
            if info is not None and info.address_taken:
                return info.type
        raise UBSignal(f"unknown local root {root}")
    # Allocations record their type in the allocation table via a parallel
    # ghost entry maintained by the malloc step; we recover it lazily.
    alloc_type = ec.state.ghosts.get(("alloc_type", root.serial))
    if alloc_type is None:
        raise UBSignal(f"unknown allocation root {root}")
    return alloc_type


def compare_pointers(ec: EvalContext, op: str, left: Any, right: Any) -> bool:
    """Pointer comparison with the paper's UB rules."""
    for p in (left, right):
        if isinstance(p, Pointer):
            if ec.state.allocation.get(p.location.root) == STATUS_FREED:
                raise UBSignal("comparison involving freed pointer")
    if op in ("==", "!="):
        equal = left == right
        return equal if op == "==" else not equal
    # Ordering requires two elements of the same array.
    if not (isinstance(left, Pointer) and isinstance(right, Pointer)):
        raise UBSignal("ordering comparison with null pointer")
    if (
        left.location.root != right.location.root
        or left.location.path[:-1] != right.location.path[:-1]
        or not left.location.path
    ):
        raise UBSignal("ordering comparison of pointers into different arrays")
    a, b = left.location.path[-1], right.location.path[-1]
    return {"<": a < b, "<=": a <= b, ">": a > b, ">=": a >= b}[op]


# ---------------------------------------------------------------------------
# Arithmetic helpers


def _arith_result(t: ty.Type | None, value: int) -> int:
    """Apply C result semantics: unsigned wraps, signed overflow is UB,
    mathematical integers are exact."""
    if isinstance(t, ty.IntType):
        if t.signed:
            if not t.contains(value):
                raise UBSignal(f"signed overflow: {value} does not fit {t}")
            return value
        return t.wrap(value)
    return value


# ---------------------------------------------------------------------------
# Expression evaluation


def eval_expr(ec: EvalContext, expr: ast.Expr) -> Any:
    """Evaluate *expr* to a value in the context *ec*."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.BoolLit):
        return expr.value
    if isinstance(expr, ast.NullLit):
        return NULL
    if isinstance(expr, ast.Nondet):
        key = id(expr)
        if key not in ec.nondet:
            raise UBSignal("unresolved nondeterministic value")
        return ec.nondet[key]
    if isinstance(expr, ast.Var):
        if expr.name in ec.bound:
            return ec.bound[expr.name]
        if expr.name == "None":
            return NONE_OPTION
        return read_place(ec, _var_place(ec, expr))
    if isinstance(expr, ast.MetaVar):
        if expr.name == "$me":
            return ec.tid
        if expr.name == "$sb_empty":
            return ec.state.thread(ec.tid).sb_empty
        raise UBSignal(f"unknown meta variable {expr.name}")
    if isinstance(expr, ast.Unary):
        return _eval_unary(ec, expr)
    if isinstance(expr, ast.Binary):
        return _eval_binary(ec, expr)
    if isinstance(expr, ast.Conditional):
        cond = eval_expr(ec, expr.cond)
        return eval_expr(ec, expr.then if cond else expr.els)
    if isinstance(expr, ast.AddressOf):
        place = eval_place(ec, expr.operand)
        if not isinstance(place, MemoryPlace):
            raise UBSignal("address of a register-allocated or ghost value")
        return Pointer(place.location, place.type)
    if isinstance(expr, ast.Deref):
        pointer = eval_expr(ec, expr.operand)
        place = _pointer_place(ec, pointer)
        return read_place(ec, place)
    if isinstance(expr, (ast.FieldAccess, ast.Index)):
        return _eval_access(ec, expr)
    if isinstance(expr, ast.Old):
        if ec.old_state is None:
            raise UBSignal("old() outside a two-state context")
        return eval_expr(ec.with_state(ec.old_state), expr.operand)
    if isinstance(expr, ast.Allocated):
        pointer = eval_expr(ec, expr.operand)
        if isinstance(pointer, NullPointer):
            return False
        status = ec.state.allocation.get(pointer.location.root)
        if status is None:
            return pointer.location.root.kind == "global"
        return status == STATUS_VALID
    if isinstance(expr, ast.AllocatedArray):
        pointer = eval_expr(ec, expr.operand)
        if isinstance(pointer, NullPointer):
            return False
        status = ec.state.allocation.get(pointer.location.root)
        valid = (status == STATUS_VALID) or (
            status is None and pointer.location.root.kind == "global"
        )
        if not valid:
            return False
        return isinstance(
            _root_type_at(ec, pointer.location.root, pointer.location.path),
            ty.ArrayType,
        )
    if isinstance(expr, ast.Call):
        return _eval_call(ec, expr)
    if isinstance(expr, ast.SeqLit):
        return tuple(eval_expr(ec, e) for e in expr.elements)
    if isinstance(expr, ast.SetLit):
        return frozenset(eval_expr(ec, e) for e in expr.elements)
    if isinstance(expr, ast.Quantifier):
        return _eval_quantifier(ec, expr)
    raise UBSignal(f"cannot evaluate {type(expr).__name__}")


def _eval_unary(ec: EvalContext, expr: ast.Unary) -> Any:
    value = eval_expr(ec, expr.operand)
    if expr.op == "!":
        return not value
    if expr.op == "-":
        return _arith_result(expr.type, -value)
    if expr.op == "~":
        t = expr.type
        assert isinstance(t, ty.IntType)
        return t.wrap(~value)
    raise UBSignal(f"unknown unary {expr.op}")


def _eval_binary(ec: EvalContext, expr: ast.Binary) -> Any:
    op = expr.op
    if op == "&&":
        return bool(eval_expr(ec, expr.left)) and bool(
            eval_expr(ec, expr.right)
        )
    if op == "||":
        return bool(eval_expr(ec, expr.left)) or bool(
            eval_expr(ec, expr.right)
        )
    if op == "==>":
        return (not eval_expr(ec, expr.left)) or bool(
            eval_expr(ec, expr.right)
        )
    if op == "<==":
        return bool(eval_expr(ec, expr.left)) or not eval_expr(ec, expr.right)

    left = eval_expr(ec, expr.left)
    right = eval_expr(ec, expr.right)

    if isinstance(left, (Pointer, NullPointer)) or isinstance(
        right, (Pointer, NullPointer)
    ):
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return compare_pointers(ec, op, left, right)
        if op in ("+", "-") and isinstance(left, Pointer):
            return offset_pointer(ec, left, right if op == "+" else -right)
        raise UBSignal(f"bad pointer operation {op}")

    if op == "in":
        if isinstance(right, GhostMap):
            return left in right
        return left in right
    if op in ("==", "!="):
        return (left == right) if op == "==" else (left != right)
    if op in ("<", "<=", ">", ">="):
        return {"<": left < right, "<=": left <= right,
                ">": left > right, ">=": left >= right}[op]
    if op == "+" and isinstance(left, tuple):
        return left + right  # ghost sequence concatenation
    if op in ("+", "-", "*"):
        raw = {"+": left + right, "-": left - right, "*": left * right}[op]
        return _arith_result(expr.type, raw)
    if op in ("/", "%"):
        if right == 0:
            raise UBSignal("division by zero")
        # C semantics: truncation toward zero.
        quotient = abs(left) // abs(right)
        if (left < 0) != (right < 0):
            quotient = -quotient
        remainder = left - quotient * right
        raw = quotient if op == "/" else remainder
        return _arith_result(expr.type, raw)
    if op in ("<<", ">>"):
        t = expr.type
        assert isinstance(t, ty.IntType)
        if not 0 <= right < t.bits:
            raise UBSignal(f"shift by {right} out of range for {t}")
        if op == "<<":
            return t.wrap(left << right)
        return left >> right
    if op in ("&", "|", "^"):
        t = expr.type
        assert isinstance(t, ty.IntType)
        raw = {"&": left & right, "|": left | right, "^": left ^ right}[op]
        return t.wrap(raw)
    raise UBSignal(f"unknown binary {op}")


def _eval_access(ec: EvalContext, expr: ast.Expr) -> Any:
    """Field access / indexing, handling both memory-resident and
    register-resident (frame) composites, plus ghost collections."""
    if isinstance(expr, ast.FieldAccess):
        base_type = expr.base.type
        if isinstance(base_type, ty.StructType):
            base = eval_expr(ec, expr.base)
            index = base_type.field_index(expr.fieldname)
            assert index is not None
            if not isinstance(base, CompositeValue):
                raise UBSignal("field access on non-composite")
            return base.children[index]
        raise UBSignal(f"field access on {base_type}")
    assert isinstance(expr, ast.Index)
    base = eval_expr(ec, expr.base)
    index = eval_expr(ec, expr.index)
    if isinstance(base, Pointer):
        shifted = offset_pointer(ec, base, index)
        return read_place(ec, _pointer_place(ec, shifted))
    if isinstance(base, CompositeValue):
        if not 0 <= index < len(base.children):
            raise UBSignal(f"index {index} out of bounds")
        return base.children[index]
    if isinstance(base, tuple):  # ghost sequence
        if not 0 <= index < len(base):
            raise UBSignal(f"sequence index {index} out of bounds")
        return base[index]
    if isinstance(base, GhostMap):
        if index not in base:
            raise UBSignal(f"map key {index!r} absent")
        return base[index]
    raise UBSignal(f"cannot index {type(base).__name__}")


# Deterministic interpretation of uninterpreted ghost functions: both
# levels of a refinement pair must see the same function, so we hash the
# (name, arguments) pair into a stable value.
def uninterpreted_value(name: str, args: tuple, result_type: ty.Type) -> Any:
    import hashlib

    digest = hashlib.sha256(repr((name, args)).encode()).digest()
    raw = int.from_bytes(digest[:8], "big")
    if isinstance(result_type, ty.BoolType):
        return bool(raw & 1)
    if isinstance(result_type, ty.IntType):
        return result_type.wrap(raw)
    return raw


def _eval_call(ec: EvalContext, expr: ast.Call) -> Any:
    if expr.func == "len":
        value = eval_expr(ec, expr.args[0])
        if isinstance(value, CompositeValue):
            return len(value.children)
        return len(value)
    if expr.func == "abs":
        return abs(eval_expr(ec, expr.args[0]))
    if expr.func == "Some":
        return some(eval_expr(ec, expr.args[0]))
    if expr.func in ("first", "last"):
        value = eval_expr(ec, expr.args[0])
        if not isinstance(value, tuple) or not value:
            raise UBSignal(f"{expr.func}() of empty or non-sequence")
        return value[0] if expr.func == "first" else value[-1]
    if expr.func in ("drop", "take"):
        value = eval_expr(ec, expr.args[0])
        count = eval_expr(ec, expr.args[1])
        if not isinstance(value, tuple) or not isinstance(count, int):
            raise UBSignal(f"{expr.func}() on non-sequence")
        if not 0 <= count <= len(value):
            raise UBSignal(f"{expr.func}({count}) out of range")
        return value[count:] if expr.func == "drop" else value[:count]
    if expr.func in ec.ctx.methods:
        raise UBSignal(
            f"method {expr.func} evaluated in expression position"
        )
    args = tuple(_hashable(eval_expr(ec, arg)) for arg in expr.args)
    result_type = expr.type if expr.type is not None else ty.BOOL
    return uninterpreted_value(expr.func, args, result_type)


def _hashable(value: Any) -> Any:
    if isinstance(value, CompositeValue):
        return tuple(_hashable(c) for c in value.children)
    return value


_QUANT_DOMAIN = tuple(range(-4, 9))


def _eval_quantifier(ec: EvalContext, expr: ast.Quantifier) -> bool:
    """Bounded quantifier evaluation over a small integer domain.

    Model-checked states are finite; quantifiers in recipes range over
    thread ids and small counters, for which this domain suffices.  The
    symbolic prover handles quantifiers separately.
    """
    domain: tuple = _QUANT_DOMAIN
    if isinstance(expr.boundtype, ty.IntType):
        lo = max(expr.boundtype.min_value, -4)
        hi = min(expr.boundtype.max_value, 8)
        domain = tuple(range(lo, hi + 1))
    results = []
    for value in domain:
        inner = EvalContext(
            ec.ctx, ec.state, ec.tid, ec.method, ec.nondet, ec.old_state,
            {**ec.bound, expr.boundvar: value},
        )
        results.append(bool(eval_expr(inner, expr.body)))
    if expr.kind == "forall":
        return all(results)
    return any(results)
