"""Command-line interface: the ``armada`` tool.

Mirrors the workflow of Figure 1:

* ``armada verify FILE``     — run every proof recipe in an Armada file
* ``armada check FILE``      — parse/resolve/type-check only
* ``armada explore FILE``    — enumerate a level's reachable states
* ``armada analyze FILE``    — static race & TSO-robustness analysis
* ``armada compile FILE``    — emit ClightTSO-flavoured C for a level
* ``armada run FILE``        — execute a level on the reference runtime
* ``armada casestudy NAME``  — verify one of the paper's case studies
* ``armada strategies``      — list the registered proof strategies
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.errors import ArmadaError

#: Default proof-cache directory for ``armada verify``.
DEFAULT_CACHE_DIR = ".armada-cache"

#: Default state directory for ``armada serve`` (and the client
#: subcommands' default socket lives inside it).
DEFAULT_SERVE_DIR = ".armada-serve"


def _default_cache_dir() -> str:
    """Resolved at parse time so $ARMADA_CACHE_DIR can redirect it."""
    return os.environ.get("ARMADA_CACHE_DIR", DEFAULT_CACHE_DIR)


def _default_serve_dir() -> str:
    return os.environ.get("ARMADA_SERVE_DIR", DEFAULT_SERVE_DIR)


def _version() -> str:
    """The installed package version, falling back to pyproject.toml
    for source checkouts that were never pip-installed."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        pass
    import re

    pyproject = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))),
        "pyproject.toml",
    )
    try:
        with open(pyproject, encoding="utf-8") as handle:
            match = re.search(
                r'^version\s*=\s*"([^"]+)"', handle.read(), re.MULTILINE
            )
            if match:
                return match.group(1)
    except OSError:
        pass
    return "unknown"


def _read_source(path: str) -> str:
    """Read a program file, exiting 1 with a one-line error on failure
    instead of tracebacking."""
    try:
        with open(path, encoding="utf-8") as handle:
            return handle.read()
    except (FileNotFoundError, IsADirectoryError, PermissionError,
            UnicodeDecodeError, OSError) as error:
        print(f"armada: cannot read {path}: {error}", file=sys.stderr)
        raise SystemExit(1)


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.lang.frontend import check_program

    source = _read_source(args.file)
    checked = check_program(source, args.file)
    print(f"checked {len(checked.program.levels)} level(s), "
          f"{len(checked.program.proofs)} proof(s)")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.errors import FaultPlanError
    from repro.farm import FarmConfig, VerificationFarm
    from repro.faults import load_fault_plan
    from repro.lang.frontend import check_program
    from repro.obs import OBS
    from repro.proofs.engine import ProofEngine

    source = _read_source(args.file)
    faults = None
    if args.inject_faults:
        try:
            faults = load_fault_plan(args.inject_faults)
        except FaultPlanError as error:
            print(f"armada: {error}", file=sys.stderr)
            return 1
    farm = VerificationFarm(
        FarmConfig(
            jobs=args.jobs,
            mode=args.farm_mode,
            cache_dir=None if args.no_cache else args.cache,
            cache_max_bytes=args.cache_max_bytes,
            obligation_timeout=args.obligation_timeout,
            chain_deadline=args.chain_deadline,
            max_retries=args.max_retries,
            faults=faults,
            journal_path=args.journal,
        )
    )
    checked = check_program(source, args.file)
    engine = ProofEngine(
        checked, max_states=args.max_states,
        validate_refinement=args.validate, farm=farm,
        analyze=args.analyze, por=args.por,
        memory_model=args.memory_model,
        compiled=args.compiled, atomic=args.atomic,
    )
    if args.trace:
        try:
            OBS.enable(args.trace)
        except OSError as error:
            print(f"armada: cannot write trace {args.trace}: {error}",
                  file=sys.stderr)
            return 1
    # Graceful drain: on SIGTERM/SIGINT the farm finishes in-flight
    # obligations, short-circuits the rest as inconclusive, and the
    # journal keeps every settled verdict — so the same command re-run
    # with the same --journal resumes instead of restarting.
    import signal as _signal

    def _drain(signum: int, frame: object) -> None:
        if farm.shutdown_requested:
            # Second signal: the user means it — let the default
            # disposition take over.
            _signal.signal(signum, _signal.SIG_DFL)
            _signal.raise_signal(signum)
            return
        farm.request_shutdown()
        print(
            "armada: drain requested — finishing in-flight "
            "obligations; settled verdicts are journaled "
            "(signal again to abort immediately)",
            file=sys.stderr,
        )

    previous_handlers = {}
    for signum in (_signal.SIGTERM, _signal.SIGINT):
        try:
            previous_handlers[signum] = _signal.signal(signum, _drain)
        except (ValueError, OSError):
            pass  # not the main thread
    try:
        outcome = engine.run_all()
    finally:
        for signum, handler in previous_handlers.items():
            try:
                _signal.signal(signum, handler)
            except (ValueError, OSError):
                pass
        farm.close()
        if args.trace:
            OBS.disable()
            print(f"trace written to {args.trace} "
                  f"(inspect with: armada stats {args.trace})")
    for note in outcome.analysis_notes:
        print(note)
    if outcome.por_summary:
        print(outcome.por_summary)
    for result in outcome.outcomes:
        if result.success:
            status = "verified"
        elif result.inconclusive:
            # Timeouts / abandoned obligations: nothing was refuted,
            # so this must not read as "the program is wrong".
            status = "INCONCLUSIVE"
        else:
            status = "FAILED"
        print(
            f"{result.proof_name} [{result.strategy}]: {status} "
            f"({result.lemma_count} lemmas, "
            f"{result.generated_sloc} generated SLOC, "
            f"{result.elapsed_seconds:.2f}s)"
        )
        if result.error:
            print(f"  {result.error}")
    if outcome.chain:
        print("refinement chain:", " -> ".join(outcome.chain))
    elif outcome.chain_error:
        print(f"chain error: {outcome.chain_error}")
    if outcome.inconclusive:
        print(
            "chain INCONCLUSIVE: obligations timed out or were "
            "abandoned; re-run with a larger deadline/retry budget"
        )
    print(farm.summary_line())
    if args.farm_report:
        for line in farm.report_lines():
            print(line)
    if farm.shutdown_requested:
        print(
            "armada: drained after signal; re-run with the same "
            "--journal to resume", file=sys.stderr,
        )
        return 130
    return 0 if outcome.success else 1


def _invariant_predicate(ctx, machine, source: str):
    """Compile an ``--invariant`` expression into a state predicate.

    The expression is evaluated for every live thread (so it may
    mention locals of the thread's current method); evaluation that is
    undefined for a particular thread — e.g. the predicate names a
    local the thread does not have — is skipped rather than counted as
    a violation.
    """
    from repro.lang import types as ty
    from repro.lang.parser import parse_expression
    from repro.lang.typechecker import TypeChecker
    from repro.machine.evaluator import EvalContext, eval_expr
    from repro.machine.state import UBSignal

    expr = parse_expression(source)
    TypeChecker(ctx)._check_expr(expr, None, ty.BOOL, two_state=False)

    def predicate(state) -> bool:
        tids = list(state.threads) or [1]
        for tid in tids:
            thread = state.threads.get(tid)
            method = (
                thread.top.method
                if thread is not None and thread.frames
                else machine.main_method
            )
            try:
                value = eval_expr(EvalContext(ctx, state, tid, method), expr)
            except (UBSignal, KeyError):
                continue
            if not bool(value):
                return False
        return True

    return predicate


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.errors import ArmadaError
    from repro.farm.exploration import exploration_summary, run_exploration
    from repro.lang.frontend import check_program
    from repro.machine.translator import translate_level

    source = _read_source(args.file)
    checked = check_program(source, args.file)
    level = args.level or checked.program.levels[0].name
    ctx = checked.contexts.get(level)
    if ctx is None:
        names = ", ".join(l.name for l in checked.program.levels)
        print(f"no level named {level} (levels: {names})",
              file=sys.stderr)
        return 1
    machine = translate_level(ctx, memory_model=args.memory_model)
    invariants = {
        src: _invariant_predicate(ctx, machine, src)
        for src in (args.invariant or [])
    }
    # --por defaults to on; sharding runs the full fan-out, so the
    # default-on static reduction is dropped rather than rejected
    # (explicit --dpor/--symmetry with sharding still error).
    por = args.por and not args.dpor and args.shard_workers <= 1
    try:
        result, disabled = run_exploration(
            machine,
            max_states=args.max_states,
            por=por,
            dpor=args.dpor,
            symmetry=args.symmetry,
            atomic=args.atomic,
            shard_workers=args.shard_workers,
            compiled=args.compiled,
            invariants=invariants or None,
        )
    except ArmadaError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    outcomes = sorted(
        result.final_outcomes, key=lambda o: (o[0], tuple(map(str, o[1])))
    )
    if args.json:
        import json

        payload = exploration_summary(machine, level, result, disabled)
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"level {level}: {result.states_visited} states, "
              f"{result.transitions_taken} transitions explored")
        if disabled is not None:
            print(f"note: {disabled}")
        if result.por_stats is not None:
            print(result.por_stats.describe())
        if result.atomic_stats is not None:
            print(result.atomic_stats.describe())
        if result.hit_state_budget:
            print(f"WARNING: state budget ({args.max_states}) exhausted "
                  "— the enumeration is incomplete; raise --max-states")
        for kind, log in outcomes:
            print(f"outcome: {kind}, log={list(log)}")
        for reason, trace in zip(result.ub_reasons, result.ub_traces):
            print(f"undefined behavior: {reason}")
            print(
                "  trace: "
                + (" ; ".join(t.describe() for t in trace)
                   or "<initial>")
            )
        for violation in result.violations:
            print(f"invariant violated: {violation.invariant_name}")
            print(f"  trace: {violation.format_trace()}")
    failed = (
        result.violations or result.has_ub or result.hit_state_budget
    )
    return 1 if failed else 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import analyze_level
    from repro.lang.frontend import check_program

    if (args.file is None) == (args.casestudy is None):
        print("armada analyze: provide a FILE or --casestudy NAME "
              "(not both)", file=sys.stderr)
        return 1
    if args.casestudy is not None:
        from repro.casestudies import ALL, load

        if args.casestudy not in ALL:
            valid = ", ".join(sorted(ALL))
            print(
                f"armada: unknown case study {args.casestudy!r} "
                f"(valid names: {valid})",
                file=sys.stderr,
            )
            return 1
        study = load(args.casestudy)
        source, filename = study.source, f"<{study.name}>"
    else:
        source, filename = _read_source(args.file), args.file
    checked = check_program(source, filename)
    level = args.level or checked.program.levels[0].name
    ctx = checked.contexts.get(level)
    if ctx is None:
        names = ", ".join(l.name for l in checked.program.levels)
        print(f"no level named {level} (levels: {names})",
              file=sys.stderr)
        return 1
    result = analyze_level(
        ctx,
        max_states=args.max_states,
        dynamic=not args.no_dynamic,
        memory_model=args.memory_model,
        compiled=args.compiled,
    )
    report = result.report()
    print(report.to_json() if args.json else report.render_text())
    racy = result.racy()
    if args.expect_racy is not None:
        expected = sorted(
            name for name in args.expect_racy.split(",") if name
        )
        if racy != expected:
            print(
                f"analyze: expected RACY {expected}, got {racy}",
                file=sys.stderr,
            )
            return 1
        return 0
    if args.fail_on_race and racy:
        return 1
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.compiler.cbackend import compile_to_c
    from repro.compiler.pybackend import compile_to_python
    from repro.lang.frontend import check_program

    source = _read_source(args.file)
    checked = check_program(source, args.file)
    level = args.level or checked.program.levels[0].name
    ctx = checked.contexts.get(level)
    if ctx is None:
        print(f"no level named {level}", file=sys.stderr)
        return 1
    if args.backend == "c":
        print(compile_to_c(ctx))
    else:
        print(compile_to_python(ctx, args.backend).source)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.lang.frontend import check_program
    from repro.machine.translator import translate_level
    from repro.runtime.interpreter import run_level

    source = _read_source(args.file)
    checked = check_program(source, args.file)
    level = args.level or checked.program.levels[0].name
    machine = translate_level(checked.contexts[level])
    result = run_level(machine, seed=args.seed, max_steps=args.max_steps)
    print(f"termination: {result.termination_kind} "
          f"after {result.steps_taken} steps")
    print("log:", list(result.log))
    return 0 if result.termination_kind == "normal" else 1


def _cmd_casestudy(args: argparse.Namespace) -> int:
    from repro.casestudies import ALL, load, run_case_study

    if args.name == "all":
        names = list(ALL)
    elif args.name not in ALL:
        valid = ", ".join(sorted(ALL))
        print(
            f"armada: unknown case study {args.name!r} "
            f"(valid names: {valid}, all)",
            file=sys.stderr,
        )
        return 1
    else:
        names = [args.name]
    failed = False
    for name in names:
        study = load(name)
        report = run_case_study(study)
        status = "verified" if report.verified else "FAILED"
        print(
            f"{name}: {status} — impl {study.implementation_sloc} SLOC, "
            f"recipes {report.total_recipe_sloc} SLOC, generated "
            f"{report.total_generated_sloc} SLOC"
        )
        for row in report.rows():
            mark = "ok" if row["verified"] else "FAIL"
            print(
                f"  [{mark}] {row['proof']} ({row['strategy']}): recipe "
                f"{row['recipe_sloc']} SLOC -> {row['generated_sloc']} "
                f"generated, {row['lemmas']} lemmas, {row['seconds']}s"
            )
            if row["error"]:
                print(f"        {row['error']}")
        failed = failed or not report.verified
    return 1 if failed else 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs import TraceError, aggregate_file

    try:
        stats = aggregate_file(args.trace)
    except TraceError as error:
        print(f"armada stats: {error}", file=sys.stderr)
        return 1
    print(stats.to_json() if args.json else stats.render_text())
    return 0


def _cmd_strategies(args: argparse.Namespace) -> int:
    from repro.strategies.registry import available_strategies

    for name in available_strategies():
        print(name)
    return 0


# ---------------------------------------------------------------------------
# verification as a service: armada serve / submit / status / result /
# cancel / serve-stats


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.daemon import ArmadaDaemon, run_daemon

    if args.port is not None and args.socket is not None:
        print("armada serve: --socket and --port are exclusive",
              file=sys.stderr)
        return 1
    daemon = ArmadaDaemon(
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        state_dir=args.state_dir,
        slots=args.slots,
        cache_max_bytes=args.cache_max_bytes,
        farm_jobs=args.jobs,
        farm_mode=args.farm_mode,
    )
    return run_daemon(daemon)


def _serve_client(args: argparse.Namespace):
    """Build a :class:`ServeClient` from the shared connection flags."""
    from repro.serve.client import ServeClient

    if args.port is not None:
        return ServeClient(host=args.host, port=args.port)
    socket_path = args.socket or os.path.join(
        _default_serve_dir(), "armada.sock"
    )
    return ServeClient(socket_path=socket_path)


def _render_verify_result(result: dict) -> None:
    """Print a serve verify result in ``armada verify``'s format."""
    for note in result.get("analysis_notes") or []:
        print(note)
    if result.get("por_summary"):
        print(result["por_summary"])
    for o in result.get("outcomes") or []:
        status = {
            "verified": "verified",
            "inconclusive": "INCONCLUSIVE",
            "failed": "FAILED",
        }.get(o["status"], o["status"])
        cached = " [cached]" if o.get("from_cache") else ""
        print(
            f"{o['proof']} [{o['strategy']}]: {status} "
            f"({o['lemmas']} lemmas, "
            f"{o['generated_sloc']} generated SLOC, "
            f"{o['elapsed_seconds']:.2f}s){cached}"
        )
        if o.get("error"):
            print(f"  {o['error']}")
    if result.get("chain"):
        print("refinement chain:", " -> ".join(result["chain"]))
    elif result.get("chain_error"):
        print(f"chain error: {result['chain_error']}")
    incremental = result.get("incremental")
    if incremental and not incremental.get("first_submission"):
        print(
            f"incremental: {len(incremental['unchanged_levels'])} "
            f"level(s) unchanged, "
            f"{incremental['reused_proofs']} proof(s) reused, "
            f"{incremental['reverified_proofs']} re-verified"
        )


def _print_terminal_result(response: dict, as_json: bool) -> int:
    """Render a terminal job response; exit code mirrors batch mode."""
    import json

    state = response.get("state")
    result = response.get("result") or {}
    if as_json:
        print(json.dumps(response, indent=2, sort_keys=True))
    elif result.get("status") in ("verified", "failed", "inconclusive"):
        _render_verify_result(result)
    else:
        print(json.dumps(result, indent=2, sort_keys=True))
    if state == "error":
        if not as_json:
            print(f"error: {response.get('error')}", file=sys.stderr)
        return 2
    if state == "cancelled":
        if not as_json:
            print("job cancelled", file=sys.stderr)
        return 3
    status = result.get("status")
    if status in ("verified", "analyzed", "explored"):
        return 0
    return 1


def _cmd_submit(args: argparse.Namespace) -> int:
    client = _serve_client(args)
    source = _read_source(args.file)
    options: dict = {
        "max_states": args.max_states,
        "memory_model": args.memory_model,
    }
    if args.kind == "verify":
        options["validate"] = args.validate
        options["analyze"] = args.analyze
        options["por"] = args.por
        options["atomic"] = args.atomic
    else:
        if args.level is not None:
            options["level"] = args.level
        if args.kind == "explore":
            options["por"] = args.por or not (
                args.dpor or args.shard_workers > 1
            )
            options["dpor"] = args.dpor
            options["symmetry"] = args.symmetry
            options["atomic"] = args.atomic
            options["shard_workers"] = args.shard_workers
    job_id = client.submit(
        source,
        kind=args.kind,
        filename=args.file,
        name=args.name or args.file,
        options=options,
    )
    if not args.wait:
        print(job_id)
        return 0
    response = client.result(job_id, wait=True, timeout=args.timeout)
    return _print_terminal_result(response, args.json)


def _cmd_status(args: argparse.Namespace) -> int:
    import json

    client = _serve_client(args)
    status = client.status(args.job)
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        line = f"{status['id']}: {status['state']}"
        if status.get("status"):
            line += f" ({status['status']})"
        runtime = status.get("runtime_seconds")
        if runtime is not None:
            line += f" after {runtime:.2f}s"
        print(line)
        if status.get("error"):
            print(f"  {status['error']}")
    return 0


def _cmd_result(args: argparse.Namespace) -> int:
    client = _serve_client(args)
    response = client.result(
        args.job, wait=args.wait, timeout=args.timeout
    )
    return _print_terminal_result(response, args.json)


def _cmd_cancel(args: argparse.Namespace) -> int:
    client = _serve_client(args)
    status = client.cancel(args.job)
    print(f"{status['id']}: {status['state']} "
          f"(cancel_requested={status['cancel_requested']})")
    return 0


def _cmd_serve_stats(args: argparse.Namespace) -> int:
    import json

    client = _serve_client(args)
    stats = client.stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    cache = stats["cache"]
    print(f"uptime: {stats['uptime_seconds']:.1f}s, "
          f"slots: {stats['slots']}, draining: {stats['draining']}")
    jobs = ", ".join(
        f"{count} {state}"
        for state, count in sorted(stats["jobs"].items())
    ) or "none"
    print(f"jobs: {jobs} ({stats['submitted']} submitted, "
          f"{stats['completed']} completed)")
    cap = (f"{cache['max_bytes']} bytes cap"
           if cache["max_bytes"] is not None else "no cap")
    print(f"proof cache: {cache['entries']} entries, "
          f"{cache['bytes']} bytes ({cap}); "
          f"{cache['hits']} hits, {cache['misses']} misses, "
          f"{cache['evictions']} evicted, "
          f"{cache['quarantined']} quarantined")
    oc = stats["outcome_cache"]
    print(f"outcome cache: {oc['entries']} entries; "
          f"{oc['hits']} hits, {oc['misses']} misses, "
          f"{oc['evictions']} evicted")
    return 0


def _cmd_litmus(args: argparse.Namespace) -> int:
    from repro.memmodel import MODELS
    from repro.memmodel.litmus import CORPUS, check_matrix

    models = tuple(args.model) if args.model else tuple(sorted(MODELS))
    for model in models:
        if model not in MODELS:
            valid = ", ".join(sorted(MODELS))
            print(f"armada: unknown memory model {model!r} "
                  f"(valid: {valid})", file=sys.stderr)
            return 1
    tests = tuple(args.test) if args.test else None
    known = {t.name for t in CORPUS}
    for name in tests or ():
        if name not in known:
            valid = ", ".join(t.name for t in CORPUS)
            print(f"armada: unknown litmus test {name!r} "
                  f"(valid: {valid})", file=sys.stderr)
            return 1
    rows = check_matrix(models=models, tests=tests)
    if args.json:
        import json as _json

        print(_json.dumps(rows, indent=2, sort_keys=True))
    else:
        for row in rows:
            weak = "allowed" if row["weak_observed"] else "forbidden"
            expected = (
                "allowed" if row["weak_expected"] else "forbidden"
            )
            mark = "ok" if row["ok"] else "MISMATCH"
            print(f"{row['test']:<10} {row['model']:<4} "
                  f"weak outcome {weak} (expected {expected}) "
                  f"[{mark}]")
    bad = [row for row in rows if not row["ok"]]
    if bad:
        print(f"litmus: {len(bad)} row(s) deviate from the expected "
              "allowed/forbidden table", file=sys.stderr)
        return 1
    return 0


def _add_memory_model_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--memory-model", choices=("sc", "tso", "ra"), default="tso",
        help="memory model the machine semantics run under "
             "(default: %(default)s; part of every proof-cache key)",
    )


def _add_connection_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--socket", default=None, metavar="PATH",
        help="daemon Unix socket (default: "
             f"{DEFAULT_SERVE_DIR}/armada.sock, or $ARMADA_SERVE_DIR)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="daemon TCP host (with --port)")
    p.add_argument("--port", type=int, default=None,
                   help="daemon TCP port (instead of --socket)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="armada",
        description="Armada reproduction: low-effort verification of "
        "high-performance concurrent programs (PLDI 2020)",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {_version()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="parse and type-check a file")
    p.add_argument("file")
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser("verify", help="run every proof recipe in a file")
    p.add_argument("file")
    p.add_argument("--max-states", type=int, default=200_000)
    _add_memory_model_flag(p)
    p.add_argument(
        "--validate", choices=("auto", "always", "never"), default="auto",
        help="whole-program bounded refinement validation policy",
    )
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="verification farm workers (1 = sequential)",
    )
    p.add_argument(
        "--farm-mode", choices=("auto", "sequential", "thread",
                                "process"),
        default="auto",
        help="worker pool kind; auto picks threads when --jobs > 1",
    )
    p.add_argument(
        "--cache", default=_default_cache_dir(), metavar="DIR",
        help="proof cache directory (default: %(default)s, or "
             "$ARMADA_CACHE_DIR)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="disable the proof cache for this run",
    )
    p.add_argument(
        "--cache-max-bytes", type=int, default=None, metavar="N",
        help="byte budget for the proof cache; exceeding it evicts "
             "least-recently-used entries (default: unbounded)",
    )
    p.add_argument(
        "--farm-report", action="store_true",
        help="print the detailed farm report (cache hits, worker "
             "time, slowest obligations)",
    )
    p.add_argument(
        "--analyze", action="store_true",
        help="run the static race/TSO-robustness analyzer on each "
             "proof's low level: warns about tso_elim recipes naming "
             "racy locations, suggests validated ownership "
             "predicates, and fast-paths provably thread-local "
             "eliminations",
    )
    p.add_argument(
        "--por", action=argparse.BooleanOptionalAction, default=False,
        help="ample-set partial-order reduction for obligation state "
             "sweeps (off by default: obligation predicates may "
             "quantify over private thread state that reduction "
             "elides; the choice is part of the proof-cache key)",
    )
    p.add_argument(
        "--compiled", action=argparse.BooleanOptionalAction, default=True,
        help="compiled step specialization for state sweeps (default: "
             "on; bit-identical to the interpreter — states, UB "
             "reasons and verdicts are unchanged; machines the "
             "specializer does not cover fall back automatically)",
    )
    p.add_argument(
        "--atomic", action=argparse.BooleanOptionalAction, default=False,
        help="regular-to-atomic reduction (sec. 4.2.2): collapse runs "
             "of non-PC-breaking local statements into atomic blocks — "
             "obligation sweeps hide chain-interior states and "
             "consecutive statement lemmas merge into single farm "
             "jobs; verdicts are unchanged; self-disables under "
             "--memory-model ra; part of the proof-cache key",
    )
    p.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record a JSONL span/metric trace of the run "
             "(inspect with 'armada stats FILE')",
    )
    p.add_argument(
        "--obligation-timeout", type=float, default=None,
        metavar="SECONDS",
        help="wall-clock deadline per obligation; expiry yields a "
             "TIMEOUT verdict (inconclusive, not refuted)",
    )
    p.add_argument(
        "--chain-deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the whole chain; on expiry the "
             "remaining obligations go TIMEOUT instead of hanging",
    )
    p.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="re-runs of a transiently failed obligation (worker "
             "death, injected fault) before it is abandoned as "
             "UNKNOWN (default: %(default)s)",
    )
    p.add_argument(
        "--journal", default=None, metavar="FILE",
        help="append settled verdicts to FILE as they land; re-running "
             "with the same journal resumes an interrupted run",
    )
    p.add_argument(
        "--inject-faults", default=None, metavar="PLAN.json",
        help="deterministic chaos: a JSON fault plan (crash_worker, "
             "delay, raise, timeout, corrupt_cache_entry) addressed "
             "by obligation index/label/attempt — testing only",
    )
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "explore",
        help="enumerate a level's reachable states (bounded model "
             "check), optionally checking invariants",
    )
    p.add_argument("file")
    p.add_argument("--level", default=None,
                   help="level to explore (default: first)")
    p.add_argument("--max-states", type=int, default=200_000)
    _add_memory_model_flag(p)
    p.add_argument(
        "--por", action=argparse.BooleanOptionalAction, default=True,
        help="ample-set partial-order reduction (default: on; "
             "outcomes, UB and invariant verdicts over shared state "
             "are identical either way)",
    )
    p.add_argument(
        "--dpor", action="store_true",
        help="dynamic partial-order reduction with sleep sets "
             "(footprints observed at exploration time; supersedes "
             "--por; verdicts, UB reasons and invariant outcomes are "
             "identical to the full fan-out)",
    )
    p.add_argument(
        "--symmetry", action="store_true",
        help="thread-symmetry reduction: canonicalize states over "
             "interchangeable worker threads (composes with --por/"
             "--dpor; verdict-preserving)",
    )
    p.add_argument(
        "--atomic", action=argparse.BooleanOptionalAction, default=False,
        help="regular-to-atomic lift: runs of non-PC-breaking local "
             "steps execute as single atomic actions, hiding interior "
             "states (composes with --por/--dpor/--symmetry; outcomes, "
             "UB reasons and shared-state invariant verdicts are "
             "identical; self-disables under --memory-model ra)",
    )
    p.add_argument(
        "--shard-workers", type=int, default=0, metavar="N",
        help="partition the state space across N forked worker "
             "processes by state hash (full fan-out on every shard; "
             "implies --no-por, rejects --dpor/--symmetry/--atomic; "
             "merged verdicts are identical to single-process "
             "exploration)",
    )
    p.add_argument(
        "--compiled", action=argparse.BooleanOptionalAction, default=True,
        help="compiled step specialization for state sweeps (default: "
             "on; bit-identical to the interpreter — states, UB "
             "reasons and verdicts are unchanged; machines the "
             "specializer does not cover fall back automatically)",
    )
    p.add_argument(
        "--invariant", action="append", default=None, metavar="EXPR",
        help="boolean expression checked at every reachable state "
             "(repeatable); violations print a replayable trace",
    )
    p.add_argument("--json", action="store_true",
                   help="emit the exploration summary as JSON")
    p.set_defaults(func=_cmd_explore)

    p = sub.add_parser(
        "analyze",
        help="classify shared locations (races, lock discipline, TSO "
             "robustness) and suggest tso_elim predicates",
    )
    p.add_argument("file", nargs="?", default=None)
    p.add_argument("--casestudy", default=None, metavar="NAME",
                   help="analyze a built-in case study instead of a "
                        "file")
    p.add_argument("--level", default=None,
                   help="level to analyze (default: first)")
    p.add_argument("--max-states", type=int, default=200_000)
    _add_memory_model_flag(p)
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON")
    p.add_argument(
        "--no-dynamic", action="store_true",
        help="skip the bounded dynamic cross-check (static only)",
    )
    p.add_argument(
        "--compiled", action=argparse.BooleanOptionalAction, default=True,
        help="compiled step specialization for state sweeps (default: "
             "on; bit-identical to the interpreter — states, UB "
             "reasons and verdicts are unchanged; machines the "
             "specializer does not cover fall back automatically)",
    )
    p.add_argument(
        "--fail-on-race", action="store_true",
        help="exit 1 if any location is classified RACY",
    )
    p.add_argument(
        "--expect-racy", default=None, metavar="NAMES",
        help="comma-separated expected RACY set; exit 1 on mismatch "
             "(use '' to assert race-freedom)",
    )
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser(
        "litmus",
        help="run the litmus corpus (SB, MP, LB, IRIW, ...) across "
             "memory models and check the allowed/forbidden table",
    )
    p.add_argument(
        "--model", action="append", default=None,
        choices=("sc", "tso", "ra"), metavar="NAME",
        help="memory model to include (repeatable; default: all)",
    )
    p.add_argument(
        "--test", action="append", default=None, metavar="NAME",
        help="litmus test to include (repeatable; default: the whole "
             "corpus)",
    )
    p.add_argument("--json", action="store_true",
                   help="emit the matrix rows as JSON")
    p.set_defaults(func=_cmd_litmus)

    p = sub.add_parser("compile", help="compile a level")
    p.add_argument("file")
    p.add_argument("--level", default=None)
    p.add_argument(
        "--backend", choices=("c", "sc", "conservative", "tso"),
        default="c",
    )
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser("run", help="execute a level on the reference "
                                   "runtime")
    p.add_argument("file")
    p.add_argument("--level", default=None)
    p.add_argument("--seed", type=int, default=None,
                   help="random scheduler seed (default: round-robin)")
    p.add_argument("--max-steps", type=int, default=1_000_000)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("casestudy", help="verify a paper case study")
    p.add_argument("name", help="tsp|barrier|pointers|mcslock|queue|all")
    p.set_defaults(func=_cmd_casestudy)

    p = sub.add_parser(
        "stats",
        help="summarize a trace recorded by 'armada verify --trace'",
    )
    p.add_argument("trace", help="JSONL trace file")
    p.add_argument("--json", action="store_true",
                   help="emit the summary as JSON")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("strategies", help="list proof strategies")
    p.set_defaults(func=_cmd_strategies)

    p = sub.add_parser(
        "serve",
        help="run the verification-as-a-service daemon (line-delimited "
             "JSON job API over a Unix socket or TCP port)",
    )
    p.add_argument(
        "--socket", default=None, metavar="PATH",
        help="listen on a Unix socket (default: "
             "STATE_DIR/armada.sock)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="TCP bind host (with --port)")
    p.add_argument(
        "--port", type=int, default=None,
        help="listen on a TCP port instead of a Unix socket "
             "(0 picks a free one)",
    )
    p.add_argument(
        "--state-dir", default=_default_serve_dir(), metavar="DIR",
        help="daemon state: shared proof cache, per-program journals, "
             "fingerprint index, pending-job log (default: "
             "%(default)s, or $ARMADA_SERVE_DIR)",
    )
    p.add_argument(
        "--slots", type=int, default=2, metavar="N",
        help="jobs run concurrently (default: %(default)s)",
    )
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="farm workers per job (default: %(default)s)",
    )
    p.add_argument(
        "--farm-mode", choices=("auto", "sequential", "thread",
                                "process"),
        default="auto",
        help="worker pool kind for each job's farm",
    )
    p.add_argument(
        "--cache-max-bytes", type=int, default=None, metavar="N",
        help="byte budget for the shared proof cache (LRU eviction; "
             "default: unbounded)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit a job to a running armada serve daemon",
    )
    p.add_argument("file")
    _add_connection_flags(p)
    p.add_argument(
        "--kind", choices=("verify", "analyze", "explore"),
        default="verify",
    )
    p.add_argument(
        "--name", default=None, metavar="NAME",
        help="tenant-visible program identity for incremental "
             "fingerprint diffing (default: the file path)",
    )
    p.add_argument("--max-states", type=int, default=200_000)
    _add_memory_model_flag(p)
    p.add_argument(
        "--validate", choices=("auto", "always", "never"),
        default="auto",
        help="whole-program refinement validation policy (verify)",
    )
    p.add_argument("--analyze", action="store_true",
                   help="run the static analyzer alongside (verify)")
    p.add_argument("--por", action="store_true",
                   help="partial-order reduction for state sweeps")
    p.add_argument("--dpor", action="store_true",
                   help="dynamic partial-order reduction (explore)")
    p.add_argument("--symmetry", action="store_true",
                   help="thread-symmetry reduction (explore)")
    p.add_argument("--atomic", action="store_true",
                   help="regular-to-atomic reduction (verify and "
                        "explore)")
    p.add_argument("--shard-workers", type=int, default=0, metavar="N",
                   help="sharded multi-process exploration (explore)")
    p.add_argument("--level", default=None,
                   help="level to analyze/explore (default: first)")
    p.add_argument(
        "--wait", action="store_true",
        help="block until the job settles and print its result "
             "(exit code mirrors batch 'armada verify')",
    )
    p.add_argument("--timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="bound --wait")
    p.add_argument("--json", action="store_true",
                   help="print the raw result JSON (with --wait)")
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser("status", help="show a submitted job's state")
    p.add_argument("job", help="job id returned by submit")
    _add_connection_flags(p)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_status)

    p = sub.add_parser(
        "result", help="fetch a submitted job's result"
    )
    p.add_argument("job", help="job id returned by submit")
    _add_connection_flags(p)
    p.add_argument(
        "--wait", action=argparse.BooleanOptionalAction, default=True,
        help="block until the job settles (default: wait)",
    )
    p.add_argument("--timeout", type=float, default=None,
                   metavar="SECONDS")
    p.add_argument("--json", action="store_true",
                   help="print the raw result JSON")
    p.set_defaults(func=_cmd_result)

    p = sub.add_parser(
        "cancel",
        help="cancel a submitted job (queued: never starts; running: "
             "its farm drains)",
    )
    p.add_argument("job", help="job id returned by submit")
    _add_connection_flags(p)
    p.set_defaults(func=_cmd_cancel)

    p = sub.add_parser(
        "serve-stats",
        help="daemon-wide counters: jobs by state, shared-cache "
             "hit/miss/eviction numbers, outcome-cache reuse",
    )
    _add_connection_flags(p)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_serve_stats)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    try:
        # argparse exits for --version/--help and usage errors; keep
        # main() returning an int for programmatic callers.
        args = parser.parse_args(argv)
    except SystemExit as error:
        return error.code if isinstance(error.code, int) else 1
    try:
        return args.func(args)
    except SystemExit as error:
        # _read_source reports unreadable files and exits 1; keep main()
        # returning an int for programmatic callers.
        return error.code if isinstance(error.code, int) else 1
    except ArmadaError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Piping into head/less closes stdout early; that is not an
        # error.  Detach stdout so the interpreter's shutdown flush
        # does not traceback either.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
