"""Regular-to-atomic state-space lift (SNIPPETS.md: F* RegularToAtomic).

Armada's experimental ``Strategies.RegularToAtomic`` collapses runs of
non-*PC-breaking* statements into single atomic actions: a program
counter is *breaking* when the step there is visible to other threads
(shared reads/writes under the active memory model, fences, RMWs, lock
operations, thread create/join, output), nondeterministic, a loop head,
or a method entry (``armada_created_threads_initially_breaking``).
Everything between two breaking PCs executes as one indivisible action.

This module is the exploration-side half of that transformation: a
:class:`AtomicLift` extends each explored transition whose firing
thread lands on a non-breaking PC by running that thread's (unique,
deterministic) local steps until it reaches the next breaking PC.  The
intermediate ("hidden") states are never admitted to the seen set, so
the sweep visits strictly fewer states while preserving every verdict.

Soundness (see DESIGN.md "Regular-to-atomic" for the full argument):

* A *chainable* step is an ``Assign``/``Branch``/``Assume`` step that
  the POR independence facts classify as local
  (:func:`repro.analysis.independence.step_independence`) **and** that
  performs **zero** shared-memory writes per the analyzer's access map.
  Such a step commutes in both directions with every transition of
  every other thread, and a hidden state differs from its chain end
  only in the chained thread's PC and registers — shared memory,
  ghosts, buffers and logs are bit-identical, so invariants over
  shared state cannot distinguish them.
* Chaining is exactly the ample-set rule instantiated with a singleton
  provably-independent deterministic step; the cycle proviso (C3) is
  discharged by classifying every loop head as breaking: any cycle
  must pass a breaking PC, where the full fan-out happens.
* A chain ends early — which is always sound, it merely exposes an
  intermediate state — whenever the step is blocked (a false
  ``assume``: deadlock parity), more than one step is enabled, the
  program terminated (UB surfaces exactly where the full sweep puts
  it), or the ``MAX_CHAIN`` safety bound trips.

Memory models whose environment moves the independence argument does
not cover (C11 RA) disable the classification wholesale, as do levels
whose footprint extraction fails: :func:`classify_atomic` then reports
a ``disabled`` reason and the explorer falls back to the plain sweep.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.machine.program import Transition
from repro.machine.state import ProgramState, UBSignal
from repro.machine.steps import AssignStep, AssumeStep, BranchStep, Step

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.program import StateMachine


@dataclass(frozen=True)
class MacroTransition:
    """One atomic action: a base transition plus the chained local
    steps of the same thread.  Stored in the explorer's parent map;
    :func:`repro.explore.explorer._trace_to` flattens it back into its
    micro :class:`Transition` list, so recorded traces replay on any
    fresh machine with the ordinary ``next_state``."""

    tid: int
    micro: tuple[Transition, ...]

    @property
    def is_drain(self) -> bool:
        return False

    def describe(self) -> str:
        first = self.micro[0]
        inner = first.describe()
        return f"t{self.tid}:atomic[{len(self.micro)}]({inner}...)"


@dataclass(frozen=True)
class AtomicClassification:
    """Per-PC breaking verdicts for one machine.

    ``breaking`` maps every PC to its verdict; ``reasons`` records why
    each breaking PC breaks (tests and ``describe`` want the
    explanation, not just the bit); ``chain_pcs`` is the non-breaking
    complement the lift consults on the hot path.  ``disabled`` is the
    reason the whole classification is unavailable (RA model, footprint
    extraction failure) — conservative self-disable, never a guess."""

    breaking: dict[str, bool] = field(default_factory=dict)
    reasons: dict[str, str] = field(default_factory=dict)
    chain_pcs: frozenset[str] = frozenset()
    loop_heads: frozenset[str] = frozenset()
    disabled: str | None = None

    @property
    def enabled(self) -> bool:
        return self.disabled is None and bool(self.chain_pcs)

    def describe(self) -> str:
        if self.disabled is not None:
            return f"atomic lift disabled: {self.disabled}"
        total = len(self.breaking)
        return (
            f"atomic: {len(self.chain_pcs)}/{total} pcs non-breaking"
        )


@dataclass
class AtomicStats:
    """Counters for one lift's activity."""

    chains: int = 0
    micro_absorbed: int = 0

    def describe(self) -> str:
        return (
            f"atomic: {self.chains} chains absorbed "
            f"{self.micro_absorbed} micro-steps"
        )


def step_breaking_reason(
    step: Step, facts, access_map
) -> str | None:
    """Why *step* must end an atomic block (``None`` = chainable).

    The rule is strictly narrower than POR locality: a local step may
    still write a *private* global (invisible to other threads but
    visible to invariant predicates over shared state), so chainable
    steps additionally require an empty write footprint.
    """
    if not isinstance(step, (AssignStep, BranchStep, AssumeStep)):
        return f"{type(step).__name__} is thread-visible"
    if id(step) not in facts.local_step_ids:
        return "not provably independent of other threads"
    if step.nondet_vars():
        return "encapsulated nondeterminism"
    if isinstance(step, BranchStep) and step.cond is None:
        return "nondeterministic guard"
    for access in access_map.step_accesses(step):
        if access.kind == "write":
            return f"shared write to {access.location}"
    return None


def _loop_heads(machine: "StateMachine") -> frozenset[str]:
    """PCs that are targets of back edges (``target.index <=
    source.index`` within one method) — the F* snippet's loop heads,
    which must break so every cycle crosses a breaking PC."""
    heads: set[str] = set()
    pcs = machine.pcs
    for pc, steps in machine.steps_by_pc.items():
        source = pcs.get(pc)
        if source is None:
            continue
        for step in steps:
            target = pcs.get(step.target) if step.target else None
            if (
                target is not None
                and target.method == source.method
                and target.index <= source.index
            ):
                heads.add(step.target)
    return frozenset(heads)


def _classify(machine: "StateMachine") -> AtomicClassification:
    memmodel = getattr(machine, "memmodel", None)
    if memmodel is not None and not memmodel.supports_por:
        return AtomicClassification(
            disabled=(
                f"memory model {memmodel.name} does not support the "
                "atomic lift"
            ),
        )
    ctx = getattr(machine, "ctx", None)
    if ctx is None:
        return AtomicClassification(
            disabled="machine exposes no level context"
        )
    try:
        from repro.analysis.accesses import extract_accesses
        from repro.analysis.independence import step_independence

        access_map = extract_accesses(ctx, machine)
        facts = step_independence(ctx, machine, access_map)
    except Exception as error:
        # Any PC whose classification is unknown must be breaking; if
        # the footprint extraction fails outright, every PC is unknown
        # and the lift self-disables.
        return AtomicClassification(
            disabled=f"classification unavailable: {error}"
        )

    loop_heads = _loop_heads(machine)
    entries = set(machine.method_entry.values())
    breaking: dict[str, bool] = {}
    reasons: dict[str, str] = {}
    for pc in machine.pcs:
        steps = machine.steps_by_pc.get(pc, [])
        reason: str | None = None
        if not steps:
            reason = "terminal pc (no steps)"
        elif not machine.pcs[pc].yieldable:
            reason = "inside an explicit atomic region"
        elif pc in entries:
            reason = "method entry (created threads start breaking)"
        elif pc in loop_heads:
            reason = "loop head (cycle proviso)"
        else:
            for step in steps:
                reason = step_breaking_reason(step, facts, access_map)
                if reason is not None:
                    break
        breaking[pc] = reason is not None
        if reason is not None:
            reasons[pc] = reason
    return AtomicClassification(
        breaking=breaking,
        reasons=reasons,
        chain_pcs=frozenset(
            pc for pc, broke in breaking.items() if not broke
        ),
        loop_heads=loop_heads,
    )


#: Classification is a whole-machine static analysis; cache it per
#: machine so repeated Explorer constructions (one per obligation
#: sweep) pay for it once.  Mirrors ``por._FACTS_CACHE``.
_CLASS_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def classify_atomic(machine: "StateMachine") -> AtomicClassification:
    """The (cached) breaking/non-breaking classification of *machine*."""
    try:
        cached = _CLASS_CACHE.get(machine)
    except TypeError:  # unweakrefable stand-ins in tests
        cached = None
    if cached is not None:
        return cached
    result = _classify(machine)
    try:
        _CLASS_CACHE[machine] = result
    except TypeError:
        pass
    return result


class AtomicLift:
    """Extends explored transitions through non-breaking PCs.

    ``chain(tr, nxt)`` returns the transition/successor pair to admit:
    either the inputs unchanged, or a :class:`MacroTransition` whose
    end state has the firing thread parked on a breaking PC (or
    blocked, ambiguous, terminated — see the module docstring)."""

    #: Safety bound on chain length.  Loop heads are breaking, so a
    #: well-classified machine can never hit it; it turns a classifier
    #: bug into a shorter chain (sound) instead of a hang.
    MAX_CHAIN = 128

    def __init__(
        self,
        machine: "StateMachine",
        classification: AtomicClassification | None = None,
    ) -> None:
        self.machine = machine
        self.classification = (
            classification if classification is not None
            else classify_atomic(machine)
        )
        self.stats = AtomicStats()

    def chain(
        self, tr: Transition, nxt: ProgramState
    ) -> tuple[Transition | MacroTransition, ProgramState]:
        chain_pcs = self.classification.chain_pcs
        if tr.is_drain or not chain_pcs or nxt.termination is not None:
            return tr, nxt
        machine = self.machine
        tid = tr.tid
        micro = [tr]
        cur = nxt
        while len(micro) <= self.MAX_CHAIN:
            thread = cur.threads.get(tid)
            if thread is None or thread.pc is None:
                break
            pc = thread.pc
            if pc not in chain_pcs:
                break
            if cur.atomic_owner not in (None, tid):
                break  # pragma: no cover - chained pcs are yieldable
            chosen: Step | None = None
            ambiguous = False
            for step in machine.steps_at(pc):
                try:
                    ok = step.enabled(machine, cur, tid, {})
                except UBSignal:
                    ok = True  # UB is not blocking; it fires and crashes
                if not ok:
                    continue
                if chosen is not None:
                    ambiguous = True
                    break
                chosen = step
            if chosen is None or ambiguous:
                # Blocked (assume) or more than one continuation: the
                # state stays visible, exactly like the full sweep.
                break
            step_tr = Transition(tid, chosen, ())
            cur = machine.next_state(cur, step_tr)
            micro.append(step_tr)
            if cur.termination is not None:
                break
        if len(micro) == 1:
            return tr, nxt
        self.stats.chains += 1
        self.stats.micro_absorbed += len(micro) - 1
        return MacroTransition(tid=tid, micro=tuple(micro)), cur
