"""Explicit-state bounded model checking: exploration, invariants,
and refinement (simulation) checking."""

from repro.explore.explorer import (  # noqa: F401
    ExplorationResult,
    Explorer,
    InvariantViolation,
    final_logs,
)
from repro.explore.refinement_check import (  # noqa: F401
    RefinementResult,
    check_refinement,
    log_equal_relation,
    log_prefix_relation,
    with_ub_conjunct,
)
