"""Explicit-state bounded model checking: exploration, invariants,
partial-order reduction (static and dynamic), symmetry reduction,
sharded parallel exploration, and refinement (simulation) checking."""

from repro.errors import StateBudgetExceeded  # noqa: F401
from repro.explore.atomic import (  # noqa: F401
    AtomicClassification,
    AtomicLift,
    AtomicStats,
    MacroTransition,
    classify_atomic,
)
from repro.explore.dpor import (  # noqa: F401
    DynamicReducer,
    SleepSets,
    transition_key,
)
from repro.explore.explorer import (  # noqa: F401
    ExplorationResult,
    Explorer,
    InvariantViolation,
    canonical_replay,
    final_logs,
)
from repro.explore.por import AmpleReducer, PorStats  # noqa: F401
from repro.explore.sharded import ShardedExplorer  # noqa: F401
from repro.explore.symmetry import SymmetryReducer  # noqa: F401
from repro.explore.refinement_check import (  # noqa: F401
    RefinementCounterexample,
    RefinementResult,
    check_refinement,
    log_equal_relation,
    log_prefix_relation,
    with_ub_conjunct,
)
