"""Thread-symmetry reduction: canonicalize interchangeable threads.

Two states that differ only by a permutation of *indistinguishable*
worker threads generate permutation-isomorphic futures: every outcome,
UB reason, log, and invariant over shared state reachable from one is
reachable from the other.  Folding each such orbit into one canonical
representative before interning can shrink the explored space by up to
``k!`` for ``k`` interchangeable workers.

Renaming a thread is only an isomorphism when nothing in the state can
*name* it or its stack.  The reducer therefore enforces, conservatively:

* **No ``$me``** anywhere in the machine's steps.  ``$me`` evaluates to
  the firing thread's tid, so a renamed thread would observe a
  different value (machine-wide static check; disables the reducer).
* **No address-taken locals** in any method
  (``machine.memory_locals``).  Frame serials then appear *only* in the
  inert ``Frame.serial`` label — no pointer, memory root, or allocation
  entry can reference a stack frame — so serials can be relabeled along
  with the permutation (machine-wide static check).
* **No tid value in program data.**  Join handles
  (``h := create_thread ...``) store the spawned tid into a variable;
  renaming that thread would break the later ``join h``.  Scanned per
  state: any candidate tid found as an integer anywhere in memory,
  ghosts, the log, locals, or store buffers is pinned (exact ``int``
  scan; ``bool`` excluded since ``True == 1``).
* The **main thread** (tid 1 — program exit is tied to it) and the
  current ``atomic_owner`` are always pinned.

Candidates are grouped by *shape* (pc + frame-method stack); a group of
``k >= 2`` unpinned same-shape threads is sorted by a deterministic
*structural key* over its masked content (type-tagged tuples, not
``hash()`` — stable across forked worker processes), then reassigned
the group's own sorted tids and sorted frame serials in that order.
Isomorphic states sort their matching threads identically, so they
rebuild the same representative.

Interaction with traces: the explorer expands canonical representatives
only, so recorded parent transitions are valid at their (canonical)
source state; replaying a trace requires re-canonicalizing after each
step (``repro.explore`` exposes ``canonical_replay``).  The case
studies spawn a single worker whose handle is joined, so symmetry
no-ops there (shape groups of one) — it pays off on fire-and-forget
worker pools, and the shape precheck keeps the no-op cheap.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from repro.lang import asts as ast
from repro.machine.pmap import PMap
from repro.machine.program import StateMachine
from repro.machine.state import ProgramState, ThreadState
from repro.machine.values import CompositeValue, Location, Pointer
from repro.obs import OBS


def _machine_mentions_me(machine: StateMachine) -> bool:
    for step in machine.all_steps():
        exprs = list(step.reads_exprs())
        spec = getattr(step, "spec", None)
        if spec is not None:
            for attr in ("requires", "ensures", "modifies"):
                exprs.extend(getattr(spec, attr, ()) or ())
        for expr in exprs:
            if expr is None:
                continue
            for node in ast.walk_expr(expr):
                if isinstance(node, ast.MetaVar) and node.name == "me":
                    return True
    return False


class SymmetryReducer:
    """Per-machine canonicalizer over interchangeable worker threads."""

    def __init__(self, machine: StateMachine) -> None:
        self.machine = machine
        self.disabled_reason: str | None = None
        memmodel = getattr(machine, "memmodel", None)
        if memmodel is not None and not memmodel.supports_por:
            self.disabled_reason = (
                f"memory model {memmodel.name} does not support reductions"
            )
        elif any(machine.memory_locals.values()):
            self.disabled_reason = (
                "address-taken locals pin stack frames"
            )
        elif _machine_mentions_me(machine):
            self.disabled_reason = "$me exposes thread identity"
        #: States actually rewritten to a different representative.
        self.canonicalized = 0

    @property
    def enabled(self) -> bool:
        return self.disabled_reason is None

    # ------------------------------------------------------------------

    def canonical(self, state: ProgramState) -> ProgramState:
        """The canonical representative of *state*'s symmetry orbit
        (*state* itself when no group of interchangeable threads
        exists)."""
        if self.disabled_reason is not None:
            return state
        threads = state.threads
        if len(threads) < 3:  # main + at most one worker: nothing to permute
            return state
        groups: dict[tuple, list[int]] = {}
        for tid, thread in threads.items():
            if tid == 1 or tid == state.atomic_owner:
                continue
            shape = (thread.pc, tuple(f.method for f in thread.frames))
            groups.setdefault(shape, []).append(tid)
        groups = {s: ts for s, ts in groups.items() if len(ts) >= 2}
        if not groups:
            return state

        candidate = set()
        for ts in groups.values():
            candidate.update(ts)
        pinned = self._data_tids(state, candidate)
        if pinned:
            groups = {
                s: kept for s, ts in groups.items()
                if len(kept := [t for t in ts if t not in pinned]) >= 2
            }
            if not groups:
                return state

        new_threads: dict[int, ThreadState] = {}
        for tids in groups.values():
            members = sorted(
                tids, key=lambda t: _thread_key(threads[t])
            )
            serials = sorted(
                f.serial for t in members for f in threads[t].frames
            )
            si = 0
            for new_tid, old_tid in zip(sorted(tids), members):
                thread = threads[old_tid]
                frames = []
                changed = new_tid != old_tid
                for frame in thread.frames:
                    ns = serials[si]
                    si += 1
                    if ns != frame.serial:
                        frame = replace(frame, serial=ns)
                        changed = True
                    frames.append(frame)
                if changed:
                    thread = replace(
                        thread, tid=new_tid, frames=tuple(frames)
                    )
                    new_threads[new_tid] = thread
        if not new_threads:
            return state
        items = dict(threads.items())
        for tids in groups.values():
            for t in tids:
                items.pop(t, None)
        for tid, thread in new_threads.items():
            items[tid] = thread
        # Unchanged group members were popped and must be restored under
        # their (identical) tids.
        for tid in set().union(*map(set, groups.values())):
            if tid not in items:
                items[tid] = threads[tid]
        self.canonicalized += 1
        if OBS.enabled:
            OBS.count("symmetry.canonicalized")
        return replace(state, threads=PMap(items))

    # ------------------------------------------------------------------

    def _data_tids(
        self, state: ProgramState, candidate: set[int]
    ) -> set[int]:
        """Candidate tids stored as integers anywhere in program data."""
        found: set[int] = set()

        def scan(value: Any) -> None:
            if type(value) is int:
                if value in candidate:
                    found.add(value)
            elif isinstance(value, CompositeValue):
                for child in value.children:
                    scan(child)
            elif isinstance(value, (tuple, list, frozenset)):
                for child in value:
                    scan(child)

        for value in state.memory.values():
            scan(value)
        for value in state.ghosts.values():
            scan(value)
        for entry in state.log:
            scan(entry)
        for thread in state.threads.values():
            for frame in thread.frames:
                for value in frame.locals.values():
                    scan(value)
            for _loc, value in thread.store_buffer:
                scan(value)
        return found


# ---------------------------------------------------------------------------
# Structural ordering keys.  Deliberately not hash()-based: string hashes
# are randomized per process, and sharded workers must sort identically.


def _thread_key(thread: ThreadState) -> tuple:
    return (
        thread.pc or "",
        tuple(
            (f.method, _pmap_key(f.locals), f.return_pc or "",
             _value_key(f.return_lhs_key))
            for f in thread.frames
        ),
        tuple(
            (_location_key(loc), _value_key(v))
            for loc, v in thread.store_buffer
        ),
    )


def _pmap_key(m: PMap) -> tuple:
    return tuple(sorted(
        (str(k), _value_key(v)) for k, v in m.items()
    ))


def _location_key(location: Location) -> tuple:
    root = location.root
    return (root.kind, root.name, root.serial, location.path)


def _value_key(value: Any) -> tuple:
    if value is None:
        return ("n",)
    if type(value) is bool:
        return ("b", value)
    if type(value) is int:
        return ("i", value)
    if type(value) is str:
        return ("s", value)
    if isinstance(value, Pointer):
        return ("p", _location_key(value.location))
    if isinstance(value, CompositeValue):
        return ("c", tuple(_value_key(c) for c in value.children))
    if isinstance(value, tuple):
        return ("t", tuple(_value_key(c) for c in value))
    if isinstance(value, frozenset):
        return ("fs", tuple(sorted(_value_key(c) for c in value)))
    if isinstance(value, PMap):
        return ("m", _pmap_key(value))
    return ("r", type(value).__name__, repr(value))
