"""Refinement (simulation) checking between two state machines.

Implements the paper's refinement notion (§3.1.3): "An implementation
refines the specification if every finite behavior of the implementation
may, with the addition of stuttering steps, simulate a finite behavior
of the specification where corresponding state pairs are in R."

The check is the classical subset construction for stuttering trace
inclusion over finite systems: we pair each reachable low-level state
with the *set* of high-level states it might correspond to.  On each
low-level transition, the high-level set is advanced through its
bounded stutter closure and filtered by R; an empty set is a refinement
counterexample.

R is automatically strengthened with the undefined-behaviour conjunct of
§3.2.3: "if the low-level program exhibits undefined behavior, then the
high-level program does."
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.machine.program import StateMachine
from repro.machine.state import ProgramState, TERM_UB

#: A refinement relation: R(low_state, high_state) -> bool.
RefinementRelation = Callable[[ProgramState, ProgramState], bool]


def log_prefix_relation(low: ProgramState, high: ProgramState) -> bool:
    """The default R: the low-level console log is a prefix of the
    high-level one while running, and equal at normal termination
    (the paper's running-example relation, §2)."""
    if low.termination is not None and low.termination.kind == "normal":
        if not (high.termination is not None
                and high.termination.kind == "normal"):
            return False
        return low.log == high.log
    n = len(low.log)
    return high.log[:n] == low.log or low.log[: len(high.log)] == high.log


def log_equal_relation(low: ProgramState, high: ProgramState) -> bool:
    """A stricter R: logs agree exactly at every corresponding pair."""
    return low.log == high.log


def with_ub_conjunct(relation: RefinementRelation) -> RefinementRelation:
    """Strengthen R with the automatic UB conjunct (§3.2.3)."""

    def strengthened(low: ProgramState, high: ProgramState) -> bool:
        low_ub = (
            low.termination is not None and low.termination.kind == TERM_UB
        )
        if low_ub:
            high_ub = (
                high.termination is not None
                and high.termination.kind == TERM_UB
            )
            if not high_ub:
                return False
            return True
        return relation(low, high)

    return strengthened


@dataclass
class RefinementCounterexample:
    low_state: ProgramState
    description: str
    #: The low-level transition sequence from the initial state to the
    #: unsimulatable step (inclusive), for diagnosis.
    trace: tuple = ()

    def format_trace(self) -> str:
        if not self.trace:
            return "(no trace)"
        return " ; ".join(t.describe() for t in self.trace)


@dataclass
class RefinementResult:
    holds: bool
    product_states: int = 0
    counterexample: RefinementCounterexample | None = None
    hit_budget: bool = False

    def __bool__(self) -> bool:
        return self.holds


def _stutter_closure(
    machine: StateMachine,
    states: frozenset[ProgramState],
    max_stutter: int,
) -> frozenset[ProgramState]:
    """All states reachable from *states* in at most *max_stutter*
    high-level steps (including zero)."""
    closure = set(states)
    frontier = list(states)
    for _ in range(max_stutter):
        new_frontier = []
        for state in frontier:
            if state.termination is not None:
                continue
            for transition in machine.enabled_transitions(state):
                nxt = machine.next_state(state, transition)
                if nxt not in closure:
                    closure.add(nxt)
                    new_frontier.append(nxt)
        if not new_frontier:
            break
        frontier = new_frontier
    return frozenset(closure)


def check_refinement(
    low: StateMachine,
    high: StateMachine,
    relation: RefinementRelation | None = None,
    max_stutter: int = 8,
    max_product_states: int = 1_000_000,
) -> RefinementResult:
    """Check that *low* refines *high* under *relation* (default: the
    log-prefix relation), with the UB conjunct added automatically."""
    base = relation if relation is not None else log_prefix_relation
    R = with_ub_conjunct(base)

    low_init = low.initial_state()
    high_init = high.initial_state()
    high_universe = _stutter_closure(
        high, frozenset([high_init]), max_stutter
    )
    initial_set = frozenset(h for h in high_universe if R(low_init, h))
    if not initial_set:
        return RefinementResult(
            holds=False,
            counterexample=RefinementCounterexample(
                low_init, "initial states are not related by R"
            ),
        )

    # BFS over the product (low state, high-state set), with parent
    # pointers instead of per-entry trace tuples: the first path to any
    # product state is a shortest one, so counterexample traces are
    # minimal, and trace storage is O(states), not O(states * depth).
    init_key = (low_init, initial_set)
    parents: dict[tuple, tuple[tuple, object] | None] = {init_key: None}
    frontier: deque[tuple[ProgramState, frozenset]] = deque((init_key,))
    product_states = 0

    while frontier:
        key = frontier.popleft()
        low_state, high_set = key
        product_states += 1
        if low_state.termination is not None:
            continue
        for transition in low.enabled_transitions(low_state):
            next_low = low.next_state(low_state, transition)
            closure = _stutter_closure(high, high_set, max_stutter)
            next_high = frozenset(
                h for h in closure if R(next_low, h)
            )
            if not next_high:
                return RefinementResult(
                    holds=False,
                    product_states=product_states,
                    counterexample=RefinementCounterexample(
                        next_low,
                        "no high-level state simulates low-level "
                        f"transition {transition.describe()}",
                        _product_trace(parents, key) + (transition,),
                    ),
                )
            next_key = (next_low, next_high)
            if next_key in parents:
                continue
            if len(parents) >= max_product_states:
                # Honest truncation: the budget is a hard bound on the
                # number of admitted product states, and hitting it is
                # always reported as a failed (inconclusive) check.
                return RefinementResult(
                    holds=False,
                    product_states=product_states,
                    hit_budget=True,
                    counterexample=RefinementCounterexample(
                        next_low,
                        "product state budget exhausted",
                        _product_trace(parents, key) + (transition,),
                    ),
                )
            parents[next_key] = (key, transition)
            frontier.append(next_key)
    return RefinementResult(holds=True, product_states=product_states)


def _product_trace(parents: dict, key: tuple) -> tuple:
    """Low-level transitions from the initial product state to *key*."""
    trace = []
    current = key
    while True:
        entry = parents[current]
        if entry is None:
            break
        current, transition = entry
        trace.append(transition)
    trace.reverse()
    return tuple(trace)
