"""Ample-set partial-order reduction for the explicit-state explorer.

Naive exploration enumerates every interleaving of every thread, but
most of those interleavings only permute steps that cannot observe each
other.  The classical remedy is an *ample set* (Peled): at a state where
some thread's next moves are provably independent of everything the
other threads can do, explore only that thread and discard the sibling
interleavings — every pruned path is Mazurkiewicz-equivalent to a
retained one, so final outcomes, termination kinds, logs, deadlocks and
every property over non-private shared state are preserved exactly.

The reducer combines a **static** filter with a **dynamic** guard:

* Statically (:func:`repro.analysis.independence.step_independence`), a
  step qualifies only if its effects are confined to the firing thread's
  private pc/locals/buffer and *private globals* (locations only that
  thread can ever touch), and its reads cannot be influenced by any
  other thread (see that module for the TSO argument).  Store-buffer
  drains qualify when the drained entry targets a private global.
* Dynamically, before pruning at a concrete state, every transition of
  the candidate thread is executed and its successor checked to confirm
  the static promise — shared memory, ghosts, allocation, the log, the
  termination status, the atomic-region owner, the scheduler counters
  and every *other* thread must be bit-identical, the candidate must
  not terminate (a join elsewhere could observe that), and its store
  buffer may only have appended entries for private globals.

The four ample-set conditions map onto this as follows:

* **C0** (nonempty): an empty candidate set falls back to full
  expansion.
* **C1** (dependence): other threads' transitions are independent of
  the candidate's by the static argument; the candidate thread's *own*
  alternative steps all sit in the ample set because we require every
  step at its pc to be statically local — a disabled local twin (e.g.
  the false branch) has a guard over other-thread-unwritable data, so
  no other thread can enable it behind our back.  Pending drains are in
  the ample set too (the whole buffer must be private).
* **C2** (invisibility): the dynamic guard rejects any successor that
  changes the log or terminates.
* **C3** (cycle proviso): pruning is only allowed when every ample
  successor is a *new* state (not yet in the explorer's seen set), so
  an enabled-but-pruned transition can never be postponed around a
  cycle forever.

The reduction is sound for every property another thread or the
environment can observe — final outcomes, UB reasons, assert failures,
deadlocks, and invariants over multithreaded shared state.  It can hide
intermediate *private* configurations (a pruned sibling differs only in
the candidate thread's pc/locals/buffer and its private globals), so it
is **off by default** in the proof engine, whose obligation predicates
may inspect exactly such private state mid-stride (``--por`` opts in).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Container

from repro.machine.program import StateMachine, Transition
from repro.machine.state import ProgramState
from repro.obs import OBS

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.independence import IndependenceFacts


#: Machine -> IndependenceFacts, shared across reducer instances so a
#: fresh ``Explorer(machine, por=True)`` does not redo the static
#: analysis (that recomputation is what made POR lose wall-time to full
#: expansion on small graphs like barrier/BarrierImpl).
_FACTS_CACHE: "weakref.WeakKeyDictionary[StateMachine, IndependenceFacts]"
_FACTS_CACHE = weakref.WeakKeyDictionary()


@dataclass
class PorStats:
    """How much the reduction actually pruned during one exploration."""

    ample_states: int = 0  #: states expanded via a singleton-thread ample set
    full_states: int = 0  #: states that needed the full fan-out
    transitions_pruned: int = 0  #: enabled transitions not explored
    #: Ample states admitted by the dynamic buffered-write rule
    #: specifically (:class:`repro.explore.dpor.DynamicReducer`).
    dynamic_states: int = 0
    #: Enabled transitions skipped because they were asleep.
    sleep_pruned: int = 0
    #: Successor states folded into a symmetric representative.
    symmetry_merged: int = 0

    def describe(self) -> str:
        total = self.ample_states + self.full_states
        text = (
            f"POR: {self.ample_states}/{total} states reduced, "
            f"{self.transitions_pruned} transitions pruned"
        )
        if self.dynamic_states:
            text += f", {self.dynamic_states} via dynamic rule"
        if self.sleep_pruned:
            text += f", {self.sleep_pruned} slept"
        if self.symmetry_merged:
            text += f", {self.symmetry_merged} symmetry-merged"
        return text

    def merge(self, other: "PorStats") -> None:
        self.ample_states += other.ample_states
        self.full_states += other.full_states
        self.transitions_pruned += other.transitions_pruned
        self.dynamic_states += other.dynamic_states
        self.sleep_pruned += other.sleep_pruned
        self.symmetry_merged += other.symmetry_merged


class AmpleReducer:
    """Per-machine ample-set selector.

    One reducer instance serves every exploration of one machine: the
    static independence facts are computed once, lazily, on first use.
    """

    def __init__(
        self,
        machine: StateMachine,
        facts: "IndependenceFacts | None" = None,
    ) -> None:
        self.machine = machine
        self._facts = facts
        self.stats = PorStats()
        #: pc -> whether *every* step at that pc is statically local
        #: (the per-(statement, footprint) classification, amortized
        #: across states — the answer only depends on the pc).
        self._pc_local: dict[str | None, bool] = {None: True}

    @property
    def facts(self) -> "IndependenceFacts":
        if self._facts is None:
            cached = _FACTS_CACHE.get(self.machine)
            if cached is not None:
                self._facts = cached
                return cached
            # Deferred: repro.analysis reaches back into the strategy
            # layer, which imports repro.explore.
            from repro.analysis.independence import step_independence

            self._facts = step_independence(self.machine.ctx, self.machine)
            try:
                _FACTS_CACHE[self.machine] = self._facts
            except TypeError:  # unweakrefable machine stand-in (tests)
                pass
        return self._facts

    def _pc_all_local(self, pc: str | None) -> bool:
        cached = self._pc_local.get(pc)
        if cached is None:
            # Every step at this pc — enabled or not — must be local,
            # or a concurrently-enabled dependent twin could be missed
            # (C1).
            local_ids = self.facts.local_step_ids
            cached = all(
                id(step) in local_ids
                for step in self.machine.steps_at(pc)
            )
            self._pc_local[pc] = cached
        return cached

    # ------------------------------------------------------------------

    def _buffer_private(self, buffer: tuple) -> bool:
        """Every pending store targets a private global (so every drain
        of this buffer is invisible to other threads)."""
        private = self.facts.private_globals
        for location, _value in buffer:
            root = location.root
            if root.kind != "global" or root.name not in private:
                return False
        return True

    def ample(
        self,
        state: ProgramState,
        transitions: list[Transition],
        seen: Container[ProgramState],
        successors: "list[ProgramState] | None" = None,
    ) -> tuple[list[Transition], list[ProgramState]] | None:
        """Select an ample subset of *transitions* at *state*.

        Returns ``(ample_transitions, their_successors)`` when a sound
        singleton-thread reduction exists, or ``None`` to request full
        expansion.  Successors are returned so the explorer does not
        recompute them.  When the caller already has the successor of
        every transition (the compiled stepper produces them as a
        by-product), pass them as *successors* — the dynamic guard then
        costs no extra ``next_state`` work at all.
        """
        if state.atomic_owner is not None or len(transitions) < 2:
            # Inside an atomic region only one thread schedules anyway;
            # with < 2 transitions there is nothing to prune.
            self.stats.full_states += 1
            return None

        by_tid: dict[int, list[int]] = {}
        for i, tr in enumerate(transitions):
            by_tid.setdefault(tr.tid, []).append(i)
        if len(by_tid) < 2:
            # Single runnable thread: nothing to prune, and no reason
            # to run the dynamic guard (this is the common case in
            # small graphs' sequential prologues/epilogues).
            self.stats.full_states += 1
            return None

        for tid in sorted(by_tid):
            indices = by_tid[tid]
            thread = state.threads[tid]
            if not self._buffer_private(thread.store_buffer):
                continue
            if not self._pc_all_local(thread.pc):
                continue
            candidate = [transitions[i] for i in indices]
            checked = self._check_successors(
                state, candidate, seen,
                [successors[i] for i in indices]
                if successors is not None else None,
            )
            if checked is None:
                continue
            self.stats.ample_states += 1
            self.stats.transitions_pruned += (
                len(transitions) - len(candidate)
            )
            if OBS.enabled:
                OBS.count("por.ample_states")
                OBS.count("por.transitions_pruned",
                          len(transitions) - len(candidate))
            return candidate, checked

        self.stats.full_states += 1
        return None

    # ------------------------------------------------------------------

    def _check_successors(
        self,
        state: ProgramState,
        candidate: list[Transition],
        seen: Container[ProgramState],
        computed: "list[ProgramState] | None" = None,
    ) -> list[ProgramState] | None:
        """Run the dynamic invisibility/commutation guard (C2, C3)."""
        machine = self.machine
        tid = candidate[0].tid
        old_thread = state.threads[tid]
        old_sb = old_thread.store_buffer
        successors: list[ProgramState] = []
        for k, tr in enumerate(candidate):
            nxt = (
                computed[k] if computed is not None
                else machine.next_state(state, tr)
            )
            if tr.is_drain:
                # A drain of a private entry only pops the candidate's
                # buffer and writes the private cell back; nothing else
                # can change.  C3 still applies.
                if nxt in seen:
                    return None
                successors.append(nxt)
                continue
            if nxt.termination is not None:
                return None
            if nxt.log != state.log:
                return None
            if nxt.memory is not state.memory and nxt.memory != state.memory:
                return None
            if nxt.ghosts is not state.ghosts and nxt.ghosts != state.ghosts:
                return None
            if (nxt.allocation is not state.allocation
                    and nxt.allocation != state.allocation):
                return None
            if (nxt.atomic_owner != state.atomic_owner
                    or nxt.next_tid != state.next_tid
                    or nxt.next_serial != state.next_serial
                    or len(nxt.threads) != len(state.threads)):
                return None
            moved = nxt.threads.get(tid)
            if moved is None or moved.pc is None:
                # Termination is visible: it enables joins elsewhere.
                return None
            new_sb = moved.store_buffer
            if new_sb != old_sb:
                # The step may only *append* stores to private globals.
                if new_sb[: len(old_sb)] != old_sb:
                    return None
                if not self._buffer_private(new_sb[len(old_sb):]):
                    return None
            for other_tid, other in state.threads.items():
                if other_tid == tid:
                    continue
                nxt_other = nxt.threads.get(other_tid)
                if nxt_other is not other and nxt_other != other:
                    return None
            # C3: never prune into an already-seen state, or a pruned
            # sibling could be postponed forever around a cycle.
            if nxt in seen:
                return None
            successors.append(nxt)
        return successors
