"""Dynamic partial-order reduction: footprint-driven ample sets plus
sleep sets, computed at exploration time.

The static reducer (:mod:`repro.explore.por`) only prunes around steps
whose writes land on *private* globals — locations provably touched by a
single thread, ever.  That classification is whole-program and
per-location, so a lock implementation whose per-thread slots live in
one shared array (``locked[i]``) never qualifies and mcslock saves only
~8% of states.  This module relaxes the rule with facts only available
at a concrete state:

**Dynamic ample rule.**  Under x86-TSO a buffered store — to *any*
location — appends to the firing thread's store buffer and changes
nothing any other thread can observe; the later *drain* is the visible
action.  So thread *t* qualifies as an ample candidate at state *s*
when:

* every step at *t*'s pc is an Assign/Branch/Assume that never mentions
  ghost state, whose every static write access is buffered (plain
  ``:=``), and
* no location any of those steps may *read* can still be written by
  another live thread — checked against the per-pc forward-reachable
  write closure (:mod:`repro.analysis.futures`) of every other thread's
  current pc, return stack, and spawnable methods, plus the concrete
  cells sitting in other threads' store buffers at *s*.

The ample set is then *t*'s non-drain transitions.  This is a persistent
set: any execution from *s* by other threads (or *t*'s own pending
drains, which FIFO-commute with *t*'s buffer appends and cannot change
*t*'s read-own-write local view) can neither affect what *t*'s steps
read, nor observe their buffered effects, nor be disabled by them.
Every candidate is still executed and its successor re-checked by the
same dynamic guard as the static reducer — relaxed only to allow
non-private buffer appends — including C2 (no termination/log change)
and C3 (no successor already seen).  Under SC the static extraction
still marks writes "buffered" but the guard's memory-unchanged check
rejects them, so the rule degrades soundly to no reduction.

**Sleep sets.**  Orthogonally, :class:`SleepSets` implements
Godefroid-style sleep sets over *concrete* per-state footprints
(:func:`repro.analysis.accesses.concrete_footprint`): after exploring
sibling ``a`` before ``b`` at ``s``, the successor through ``b``
carries ``a`` in its sleep set as long as the two are independent, and
transitions in a state's sleep set are not re-fired there.  With state
interning, a state re-reached with a *smaller* sleep set is re-expanded
with the intersection (sets only shrink, so this terminates).  Sleep
sets prune redundant *transitions*, not states; the state savings come
from the ample rule and symmetry.  Independence is decided
conservatively: only Assign/Assume/Branch steps (ghost-free, no
atomic-region entry) and drains are eligible, same-thread pairs are
always dependent, and two footprints conflict when one performs a
*direct* write (TSO-bypassing, atomic, SC, or a drain) to a cell the
other touches.  Buffered TSO writes conflict with nothing — the drain,
a separate transition, carries the conflict.

Soundness caveats shared with the static reducer: properties over a
candidate thread's *private* mid-stride configuration may lose
intermediate states (the proof engine therefore keeps reductions
off by default), and reasons/failure counts are preserved as sets,
not multisets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Container

from repro.explore.por import AmpleReducer
from repro.machine.program import StateMachine, Transition
from repro.machine.state import ProgramState
from repro.machine.steps import AssignStep, AssumeStep, BranchStep
from repro.obs import OBS

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.accesses import AccessMap
    from repro.analysis.futures import FutureAccesses


def transition_key(tr: Transition) -> tuple:
    """A hashable identity for one transition across states.

    Steps use identity equality and are unique per machine, so
    ``id(step)`` (with the params tuple) names a transition type
    stably within one process.  Drains key on ``None``.
    """
    return (tr.tid, id(tr.step) if tr.step is not None else None,
            tr.params)


class DynamicReducer(AmpleReducer):
    """Ample-set selector with the buffered-write persistent-set rule.

    Falls back to the inherited static rule first (it is cheaper and
    admits drains into the ample set); the dynamic rule only runs where
    the static classification is too coarse.  Shares the parent's
    ``stats`` (``dynamic_states`` counts states reduced by the dynamic
    rule specifically).
    """

    def __init__(self, machine: StateMachine, facts=None) -> None:
        super().__init__(machine, facts)
        self._amap: "AccessMap | None" = None
        self._futures: "FutureAccesses | None" = None
        #: Lazily invoked provider of the compiled stepper's per-step
        #: footprint table (see :meth:`attach_stepper`).
        self._meta = None
        #: pc -> frozenset of locations read (candidate eligible), or
        #: None (ineligible pc).  Like ``_pc_local``, the answer only
        #: depends on the pc, so it is computed once.
        self._pc_dyn: dict[str | None, "frozenset[str] | None"] = {
            None: None,
        }

    def attach_stepper(self, stepper) -> None:
        """Adopt a compiled stepper's per-step footprint metadata
        (:meth:`repro.compiler.stepc.CompiledStepper.step_footprints`)
        so the per-pc shape classification reads precomputed footprints
        instead of re-walking the access map and step expressions."""
        self._meta = stepper.step_footprints

    # -- lazy analysis inputs ------------------------------------------

    @property
    def access_map(self) -> "AccessMap":
        if self._amap is None:
            from repro.analysis.accesses import extract_accesses

            self._amap = extract_accesses(self.machine.ctx, self.machine)
        return self._amap

    @property
    def futures(self) -> "FutureAccesses":
        if self._futures is None:
            from repro.analysis.futures import future_accesses

            self._futures = future_accesses(self.machine, self.access_map)
        return self._futures

    # -- per-pc dynamic eligibility ------------------------------------

    def _dyn_reads(self, pc: str | None) -> "frozenset[str] | None":
        """If every step at *pc* fits the dynamic rule's step shape,
        the union of locations those steps may read; else None."""
        cached = self._pc_dyn.get(pc, "miss")
        if cached != "miss":
            return cached
        from repro.analysis.independence import _mentions_ghost

        amap = self.access_map
        meta_table = self._meta() if self._meta is not None else None
        method = self.machine.pcs[pc].method
        reads: set[str] = set()
        ok = True
        steps = self.machine.steps_at(pc)
        if not steps:
            ok = False
        for step in steps:
            if not isinstance(step, (AssignStep, BranchStep, AssumeStep)):
                ok = False
                break
            meta = (
                meta_table.get(id(step))
                if meta_table is not None else None
            )
            if meta is not None:
                # The compiled stepper precomputed this step's shape.
                # (Atomic *writes* are rejected via buffered_writes_only;
                # atomic reads are plain reads for this rule.)
                if (not meta.ghost_free
                        or not meta.buffered_writes_only
                        or (meta.reads | meta.writes) & amap.mutex_words):
                    ok = False
                    break
                reads |= meta.reads
                continue
            if _mentions_ghost(self.machine.ctx, method,
                               step.reads_exprs()):
                ok = False
                break
            for access in amap.step_accesses(step):
                if access.location in amap.mutex_words:
                    ok = False
                    break
                if access.kind == "write":
                    if not access.buffered or access.atomic:
                        ok = False
                        break
                else:
                    reads.add(access.location)
            if not ok:
                break
        result = frozenset(reads) if ok else None
        self._pc_dyn[pc] = result
        return result

    # -- per-state future-write closure --------------------------------

    def _other_writes(
        self, state: ProgramState, tid: int
    ) -> "frozenset[str] | None":
        """Every abstract location some *other* live thread may still
        write — statically reachable writes plus the concrete pending
        store-buffer entries.  None when imprecise (a pending store to
        a non-global cell, or a poisoned future set): the caller must
        not prune."""
        from repro.analysis.futures import POISON

        futures = self.futures
        acc: set[str] = set()
        for other_tid, other in state.threads.items():
            if other_tid == tid:
                continue
            if other.pc is None and not other.store_buffer:
                continue
            acc |= futures.thread_writes(other)
            for location, _value in other.store_buffer:
                root = location.root
                if root.kind != "global":
                    return None
                acc.add(root.name)
        if POISON in acc:
            return None
        return frozenset(acc)

    # -- selection ------------------------------------------------------

    def ample(
        self,
        state: ProgramState,
        transitions: list[Transition],
        seen: Container[ProgramState],
        successors: "list[ProgramState] | None" = None,
    ) -> tuple[list[Transition], list[ProgramState]] | None:
        if state.atomic_owner is not None or len(transitions) < 2:
            self.stats.full_states += 1
            return None
        by_tid: dict[int, list[int]] = {}
        for i, tr in enumerate(transitions):
            by_tid.setdefault(tr.tid, []).append(i)
        if len(by_tid) < 2:
            self.stats.full_states += 1
            return None

        for tid in sorted(by_tid):
            indices = by_tid[tid]
            thread = state.threads[tid]
            dynamic = False
            if (self._buffer_private(thread.store_buffer)
                    and self._pc_all_local(thread.pc)):
                pass  # static rule: candidate includes pending drains
            else:
                needed = self._dyn_reads(thread.pc)
                if needed is None:
                    continue
                other = self._other_writes(state, tid)
                if other is None or (needed & other):
                    continue
                # Drains of non-private entries are visible; keep them
                # out of the persistent set (they commute with it and
                # stay enabled, so they are explored at the successors).
                indices = [
                    i for i in indices if not transitions[i].is_drain
                ]
                if not indices:
                    continue
                dynamic = True
            candidate = [transitions[i] for i in indices]
            check = (self._check_successors_dyn if dynamic
                     else self._check_successors)
            checked = check(
                state, candidate, seen,
                [successors[i] for i in indices]
                if successors is not None else None,
            )
            if checked is None:
                continue
            pruned = len(transitions) - len(candidate)
            self.stats.ample_states += 1
            self.stats.transitions_pruned += pruned
            if dynamic:
                self.stats.dynamic_states += 1
            if OBS.enabled:
                OBS.count("por.ample_states")
                OBS.count("por.transitions_pruned", pruned)
                if dynamic:
                    OBS.count("dpor.dynamic_states")
            return candidate, checked

        self.stats.full_states += 1
        return None

    # -- relaxed dynamic guard -----------------------------------------

    def _check_successors_dyn(
        self,
        state: ProgramState,
        candidate: list[Transition],
        seen: Container[ProgramState],
        computed: "list[ProgramState] | None" = None,
    ) -> list[ProgramState] | None:
        """The parent's invisibility guard (C2, C3), with the buffer
        restriction relaxed: the step may *append* stores for any
        location — under TSO an append is invisible until drained."""
        machine = self.machine
        tid = candidate[0].tid
        old_thread = state.threads[tid]
        old_sb = old_thread.store_buffer
        successors: list[ProgramState] = []
        for k, tr in enumerate(candidate):
            nxt = (
                computed[k] if computed is not None
                else machine.next_state(state, tr)
            )
            if nxt.termination is not None:
                return None
            if nxt.log != state.log:
                return None
            if nxt.memory is not state.memory and nxt.memory != state.memory:
                return None
            if nxt.ghosts is not state.ghosts and nxt.ghosts != state.ghosts:
                return None
            if (nxt.allocation is not state.allocation
                    and nxt.allocation != state.allocation):
                return None
            if (nxt.atomic_owner != state.atomic_owner
                    or nxt.next_tid != state.next_tid
                    or nxt.next_serial != state.next_serial
                    or len(nxt.threads) != len(state.threads)):
                return None
            moved = nxt.threads.get(tid)
            if moved is None or moved.pc is None:
                return None
            new_sb = moved.store_buffer
            if new_sb != old_sb and new_sb[: len(old_sb)] != old_sb:
                return None
            for other_tid, other in state.threads.items():
                if other_tid == tid:
                    continue
                nxt_other = nxt.threads.get(other_tid)
                if nxt_other is not other and nxt_other != other:
                    return None
            if nxt in seen:
                return None
            successors.append(nxt)
        return successors


# ---------------------------------------------------------------------------
# Sleep sets


class SleepSets:
    """Footprint-based sleep-set bookkeeping for the explorer loop.

    The explorer owns the per-state sleep dictionary and the frontier;
    this class answers the two per-expansion questions — *which enabled
    transitions are asleep here* and *what does a successor's sleep set
    look like* — against lazily cached per-step eligibility and
    per-state concrete footprints.
    """

    def __init__(self, machine: StateMachine, stepper=None) -> None:
        self.machine = machine
        memmodel = getattr(machine, "memmodel", None)
        #: Under TSO a buffered write conflicts with nothing (its drain
        #: does); under any other model "buffered" footprints are
        #: really direct writes.
        self._buffer_invisible = (
            memmodel is not None and memmodel.name == "tso"
        )
        #: Optional compiled stepper whose per-step footprint metadata
        #: answers the ghost-free part of eligibility without walking
        #: step expressions.
        self._stepper = stepper
        self._step_ok: dict[int, bool] = {}

    # -- eligibility ----------------------------------------------------

    def _step_eligible(self, step) -> bool:
        cached = self._step_ok.get(id(step))
        if cached is not None:
            return cached
        ok = isinstance(step, (AssignStep, BranchStep, AssumeStep))
        if ok:
            # Entering an atomic region changes the scheduler state —
            # visible to everyone.
            target = step.target
            if target is not None and not self.machine.pcs[target].yieldable:
                ok = False
        if ok:
            meta = (
                self._stepper.step_footprints().get(id(step))
                if self._stepper is not None else None
            )
            if meta is not None:
                ok = meta.ghost_free
            else:
                from repro.analysis.independence import _mentions_ghost

                method = self.machine.pcs[step.pc].method
                ok = not _mentions_ghost(self.machine.ctx, method,
                                         step.reads_exprs())
        self._step_ok[id(step)] = ok
        return ok

    def eligible(self, tr: Transition) -> bool:
        if tr.is_drain:
            # A plain TSO drain; parameterized env moves (RA) never get
            # here (reductions are disabled for models without POR
            # support).
            return not tr.params
        return self._step_eligible(tr.step)

    # -- footprints -----------------------------------------------------

    def _footprint(
        self, state: ProgramState, tr: Transition, cache: dict
    ) -> "list[tuple[Any, bool]] | None":
        """(cell, is_direct_write) pairs for *tr* at *state*; reads are
        ``(cell, False)`` entries too — conflicts pair a direct write
        with any touch.  None = unknown, dependent with everything."""
        key = transition_key(tr)
        if key in cache:
            return cache[key]
        result: "list[tuple[Any, bool]] | None"
        if tr.is_drain:
            thread = state.threads.get(tr.tid)
            if thread is None or not thread.store_buffer:
                result = None
            else:
                result = [(thread.store_buffer[0][0], True)]
        elif not self.eligible(tr):
            result = None
        else:
            from repro.analysis.accesses import concrete_footprint

            accesses = concrete_footprint(
                self.machine, state, tr.tid, tr.step, tr.params_dict()
            )
            result = []
            for access in accesses:
                if access.kind == "write":
                    buffered = access.buffered and self._buffer_invisible
                    if not buffered:
                        result.append((access.location, True))
                    # A buffered TSO write touches no shared cell.
                else:
                    result.append((access.location, False))
        cache[key] = result
        return result

    def independent(
        self,
        state: ProgramState,
        a: Transition,
        b: Transition,
        cache: dict,
    ) -> bool:
        if a.tid == b.tid:
            return False
        fa = self._footprint(state, a, cache)
        if fa is None:
            return False
        fb = self._footprint(state, b, cache)
        if fb is None:
            return False
        if not fa or not fb:
            return True
        cells_b: dict[Any, bool] = {}
        for cell, direct in fb:
            cells_b[cell] = cells_b.get(cell, False) or direct
        for cell, direct in fa:
            other = cells_b.get(cell)
            if other is None:
                continue
            if direct or other:
                return False
        return True

    # -- the two explorer-facing operations ----------------------------

    def split(
        self,
        transitions: list[Transition],
        sleep_keys: "frozenset[tuple]",
    ) -> tuple[list[int], list[Transition]]:
        """Indices of transitions to explore, and the enabled
        transitions that stay asleep here."""
        if not sleep_keys:
            return list(range(len(transitions))), []
        active: list[int] = []
        asleep: list[Transition] = []
        for i, tr in enumerate(transitions):
            if transition_key(tr) in sleep_keys:
                asleep.append(tr)
            else:
                active.append(i)
        return active, asleep

    def successor_sleep(
        self,
        state: ProgramState,
        taken: Transition,
        carried: list[Transition],
        cache: dict,
    ) -> "frozenset[tuple]":
        """The sleep set of the successor reached via *taken*: every
        carried transition (inherited sleep + earlier-explored
        siblings) that is independent of *taken* at *state*."""
        if not carried or not self.eligible(taken):
            return frozenset()
        keep = [
            transition_key(tr) for tr in carried
            if self.independent(state, tr, taken, cache)
        ]
        return frozenset(keep)
