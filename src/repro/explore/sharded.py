"""Hash-sharded parallel frontier exploration.

The compiled stepper (PR 8) made each state cheaper; this module makes
*many cores* work on the state space at once, the way ``repro.farm``
already parallelizes obligation discharge.  The interned state space is
partitioned by hash across ``W`` forked worker processes:

* **Ownership.**  Worker ``w`` owns exactly the states with
  ``_owner(state, W) == w``.  Only the owner dedups, counts, checks
  invariants on, and expands a state, so every state is visited exactly
  once globally — the partition of the intern table *is* the partition
  of the work.  The partition key hashes the *shared* projection of the
  state (memory, ghosts, log) rather than the whole state: thread-local
  transitions (pc advances, local assigns, buffer appends) preserve that
  projection, so their successors stay on the discovering shard and
  never cross a pipe (~75% -> ~20% cross-shard traffic on QueueNondet).
  The cost is balance — a program whose action is all thread-local
  clusters onto few shards (still correct, just less parallel).
* **Rounds.**  Exploration is level-synchronized: in each round every
  worker expands its current frontier (one full BFS level), buckets
  foreign successors by owner, and ships each bucket as one pickled
  blob.  The driver routes blobs as opaque bytes (it never unpickles a
  state) and releases the next round once every worker has admitted its
  inbox.  Level-synchronized rounds keep the global search breadth-first,
  so parent pointers still yield *shortest* counterexample traces.
* **Handoff.**  A shipped successor carries ``(state, parent_ref)``
  where ``parent_ref = (wid, local_index, encoded_transition)`` names
  the parent slot in the discovering worker's state table.  At the end
  the driver collects every worker's parent table and reconstructs
  UB/violation traces by walking refs across tables, decoding
  transitions via ``machine.steps_at(pc)[index]``.
* **Dedup before IPC.**  Senders keep, per destination, the set of
  states already shipped there (any round) plus a per-round bucket
  dict, so a state crosses each pipe at most once per discovering
  worker.  Receiver-side interning resolves the remaining cross-worker
  races deterministically: the driver forwards each round's inbox
  sorted by sender id.

Workers run the **full** fan-out — no POR, no sleep sets, no symmetry.
The dynamic reductions are deliberately confined to single-process
exploration: their C3/cycle provisos and sleep-set bookkeeping consult
the *global* seen set, which no shard can observe locally, so pruning
inside a shard would be unsound.  Sharding therefore composes with any
memory model (including RA) and preserves verdicts, UB reasons,
assertion outcomes and deadlocks exactly; only wall-clock changes.

Determinism: verdict merging is order-independent (set unions, sums),
and UB reasons / violations are sorted by (reason/invariant, trace
length, trace text) before being reported.  The state budget is
enforced at round granularity — the driver stops launching rounds once
the global admitted count reaches ``max_states`` — so a truncated
sharded run may admit slightly more states than a truncated
single-process run (both report ``hit_state_budget``); un-truncated
runs agree exactly.

Requires a ``fork`` start method (Linux): workers inherit the machine,
the invariant closures, and — critically — the interpreter's string
hash seed, so ``hash(state) % W`` agrees in every process.  With
``workers <= 1`` or no fork support, falls back to the in-process
:class:`~repro.explore.explorer.Explorer`.
"""

from __future__ import annotations

import multiprocessing
import pickle
import traceback
from typing import Callable

from repro.compiler.stepc import stepper_for
from repro.explore.explorer import ExplorationResult, InvariantViolation
from repro.machine.program import StateMachine, Transition
from repro.machine.state import ProgramState, TERM_UB
from repro.obs import OBS


def _owner(state: ProgramState, nworkers: int) -> int:
    """The shard that owns *state*.  Pure and fork-consistent: PMap
    hashes are content-derived and the workers share the driver's
    string-hash seed."""
    return hash((state.memory, state.ghosts, state.log)) % nworkers


def _encode_transition(machine: StateMachine, tr: Transition,
                       memo: dict) -> tuple:
    """Portable reference to *tr*: steps are named (pc, index-at-pc)
    because step objects compare by identity and must not be pickled."""
    step = tr.step
    if step is None:
        return (tr.tid, None, 0, tr.params)
    key = id(step)
    index = memo.get(key)
    if index is None:
        index = next(
            i for i, s in enumerate(machine.steps_at(step.pc))
            if s is step
        )
        memo[key] = index
    return (tr.tid, step.pc, index, tr.params)


def _decode_transition(machine: StateMachine, enc: tuple) -> Transition:
    tid, pc, index, params = enc
    if pc is None:
        return Transition(tid, None, params)
    return Transition(tid, machine.steps_at(pc)[index], params)


def _worker_loop(
    wid: int,
    nworkers: int,
    machine: StateMachine,
    invariants: dict | None,
    compiled: bool,
    conn,
) -> None:
    """One shard: owns states with ``hash(state) % nworkers == wid``."""
    try:
        stepper = stepper_for(machine) if compiled else None
        seen: dict[ProgramState, int] = {}
        states: list[ProgramState] = []
        parents: list[tuple | None] = []
        frontier: list[int] = []
        sent = [set() for _ in range(nworkers)]
        step_memo: dict = {}
        stats = {
            "visited": 0, "taken": 0, "af": 0, "shipped": 0,
        }
        outcomes: set = set()
        ub: list[tuple[str, int]] = []
        violations: list[tuple[str, int]] = []
        new_states = 0

        def admit(state: ProgramState, ref: tuple | None) -> None:
            nonlocal new_states
            if state in seen:
                return
            index = len(states)
            seen[state] = index
            states.append(state)
            parents.append(ref)
            new_states += 1
            stats["visited"] += 1
            if invariants:
                for name, predicate in invariants.items():
                    try:
                        holds = predicate(state)
                    except Exception:  # predicate crashed: failure
                        holds = False
                    if not holds:
                        violations.append((name, index))
            if state.termination is not None:
                outcomes.add((state.termination.kind, state.log))
                if state.termination.kind == TERM_UB:
                    ub.append((state.termination.detail, index))
                if state.termination.kind == "assert_failure":
                    stats["af"] += 1
                return
            frontier.append(index)

        while True:
            msg = conn.recv()
            tag = msg[0]
            if tag == "init":
                initial = machine.initial_state()
                if _owner(initial, nworkers) == wid:
                    admit(initial, None)
                new_states = 0  # the driver counts the initial state
            elif tag == "go":
                current, frontier = frontier, []
                buckets: list[dict] = [{} for _ in range(nworkers)]
                for index in current:
                    state = states[index]
                    if stepper is not None:
                        pairs = stepper.fn(state)
                        transitions = [p[0] for p in pairs]
                        succs = [p[1] for p in pairs]
                    else:
                        transitions = machine.enabled_transitions(state)
                        succs = None
                    if not transitions:
                        outcomes.add(("deadlock", state.log))
                        continue
                    for k, tr in enumerate(transitions):
                        stats["taken"] += 1
                        nxt = (
                            succs[k] if succs is not None
                            else machine.next_state(state, tr)
                        )
                        ref = (
                            wid, index,
                            _encode_transition(machine, tr, step_memo),
                        )
                        dest = _owner(nxt, nworkers)
                        if dest == wid:
                            admit(nxt, ref)
                        else:
                            bucket = buckets[dest]
                            if nxt not in bucket and nxt not in sent[dest]:
                                bucket[nxt] = ref
                for dest in range(nworkers):
                    bucket = buckets[dest]
                    if dest == wid or not bucket:
                        continue
                    sent[dest].update(bucket)
                    stats["shipped"] += len(bucket)
                    blob = pickle.dumps(
                        list(bucket.items()),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                    conn.send(("xfer", dest, blob))
                conn.send(("round_done",))
                # Admit this round's inbox, then report.
                while True:
                    msg = conn.recv()
                    if msg[0] == "admit":
                        for nxt, ref in pickle.loads(msg[1]):
                            admit(nxt, ref)
                    elif msg[0] == "round_end":
                        conn.send(
                            ("admitted", new_states, bool(frontier))
                        )
                        new_states = 0
                        break
            elif tag == "finish":
                needed = {index for _r, index in ub}
                needed.update(index for _n, index in violations)
                conn.send(("result", {
                    "wid": wid,
                    "visited": stats["visited"],
                    "taken": stats["taken"],
                    "af": stats["af"],
                    "shipped": stats["shipped"],
                    "outcomes": outcomes,
                    "ub": ub,
                    "violations": violations,
                    "parents": parents,
                    "vstates": {i: states[i] for i in needed},
                }))
                conn.close()
                return
    except EOFError:  # driver went away
        return
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass


class ShardedExplorer:
    """Drive ``workers`` forked shards to a merged
    :class:`ExplorationResult` equivalent to single-process full
    exploration (see module docstring for the protocol)."""

    def __init__(
        self,
        machine: StateMachine,
        workers: int = 2,
        max_states: int = 2_000_000,
        compiled: bool = True,
    ) -> None:
        self.machine = machine
        self.workers = max(1, int(workers))
        self.max_states = max_states
        self.compiled = compiled

    def explore(
        self,
        invariants: dict[str, Callable[[ProgramState], bool]] | None = None,
    ) -> ExplorationResult:
        if self.workers <= 1 or not _fork_available():
            from repro.explore.explorer import Explorer

            return Explorer(
                self.machine, self.max_states, compiled=self.compiled
            ).explore(invariants)
        if not OBS.enabled:
            return self._explore(invariants)
        memmodel = getattr(self.machine, "memmodel", None)
        with OBS.span("explore_sharded", "phase",
                      level=self.machine.level_name,
                      workers=self.workers,
                      memory_model=memmodel.name if memmodel else "tso"):
            return self._explore(invariants)

    def _explore(self, invariants) -> ExplorationResult:
        machine = self.machine
        nworkers = self.workers
        if self.compiled:
            stepper_for(machine)  # compile once pre-fork; children inherit
        ctx = multiprocessing.get_context("fork")
        conns = []
        procs = []
        for wid in range(nworkers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_loop,
                args=(wid, nworkers, machine, invariants, self.compiled,
                      child_conn),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)
        try:
            for conn in conns:
                conn.send(("init",))
            total = 1
            rounds = 0
            hit_budget = False
            while True:
                rounds += 1
                for conn in conns:
                    conn.send(("go",))
                inbox: list[list] = [[] for _ in range(nworkers)]
                for src, conn in enumerate(conns):
                    while True:
                        msg = _recv(conn)
                        if msg[0] == "xfer":
                            inbox[msg[1]].append((src, msg[2]))
                        elif msg[0] == "round_done":
                            break
                for dest, conn in enumerate(conns):
                    # Sender order fixes which discoverer becomes the
                    # parent on cross-worker races: deterministic traces.
                    for _src, blob in sorted(
                        inbox[dest], key=lambda entry: entry[0]
                    ):
                        conn.send(("admit", blob))
                    conn.send(("round_end",))
                admitted = 0
                any_frontier = False
                for conn in conns:
                    msg = _recv(conn)
                    admitted += msg[1]
                    any_frontier = any_frontier or msg[2]
                total += admitted
                if not any_frontier:
                    break
                if total >= self.max_states:
                    hit_budget = True
                    break
            for conn in conns:
                conn.send(("finish",))
            summaries = [_recv(conn)[1] for conn in conns]
        finally:
            for conn in conns:
                try:
                    conn.close()
                except OSError:
                    pass
            for proc in procs:
                proc.join(timeout=30)
                if proc.is_alive():  # pragma: no cover
                    proc.terminate()
        return self._merge(summaries, rounds, hit_budget)

    # ------------------------------------------------------------------

    def _merge(
        self, summaries: list[dict], rounds: int, hit_budget: bool
    ) -> ExplorationResult:
        machine = self.machine
        result = ExplorationResult()
        result.hit_state_budget = hit_budget
        tables: dict[int, list] = {}
        for summary in summaries:
            result.states_visited += summary["visited"]
            result.transitions_taken += summary["taken"]
            result.assert_failures += summary["af"]
            result.final_outcomes |= summary["outcomes"]
            tables[summary["wid"]] = summary["parents"]

        def trace_to(wid: int, index: int) -> tuple[Transition, ...]:
            trace: list[Transition] = []
            while True:
                ref = tables[wid][index]
                if ref is None:
                    break
                wid, index, enc = ref
                trace.append(_decode_transition(machine, enc))
            trace.reverse()
            return tuple(trace)

        ub_entries = []
        for summary in summaries:
            for reason, index in summary["ub"]:
                trace = trace_to(summary["wid"], index)
                ub_entries.append((reason, trace))
        ub_entries.sort(key=lambda e: (
            e[0], len(e[1]), tuple(t.describe() for t in e[1])
        ))
        for reason, trace in ub_entries:
            result.ub_reasons.append(reason)
            result.ub_traces.append(trace)

        violation_entries = []
        for summary in summaries:
            for name, index in summary["violations"]:
                trace = trace_to(summary["wid"], index)
                state = summary["vstates"][index]
                violation_entries.append((name, trace, state))
        violation_entries.sort(key=lambda e: (
            e[0], len(e[1]), tuple(t.describe() for t in e[1])
        ))
        for name, trace, state in violation_entries:
            result.violations.append(
                InvariantViolation(state, name, trace=trace)
            )

        if OBS.enabled:
            OBS.count("sharded.rounds", rounds)
            OBS.count("sharded.states_shipped",
                      sum(s["shipped"] for s in summaries))
            OBS.count("explorer.states_admitted", result.states_visited)
        return result


def _recv(conn):
    msg = conn.recv()
    if msg[0] == "error":
        raise RuntimeError(
            f"sharded exploration worker failed:\n{msg[1]}"
        )
    return msg


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover
        return False
