"""Explicit-state exploration of Armada state machines.

The explorer enumerates every reachable state of a translated level
under all thread interleavings (including x86-TSO store-buffer drain
transitions), honouring atomic-region scheduling.  It is the bounded
model checker that discharges whole-program obligations in this
reproduction (see DESIGN.md: it plays the role Dafny/Z3 play in the
paper's toolchain, with bounded instead of unbounded guarantees).

Three contracts this module is careful about:

* **Order**: exploration is genuine breadth-first (``deque.popleft``),
  so the first path that reaches a state is a shortest path and every
  reported counterexample trace is minimal.
* **Budget**: ``max_states`` is a hard upper bound on the number of
  *distinct* states admitted (the initial state counts).  Truncation is
  never silent — ``reachable_states`` raises
  :class:`~repro.errors.StateBudgetExceeded`, ``walk`` returns
  ``False``, and ``explore`` sets ``hit_state_budget``.
* **Traces**: ``explore`` keeps a parent pointer per admitted state, so
  every :class:`InvariantViolation` (and every UB outcome) carries the
  shortest transition sequence that reproduces it from the initial
  state.

Reductions (all opt-in, all preserving verdicts, UB reasons and
assertion outcomes):

* ``por=True`` — static ample-set partial-order reduction
  (:class:`~repro.explore.por.AmpleReducer`).
* ``dpor=True`` — dynamic POR: the footprint-driven ample rule plus
  sleep sets (:mod:`repro.explore.dpor`).  Implies the static rule.
* ``symmetry=True`` — canonicalization over interchangeable worker
  threads (:mod:`repro.explore.symmetry`).  With symmetry on, recorded
  traces step between canonical representatives; replay them with
  :func:`canonical_replay`.
* ``atomic=True`` — the regular-to-atomic lift
  (:mod:`repro.explore.atomic`): runs of non-PC-breaking local steps
  execute as single atomic actions, hiding the intermediate states.
  Recorded traces flatten macro actions back into micro transitions,
  so they replay with plain ``next_state``.

Memory models without POR support (C11 RA) silently fall back to
unreduced exploration for all of these — ``reductions_disabled``
records why.  Callers that inspect *every* state/transition pair for their own
purposes (the analyzer's race scan) must leave all reductions off.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.compiler.stepc import stepper_for
from repro.errors import StateBudgetExceeded
from repro.explore.atomic import AtomicLift, AtomicStats, MacroTransition
from repro.explore.dpor import DynamicReducer, SleepSets
from repro.explore.por import AmpleReducer, PorStats
from repro.explore.symmetry import SymmetryReducer
from repro.machine.program import StateMachine, Transition
from repro.machine.state import ProgramState, TERM_UB
from repro.obs import OBS


@dataclass
class InvariantViolation:
    """A reachable state where a checked invariant failed.

    ``trace`` is the shortest transition sequence from the initial
    state to ``state`` (replayable via ``machine.next_state``, or
    :func:`canonical_replay` when symmetry reduction was active).
    """

    state: ProgramState
    invariant_name: str
    trace: tuple[Transition, ...] = ()

    def format_trace(self) -> str:
        return " ; ".join(t.describe() for t in self.trace) or "<initial>"


@dataclass
class ExplorationResult:
    """Summary of a full (or budget-capped) exploration."""

    states_visited: int = 0
    transitions_taken: int = 0
    final_outcomes: set = field(default_factory=set)
    ub_reasons: list[str] = field(default_factory=list)
    #: Shortest trace to each UB outcome, aligned with ``ub_reasons``.
    ub_traces: list[tuple[Transition, ...]] = field(default_factory=list)
    assert_failures: int = 0
    violations: list[InvariantViolation] = field(default_factory=list)
    hit_state_budget: bool = False
    #: Reduction counters for this exploration (None when no reduction
    #: — POR, dynamic POR, or symmetry — was active).
    por_stats: PorStats | None = None
    #: Chain counters from the regular-to-atomic lift (None when the
    #: lift was off or self-disabled).
    atomic_stats: "AtomicStats | None" = None

    @property
    def has_ub(self) -> bool:
        return bool(self.ub_reasons)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.hit_state_budget


class _CanonicalSeen:
    """Membership view over the seen set modulo symmetry, for the
    reducer's C3 check: a successor whose *representative* was already
    admitted counts as seen."""

    __slots__ = ("seen", "sym")

    def __init__(self, seen: dict, sym: SymmetryReducer) -> None:
        self.seen = seen
        self.sym = sym

    def __contains__(self, state: ProgramState) -> bool:
        return self.sym.canonical(state) in self.seen


class Explorer:
    """Breadth-first enumeration of the reachable state space.

    ``por`` selects static partial-order reduction: ``None``/``False``
    for the full interleaving fan-out, ``True`` to build a fresh
    :class:`AmpleReducer` for this machine, or an existing reducer to
    share its (lazily computed) independence facts across explorations.
    ``dpor`` selects the dynamic reducer (+ sleep sets) the same way
    and takes precedence over ``por``; ``symmetry`` composes with
    either (or stands alone).  ``atomic`` turns on the
    regular-to-atomic lift (:class:`~repro.explore.atomic.AtomicLift`
    or ``True`` for a fresh one); it composes with every reduction and
    self-disables when the machine's classification is unavailable.
    """

    def __init__(
        self,
        machine: StateMachine,
        max_states: int = 2_000_000,
        por: AmpleReducer | bool | None = None,
        compiled: bool = True,
        dpor: "DynamicReducer | bool | None" = None,
        symmetry: "SymmetryReducer | bool | None" = None,
        atomic: "AtomicLift | bool | None" = None,
    ) -> None:
        self.machine = machine
        self.max_states = max_states
        memmodel = getattr(machine, "memmodel", None)
        #: Why requested reductions were dropped (None when honoured).
        self.reductions_disabled: str | None = None
        if (por or dpor or symmetry or atomic) and memmodel is not None \
                and not memmodel.supports_por:
            # The independence/symmetry arguments do not cover this
            # model's environment moves (RA view advances); fall back
            # to full expansion rather than prune unsoundly.
            self.reductions_disabled = (
                f"memory model {memmodel.name} does not support "
                f"reductions; exploring unreduced"
            )
            por = dpor = symmetry = atomic = None
        if atomic:
            lift = (atomic if isinstance(atomic, AtomicLift)
                    else AtomicLift(machine))
            if not lift.classification.enabled:
                # Conservative self-disable: unknown classification or
                # no non-breaking PC means there is nothing to chain.
                if lift.classification.disabled is not None \
                        and self.reductions_disabled is None:
                    self.reductions_disabled = (
                        lift.classification.describe()
                    )
                lift = None
            self.atomic: AtomicLift | None = lift
        else:
            self.atomic = None
        reducer: AmpleReducer | None
        if dpor:
            reducer = (dpor if isinstance(dpor, DynamicReducer)
                       else DynamicReducer(machine))
        elif isinstance(por, AmpleReducer):
            reducer = por
        elif por:
            reducer = AmpleReducer(machine)
        else:
            reducer = None
        self.reducer = reducer
        if symmetry:
            self.symmetry: SymmetryReducer | None = (
                symmetry if isinstance(symmetry, SymmetryReducer)
                else SymmetryReducer(machine)
            )
        else:
            self.symmetry = None
        # Compiled step specialization (repro.compiler.stepc): one flat
        # enabled_and_next(state) per machine, with automatic fallback
        # to the interpreter (stepper_for returns None for uncovered
        # machines, e.g. under the RA model).
        self.stepper = stepper_for(machine) if compiled else None
        #: Sleep sets ride along with the dynamic reducer only: their
        #: independence oracle shares its footprint machinery.  Both
        #: borrow the compiled stepper's per-step footprint metadata
        #: when available.
        self.sleep: SleepSets | None = (
            SleepSets(machine, stepper=self.stepper)
            if isinstance(reducer, DynamicReducer) else None
        )
        if isinstance(reducer, DynamicReducer) and self.stepper is not None:
            reducer.attach_stepper(self.stepper)

    # ------------------------------------------------------------------

    def _expand(
        self, state: ProgramState
    ) -> tuple[list[Transition], list[ProgramState] | None]:
        """The full enabled-transition list at *state*, plus — when the
        compiled stepper is active — the matching successor states for
        free (``None`` otherwise; they are computed lazily on demand)."""
        if self.stepper is not None:
            pairs = self.stepper.fn(state)
            return [p[0] for p in pairs], [p[1] for p in pairs]
        return self.machine.enabled_transitions(state), None

    def _successors(
        self,
        state: ProgramState,
        transitions: list[Transition],
        seen,
        successors: list[ProgramState] | None = None,
    ) -> tuple[list[Transition], list[ProgramState]]:
        """Transitions to expand at *state* and their successor states
        (the ample subset under POR, everything otherwise)."""
        if self.reducer is not None:
            reduced = self.reducer.ample(state, transitions, seen,
                                         successors)
            if reduced is not None:
                return reduced
        if successors is not None:
            return transitions, successors
        machine = self.machine
        return transitions, [
            machine.next_state(state, tr) for tr in transitions
        ]

    def _reducer_seen(self, seen: dict):
        if self.symmetry is not None and self.reducer is not None:
            return _CanonicalSeen(seen, self.symmetry)
        return seen

    def reachable_states(
        self, start: ProgramState | None = None
    ) -> Iterable[ProgramState]:
        """Yield every reachable state (deduplicated) in BFS order.

        Under symmetry reduction the canonical representatives are
        yielded.  At most ``max_states`` states are yielded.  If the
        state space was not exhausted within the budget, raises
        :class:`StateBudgetExceeded` *after* the final yield — callers
        consuming the enumeration as evidence of full coverage fail
        loudly instead of silently accepting a truncated sweep.
        """
        machine = self.machine
        sym = self.symmetry
        initial = start if start is not None else machine.initial_state()
        if sym is not None:
            initial = sym.canonical(initial)
        # The seen dict doubles as the interning table: each admitted
        # state is its own canonical representative, and equal
        # successors are dropped after one (cached-) hash lookup.
        seen: dict[ProgramState, ProgramState] = {initial: initial}
        reducer_seen = self._reducer_seen(seen)
        frontier: deque[ProgramState] = deque((initial,))
        truncated = False
        intern_hits = 0
        while frontier:
            state = frontier.popleft()
            yield state
            if truncated:
                # The budget has tripped: no successor can be admitted
                # any more, so expanding the remaining frontier would be
                # dead next_state work.  Keep draining (and yielding)
                # the states already admitted.
                continue
            transitions, computed = self._expand(state)
            used, successors = self._successors(
                state, transitions, reducer_seen, computed
            )
            if self.atomic is not None:
                successors = [
                    self.atomic.chain(tr, nxt)[1]
                    for tr, nxt in zip(used, successors)
                ]
            for nxt in successors:
                if sym is not None:
                    nxt = sym.canonical(nxt)
                if nxt in seen:
                    intern_hits += 1
                    continue
                if len(seen) >= self.max_states:
                    truncated = True
                    continue
                seen[nxt] = nxt
                frontier.append(nxt)
        if OBS.enabled:
            OBS.count("explorer.states_admitted", len(seen))
            OBS.count("explorer.intern_hits", intern_hits)
            if truncated:
                OBS.count("explorer.budget_truncated")
        if truncated:
            raise StateBudgetExceeded(self.max_states)

    def walk(
        self,
        visit: Callable[[ProgramState, list[Transition]], bool],
        start: ProgramState | None = None,
    ) -> bool:
        """Visit every reachable state (BFS) together with its enabled
        transitions (the ingredients of the analyzer's dynamic race
        scan).  *visit* always receives the **full** enabled-transition
        list — POR only narrows which successors are expanded, never
        what a visitor observes at a state.  Symmetry canonicalization
        is deliberately *not* applied here: the analyzer inspects raw
        states.  *visit* returns ``False`` to stop early.  ``walk``
        returns ``True`` iff the bounded state space was covered
        completely: no early stop and no state-budget hit — only then
        may a caller treat the absence of a witness as a refutation.
        """
        machine = self.machine
        initial = start if start is not None else machine.initial_state()
        seen: dict[ProgramState, ProgramState] = {initial: initial}
        frontier: deque[ProgramState] = deque((initial,))
        complete = True
        while frontier:
            state = frontier.popleft()
            transitions, computed = self._expand(state)
            if visit(state, transitions) is False:
                return False
            if not complete:
                # Budget already hit: every new successor would be
                # refused, so skip the (possibly interpreted) successor
                # computation.  Remaining admitted states are still
                # visited above with their full transition lists.
                continue
            _, successors = self._successors(
                state, transitions, seen, computed
            )
            for nxt in successors:
                if nxt in seen:
                    continue
                if len(seen) >= self.max_states:
                    complete = False
                    continue
                seen[nxt] = nxt
                frontier.append(nxt)
        if OBS.enabled:
            OBS.count("explorer.states_admitted", len(seen))
            if not complete:
                OBS.count("explorer.budget_truncated")
        return complete

    def explore(
        self,
        invariants: dict[str, Callable[[ProgramState], bool]] | None = None,
        start: ProgramState | None = None,
    ) -> ExplorationResult:
        """Explore exhaustively (BFS), checking *invariants* at every
        state.  Violations and UB outcomes carry shortest replayable
        traces, reconstructed from per-state parent pointers."""
        if not OBS.enabled:
            return self._explore(invariants, start)
        memmodel = getattr(self.machine, "memmodel", None)
        with OBS.span("explore", "phase", level=self.machine.level_name,
                      por=self.reducer is not None,
                      dpor=isinstance(self.reducer, DynamicReducer),
                      symmetry=self.symmetry is not None,
                      atomic=self.atomic is not None,
                      compiled=self.stepper is not None,
                      memory_model=memmodel.name if memmodel else "tso"):
            result = self._explore(invariants, start)
            OBS.count("explorer.states_admitted", result.states_visited)
            OBS.count("explorer.transitions_taken",
                      result.transitions_taken)
            if self.atomic is not None:
                OBS.count("atomic.chains", self.atomic.stats.chains)
                OBS.count("atomic.micro_absorbed",
                          self.atomic.stats.micro_absorbed)
            return result

    def _explore(
        self,
        invariants: dict[str, Callable[[ProgramState], bool]] | None = None,
        start: ProgramState | None = None,
    ) -> ExplorationResult:
        machine = self.machine
        sym = self.symmetry
        sleep_sets = self.sleep
        initial = start if start is not None else machine.initial_state()
        if sym is not None:
            initial = sym.canonical(initial)
        result = ExplorationResult()
        stats_before = (
            dataclasses.replace(self.reducer.stats)
            if self.reducer is not None else None
        )
        sym_before = sym.canonicalized if sym is not None else 0
        seen: dict[ProgramState, ProgramState] = {initial: initial}
        reducer_seen = self._reducer_seen(seen)
        parents: dict[
            ProgramState, tuple[ProgramState, Transition] | None
        ] = {initial: None}
        frontier: deque[ProgramState] = deque((initial,))
        intern_hits = 0
        sleep_pruned = 0
        #: Per-state sleep sets and re-expansion bookkeeping (dynamic
        #: POR only).  A state re-reached with a smaller sleep set than
        #: it was expanded with is re-expanded on the intersection —
        #: sets only shrink, so this terminates.
        sleep: dict[ProgramState, frozenset] = (
            {initial: frozenset()} if sleep_sets is not None else {}
        )
        expanded: set[ProgramState] = set()
        queued: set[ProgramState] = {initial}
        while frontier:
            state = frontier.popleft()
            queued.discard(state)
            first = state not in expanded
            expanded.add(state)
            if first:
                result.states_visited += 1
                if invariants:
                    for name, predicate in invariants.items():
                        try:
                            holds = predicate(state)
                        except Exception:  # predicate crashed: failure
                            holds = False
                        if not holds:
                            result.violations.append(InvariantViolation(
                                state, name,
                                trace=_trace_to(parents, state),
                            ))
                if state.termination is not None:
                    result.final_outcomes.add(
                        (state.termination.kind, state.log)
                    )
                    if state.termination.kind == TERM_UB:
                        result.ub_reasons.append(state.termination.detail)
                        result.ub_traces.append(_trace_to(parents, state))
                    if state.termination.kind == "assert_failure":
                        result.assert_failures += 1
                    continue
            elif state.termination is not None:  # pragma: no cover
                continue
            transitions, computed = self._expand(state)
            if not transitions:
                if first:
                    result.final_outcomes.add(("deadlock", state.log))
                continue
            used, successors = self._successors(
                state, transitions, reducer_seen, computed
            )
            if sleep_sets is not None:
                active_idx, asleep = sleep_sets.split(
                    used, sleep.get(state, frozenset())
                )
                sleep_pruned += len(used) - len(active_idx)
                fp_cache: dict = {}
                carried: list[Transition] = list(asleep)
                for i in active_idx:
                    tr = used[i]
                    nxt = successors[i]
                    result.transitions_taken += 1
                    succ_sleep = sleep_sets.successor_sleep(
                        state, tr, carried, fp_cache
                    )
                    carried.append(tr)
                    if self.atomic is not None:
                        chained_tr, chained_nxt = self.atomic.chain(
                            tr, nxt
                        )
                        if chained_tr is not tr:
                            # The sleep set was derived for the
                            # pre-chain successor; drop it rather than
                            # carry it across the macro edge.
                            succ_sleep = frozenset()
                            tr, nxt = chained_tr, chained_nxt
                    if sym is not None:
                        canon = sym.canonical(nxt)
                        if canon is not nxt:
                            # Sleep entries name transitions by tid;
                            # the renaming invalidates them.
                            succ_sleep = frozenset()
                            nxt = canon
                    if nxt in seen:
                        intern_hits += 1
                        if nxt.termination is None:
                            stored = sleep.get(nxt, frozenset())
                            inter = stored & succ_sleep
                            if inter != stored:
                                sleep[nxt] = inter
                                if nxt in expanded and nxt not in queued:
                                    queued.add(nxt)
                                    frontier.append(nxt)
                        continue
                    if len(seen) >= self.max_states:
                        result.hit_state_budget = True
                        continue
                    seen[nxt] = nxt
                    sleep[nxt] = succ_sleep
                    parents[nxt] = (state, tr)
                    queued.add(nxt)
                    frontier.append(nxt)
                continue
            for tr, nxt in zip(used, successors):
                result.transitions_taken += 1
                if self.atomic is not None:
                    tr, nxt = self.atomic.chain(tr, nxt)
                if sym is not None:
                    nxt = sym.canonical(nxt)
                if nxt in seen:
                    intern_hits += 1
                    continue
                if len(seen) >= self.max_states:
                    result.hit_state_budget = True
                    continue
                seen[nxt] = nxt
                parents[nxt] = (state, tr)
                frontier.append(nxt)
        if OBS.enabled:
            OBS.count("explorer.intern_hits", intern_hits)
            if sleep_pruned:
                OBS.count("dpor.sleep_pruned", sleep_pruned)
        sym_merged = (sym.canonicalized - sym_before) if sym is not None \
            else 0
        if self.reducer is not None or sym is not None \
                or sleep_sets is not None:
            after = self.reducer.stats if self.reducer is not None else None
            result.por_stats = PorStats(
                ample_states=(
                    after.ample_states - stats_before.ample_states
                    if after is not None else 0
                ),
                full_states=(
                    after.full_states - stats_before.full_states
                    if after is not None else 0
                ),
                transitions_pruned=(
                    after.transitions_pruned
                    - stats_before.transitions_pruned
                    if after is not None else 0
                ),
                dynamic_states=(
                    after.dynamic_states - stats_before.dynamic_states
                    if after is not None else 0
                ),
                sleep_pruned=sleep_pruned,
                symmetry_merged=sym_merged,
            )
        if self.atomic is not None:
            result.atomic_stats = self.atomic.stats
        return result


def _trace_to(
    parents: dict, state: ProgramState
) -> tuple[Transition, ...]:
    """Walk the parent pointers back to the initial state.  Macro
    transitions recorded by the atomic lift are flattened back into
    their micro steps so the trace replays with plain ``next_state``."""
    trace: list[Transition] = []
    current = state
    while True:
        entry = parents[current]
        if entry is None:
            break
        current, transition = entry
        if isinstance(transition, MacroTransition):
            trace.extend(reversed(transition.micro))
        else:
            trace.append(transition)
    trace.reverse()
    return tuple(trace)


def canonical_replay(
    machine: StateMachine,
    trace: Iterable[Transition],
    symmetry: SymmetryReducer | None = None,
    start: ProgramState | None = None,
) -> ProgramState:
    """Replay *trace* from the initial state, canonicalizing after each
    step when *symmetry* is given — the replay discipline for traces
    recorded by a symmetry-reduced exploration (each recorded
    transition fired from a canonical representative)."""
    state = start if start is not None else machine.initial_state()
    if symmetry is not None:
        state = symmetry.canonical(state)
    for tr in trace:
        state = machine.next_state(state, tr)
        if symmetry is not None:
            state = symmetry.canonical(state)
    return state


def final_logs(
    machine: StateMachine,
    max_states: int = 2_000_000,
    por: AmpleReducer | bool | None = None,
    compiled: bool = True,
) -> set:
    """All (termination kind, log) outcomes of a machine's behaviours."""
    explorer = Explorer(machine, max_states, por=por, compiled=compiled)
    return explorer.explore().final_outcomes
