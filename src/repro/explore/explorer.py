"""Explicit-state exploration of Armada state machines.

The explorer enumerates every reachable state of a translated level
under all thread interleavings (including x86-TSO store-buffer drain
transitions), honouring atomic-region scheduling.  It is the bounded
model checker that discharges whole-program obligations in this
reproduction (see DESIGN.md: it plays the role Dafny/Z3 play in the
paper's toolchain, with bounded instead of unbounded guarantees).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.machine.program import StateMachine, Transition
from repro.machine.state import ProgramState, TERM_UB


@dataclass
class InvariantViolation:
    """A reachable state where a checked invariant failed."""

    state: ProgramState
    invariant_name: str
    trace: tuple[Transition, ...] = ()


@dataclass
class ExplorationResult:
    """Summary of a full (or budget-capped) exploration."""

    states_visited: int = 0
    transitions_taken: int = 0
    final_outcomes: set = field(default_factory=set)
    ub_reasons: list[str] = field(default_factory=list)
    assert_failures: int = 0
    violations: list[InvariantViolation] = field(default_factory=list)
    hit_state_budget: bool = False

    @property
    def has_ub(self) -> bool:
        return bool(self.ub_reasons)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.hit_state_budget


class Explorer:
    """Breadth-first enumeration of the reachable state space."""

    def __init__(
        self,
        machine: StateMachine,
        max_states: int = 2_000_000,
    ) -> None:
        self.machine = machine
        self.max_states = max_states

    def reachable_states(
        self, start: ProgramState | None = None
    ) -> Iterable[ProgramState]:
        """Yield every reachable state (deduplicated), BFS order."""
        machine = self.machine
        initial = start if start is not None else machine.initial_state()
        seen = {initial}
        frontier = [initial]
        while frontier:
            state = frontier.pop()
            yield state
            if len(seen) > self.max_states:
                return
            for transition in machine.enabled_transitions(state):
                nxt = machine.next_state(state, transition)
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)

    def walk(
        self,
        visit: Callable[[ProgramState, list[Transition]], bool],
        start: ProgramState | None = None,
    ) -> bool:
        """Visit every reachable state together with its enabled
        transitions (the ingredients of the analyzer's dynamic race
        scan).  *visit* returns ``False`` to stop early.  ``walk``
        returns ``True`` iff the bounded state space was covered
        completely: no early stop and no state-budget hit — only then
        may a caller treat the absence of a witness as a refutation.
        """
        machine = self.machine
        initial = start if start is not None else machine.initial_state()
        seen = {initial}
        frontier = [initial]
        while frontier:
            state = frontier.pop()
            transitions = machine.enabled_transitions(state)
            if visit(state, transitions) is False:
                return False
            if len(seen) > self.max_states:
                return False
            for transition in transitions:
                nxt = machine.next_state(state, transition)
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return True

    def explore(
        self,
        invariants: dict[str, Callable[[ProgramState], bool]] | None = None,
        start: ProgramState | None = None,
    ) -> ExplorationResult:
        """Explore exhaustively, checking *invariants* at every state."""
        machine = self.machine
        initial = start if start is not None else machine.initial_state()
        result = ExplorationResult()
        seen = {initial}
        frontier = [initial]
        while frontier:
            state = frontier.pop()
            result.states_visited += 1
            if invariants:
                for name, predicate in invariants.items():
                    try:
                        holds = predicate(state)
                    except Exception:  # predicate crashed: count as failure
                        holds = False
                    if not holds:
                        result.violations.append(
                            InvariantViolation(state, name)
                        )
            if state.termination is not None:
                result.final_outcomes.add(
                    (state.termination.kind, state.log)
                )
                if state.termination.kind == TERM_UB:
                    result.ub_reasons.append(state.termination.detail)
                if state.termination.kind == "assert_failure":
                    result.assert_failures += 1
                continue
            transitions = machine.enabled_transitions(state)
            if not transitions:
                result.final_outcomes.add(("deadlock", state.log))
                continue
            if len(seen) > self.max_states:
                result.hit_state_budget = True
                return result
            for transition in transitions:
                result.transitions_taken += 1
                nxt = machine.next_state(state, transition)
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return result


def final_logs(machine: StateMachine, max_states: int = 2_000_000) -> set:
    """All (termination kind, log) outcomes of a machine's behaviours."""
    return Explorer(machine, max_states).explore().final_outcomes
