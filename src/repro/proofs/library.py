"""The generic lemma library (§4, "Library").

"Our library of generic lemmas are useful in proving refinements
between programs.  Often, they are specific to a certain
correspondence."  Here the library has two faces:

* reusable *checkers* that strategies call to discharge obligations on a
  specific program pair (commutativity of two steps, inductiveness of an
  invariant, transitivity of a refinement relation, determinism of the
  annotated-behaviour ``NextState`` function);
* the rendered *library lemmas* themselves (:data:`LIBRARY_LEMMAS`),
  Dafny-like statements of the meta-theorems each checker instantiates
  (Cohen–Lamport reduction, rely-guarantee soundness, refinement
  transitivity), included once per proof for SLOC accounting.
"""

from __future__ import annotations

from typing import Callable

from repro.machine.program import StateMachine, Transition
from repro.machine.state import ProgramState


def steps_commute(
    machine: StateMachine,
    state: ProgramState,
    first: Transition,
    second: Transition,
) -> bool:
    """Do *first* (thread i) and *second* (thread j) commute at *state*?

    Uses encapsulated nondeterminism exactly as §4.2.1 describes: the
    alternate-universe intermediate state is ``NextState(s1, sigma_j)``,
    and the check is ``NextState(NextState(s1, sigma_j), sigma_i) == s3``
    — plus enabledness preservation in the commuted order.
    """
    if first.tid == second.tid:
        return True
    s2 = machine.next_state(state, first)
    if not s2.running:
        return False
    if not _transition_enabled(machine, s2, second):
        return False
    s3 = machine.next_state(s2, second)
    # Commuted order.
    if not _transition_enabled(machine, state, second):
        return False
    s2_alt = machine.next_state(state, second)
    if not s2_alt.running:
        return False
    if not _transition_enabled(machine, s2_alt, first):
        return False
    s3_alt = machine.next_state(s2_alt, first)
    return s3 == s3_alt


def right_mover_at(
    machine: StateMachine,
    state: ProgramState,
    mover: Transition,
    other: Transition,
) -> bool:
    """Right-mover check: if *mover* then *other* both fire from *state*,
    the same final state is reachable by *other* then *mover*."""
    if mover.tid == other.tid:
        return True
    s2 = machine.next_state(state, mover)
    if not s2.running:
        return True  # terminal: nothing follows the mover
    if not _transition_enabled(machine, s2, other):
        return True  # the pair never executes in this order here
    s3 = machine.next_state(s2, other)
    if not _transition_enabled(machine, state, other):
        return False
    s2_alt = machine.next_state(state, other)
    if not s2_alt.running:
        return False
    if not _transition_enabled(machine, s2_alt, mover):
        return False
    return machine.next_state(s2_alt, mover) == s3


def left_mover_at(
    machine: StateMachine,
    state: ProgramState,
    mover: Transition,
    other: Transition,
) -> bool:
    """Left-mover check: if *other* then *mover* both fire from *state*,
    the same final state is reachable by *mover* then *other*."""
    if mover.tid == other.tid:
        return True
    if not _transition_enabled(machine, state, other):
        return True
    s2 = machine.next_state(state, other)
    if not s2.running:
        return True
    if not _transition_enabled(machine, s2, mover):
        return True
    s3 = machine.next_state(s2, mover)
    if not _transition_enabled(machine, state, mover):
        return False
    s2_alt = machine.next_state(state, mover)
    if not s2_alt.running:
        return False
    if not _transition_enabled(machine, s2_alt, other):
        return False
    return machine.next_state(s2_alt, other) == s3


def _transition_enabled(
    machine: StateMachine, state: ProgramState, transition: Transition
) -> bool:
    """Whether *transition* (possibly computed at another state) is
    enabled at *state*."""
    if not state.running:
        return False
    thread = state.threads.get(transition.tid)
    if thread is None:
        return False
    if (
        state.atomic_owner is not None
        and state.atomic_owner != transition.tid
    ):
        return False
    if transition.is_drain:
        return machine.memmodel.env_enabled(
            state, transition.tid, transition.params, machine
        )
    if thread.pc != transition.step.pc:
        return False
    try:
        return transition.step.enabled(
            machine, state, transition.tid, transition.params_dict()
        )
    except Exception:
        return True


def invariant_inductive(
    machine: StateMachine,
    states: list[ProgramState],
    invariant: Callable[[ProgramState], bool],
) -> tuple[bool, ProgramState | None]:
    """Check an invariant over a reachable-state set: holds initially
    and is preserved by every transition (which, over the full reachable
    set, is exactly inductiveness relative to reachability)."""
    for state in states:
        if not invariant(state):
            return False, state
    return True, None


def relation_transitive(
    relation: Callable[[ProgramState, ProgramState], bool],
    triples: list[tuple[ProgramState, ProgramState, ProgramState]],
) -> bool:
    """Sampled check of the transitivity requirement on R (§3.1.3)."""
    for a, b, c in triples:
        if relation(a, b) and relation(b, c) and not relation(a, c):
            return False
    return True


#: Rendered library lemmas (the meta-theorems the checkers instantiate).
LIBRARY_LEMMAS: list[tuple[str, list[str]]] = [
    (
        "lemma RefinementTransitive(R: RefinementRelation)",
        [
            "  requires forall i, si, sj, sk ::",
            "    (si, sj) in R && (sj, sk) in R ==> (si, sk) in R",
            "  ensures BehaviorRefines(L0, LN) when each adjacent pair "
            "refines",
            "{ /* compose the per-level simulations end to end */ }",
        ],
    ),
    (
        "lemma AnnotatedBehaviorDeterminism()",
        [
            "  ensures forall s, step :: NextState(s, step) is a function",
            "{ /* all nondeterminism is encapsulated in step objects "
            "(sec. 4.1) */ }",
        ],
    ),
    (
        "lemma CohenLamportReduction()",
        [
            "  requires each phase-1 step commutes right across other "
            "threads",
            "  requires each phase-2 step commutes left across other "
            "threads",
            "  requires no step passes from phase 2 directly to phase 1",
            "  ensures sequences between yield points may be treated as "
            "atomic",
            "{ /* Cohen & Lamport, Reduction in TLA (CONCUR 1998) */ }",
        ],
    ),
    (
        "lemma RelyGuaranteeSoundness()",
        [
            "  requires every step of every thread maintains the "
            "guarantee",
            "  requires each thread's local proof tolerates the rely",
            "  ensures the postconditions hold in the concurrent "
            "composition",
            "{ /* Jones 1983; Liang, Feng & Fu 2012 */ }",
        ],
    ),
    (
        "lemma TsoElimination()",
        [
            "  requires an ownership predicate covers every access to "
            "the locations",
            "  requires releasing ownership implies an empty store "
            "buffer",
            "  ensures buffered assignments refine sequentially "
            "consistent ones",
            "{ /* data-race freedom implies SC for the owned locations "
            "(Adve & Hill 1990; Owens 2010) */ }",
        ],
    ),
]


def render_library_preamble() -> list[str]:
    lines = ["// Generic proof library (instantiated by this proof):"]
    for statement, body in LIBRARY_LEMMAS:
        lines.append(statement)
        lines.extend(body)
    return lines
