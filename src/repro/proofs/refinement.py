"""Developer-specified refinement relations (§3.1.3).

"The developer defines what [refinement] means via a refinement
relation (R). ... The developer writes R as an expression parameterized
over the low-level and high-level states."

A recipe may carry a ``relation "<expr>"`` directive.  Inside the
expression, ``low_<name>`` / ``high_<name>`` denote the value of global
(or ghost) variable ``<name>`` in the respective state, and ``low_log``
/ ``high_log`` denote the console logs (as ghost sequences).  Example::

    proof P {
      refinement Impl Spec
      weakening
      relation "low_log == high_log && low_count <= high_count"
    }

The engine conjoins the UB conjunct of §3.2.3 automatically, exactly as
for the default relation, and uses R for whole-program validation.
Transitivity of the written relation is the developer's obligation
(§3.1.3); :func:`repro.proofs.library.relation_transitive` spot-checks
it on sampled state triples during validation.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ProofFailure
from repro.lang import asts as ast
from repro.lang.astutil import free_vars
from repro.lang.parser import parse_expression
from repro.lang.resolver import LevelContext
from repro.machine.state import ProgramState
from repro.machine.values import CompositeValue, Location, Root
from repro.verifier.interp import interpret, is_undef

RefinementRelation = Callable[[ProgramState, ProgramState], bool]


def _global_value(
    ctx: LevelContext, state: ProgramState, name: str
) -> Any:
    """Fetch a global/ghost variable's value from *state* (globals read
    from memory — drained values only, the externally visible state)."""
    decl = ctx.globals.get(name)
    if decl is None:
        raise ProofFailure(f"refinement relation names unknown global "
                           f"{name}")
    if decl.ghost:
        return state.ghosts.get(name)
    root = Root("global", name)
    from repro.machine.values import leaf_locations

    leaves = leaf_locations(root, decl.var_type)
    if len(leaves) == 1:
        return state.memory.get(leaves[0][0])
    return CompositeValue(tuple(
        state.memory.get(loc) for loc, _ in leaves
    ))


def build_relation(
    text: str,
    low_ctx: LevelContext,
    high_ctx: LevelContext,
) -> RefinementRelation:
    """Compile a ``relation`` directive into an executable R."""
    expr = parse_expression(text)
    names = free_vars(expr)
    plan: list[tuple[str, str, str]] = []  # (var, side, global name)
    for name in sorted(names):
        if name == "low_log":
            plan.append((name, "low", "$log"))
        elif name == "high_log":
            plan.append((name, "high", "$log"))
        elif name.startswith("low_"):
            plan.append((name, "low", name[4:]))
        elif name.startswith("high_"):
            plan.append((name, "high", name[5:]))
        else:
            raise ProofFailure(
                f"refinement relation variable {name!r} must be "
                "prefixed with low_ or high_"
            )
    # Validate the named globals exist up front.
    for _, side, gname in plan:
        if gname == "$log":
            continue
        ctx = low_ctx if side == "low" else high_ctx
        if gname not in ctx.globals:
            raise ProofFailure(
                f"refinement relation names unknown {side}-level "
                f"global {gname}"
            )

    def relation(low: ProgramState, high: ProgramState) -> bool:
        env: dict[str, Any] = {}
        for var, side, gname in plan:
            state = low if side == "low" else high
            ctx = low_ctx if side == "low" else high_ctx
            if gname == "$log":
                env[var] = tuple(state.log)
            else:
                env[var] = _global_value(ctx, state, gname)
        try:
            value = interpret(expr, env)
        except KeyError:
            return False
        if is_undef(value):
            return False
        return bool(value)

    return relation


def relation_from_recipe(
    proof: ast.ProofDecl,
    low_ctx: LevelContext,
    high_ctx: LevelContext,
) -> RefinementRelation | None:
    """The recipe's ``relation`` directive compiled to R, or None."""
    items = proof.directives("relation")
    if not items:
        return None
    if not items[0].args:
        raise ProofFailure("relation directive requires an expression")
    return build_relation(items[0].args[0], low_ctx, high_ctx)
