"""Proof generation framework: artifacts, lemma library, and engine."""

from repro.proofs.artifacts import Lemma, ProofScript  # noqa: F401

__all__ = [
    "ChainOutcome",
    "Lemma",
    "ProofEngine",
    "ProofOutcome",
    "ProofScript",
    "verify_source",
]


def __getattr__(name):
    # The engine imports the strategy registry, which imports this
    # package for the artifact types; load it lazily to break the cycle.
    if name in ("ChainOutcome", "ProofEngine", "ProofOutcome",
                "verify_source"):
        from repro.proofs import engine

        return getattr(engine, name)
    raise AttributeError(name)
