"""The proof engine: runs recipes end to end (Figure 1).

For each ``proof`` declaration the engine translates both levels into
state machines, dispatches to the recipe's strategy to generate a
:class:`ProofScript`, mechanically checks every lemma obligation (the
role Dafny plays in the paper), runs any whole-program bounded
refinement checks the strategy requested, and finally composes the
per-pair results by refinement transitivity into the end-to-end theorem
"the implementation refines the specification".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import ArmadaError, ProofFailure, StrategyError
from repro.lang import asts as ast
from repro.lang.frontend import CheckedProgram, check_program
from repro.machine.program import DomainConfig, StateMachine
from repro.machine.translator import translate_level
from repro.proofs.artifacts import Lemma, ProofScript, bool_verdict
from repro.strategies.base import ProofRequest
from repro.strategies.registry import lookup
from repro.strategies.regions import (
    address_invariant_lemmas,
    region_lemmas,
)
from repro.verifier.prover import Prover


@dataclass
class ProofOutcome:
    """Result of running one refinement recipe."""

    proof_name: str
    strategy: str
    success: bool
    script: ProofScript | None = None
    error: str | None = None
    refinement_checked: bool = False
    elapsed_seconds: float = 0.0

    @property
    def generated_sloc(self) -> int:
        return self.script.sloc() if self.script is not None else 0

    @property
    def lemma_count(self) -> int:
        return len(self.script.lemmas) if self.script is not None else 0


@dataclass
class ChainOutcome:
    """Result of running every recipe of a program and composing them."""

    outcomes: list[ProofOutcome] = field(default_factory=list)
    chain: list[str] = field(default_factory=list)
    end_to_end: bool = False

    @property
    def success(self) -> bool:
        return all(o.success for o in self.outcomes) and bool(self.outcomes)

    @property
    def total_generated_sloc(self) -> int:
        return sum(o.generated_sloc for o in self.outcomes)


class ProofEngine:
    """Drives proof generation and checking for one Armada program."""

    def __init__(
        self,
        checked: CheckedProgram,
        prover: Prover | None = None,
        max_states: int = 200_000,
        domains: DomainConfig | None = None,
        validate_refinement: str = "auto",
    ) -> None:
        """``validate_refinement``: ``"always"`` runs the whole-program
        bounded simulation check for every pair, ``"auto"`` only when a
        strategy requests it (``global_checks``), ``"never"`` trusts the
        per-lemma obligations alone."""
        self.checked = checked
        self.prover = prover or Prover()
        self.max_states = max_states
        self.domains = domains
        self.validate_refinement = validate_refinement
        self._machines: dict[str, StateMachine] = {}

    # ------------------------------------------------------------------

    def machine(self, level_name: str) -> StateMachine:
        if level_name not in self._machines:
            ctx = self.checked.contexts.get(level_name)
            if ctx is None:
                raise ProofFailure(f"unknown level {level_name}")
            machine = translate_level(ctx)
            if self.domains is not None:
                machine.domains = self.domains
            self._machines[level_name] = machine
        return self._machines[level_name]

    # ------------------------------------------------------------------

    def run_proof(self, proof: ast.ProofDecl) -> ProofOutcome:
        started = time.perf_counter()
        try:
            strategy = lookup(proof.strategy.name)
            for level_name in (proof.low_level, proof.high_level):
                if level_name not in self.checked.contexts:
                    raise ProofFailure(
                        f"proof {proof.name} names unknown level "
                        f"{level_name}"
                    )
            request = ProofRequest(
                proof=proof,
                low_ctx=self.checked.contexts[proof.low_level],
                high_ctx=self.checked.contexts[proof.high_level],
                low_machine=self.machine(proof.low_level),
                high_machine=self.machine(proof.high_level),
                prover=self.prover,
                max_states=self.max_states,
            )
            script = strategy.generate(request)
            self._apply_directives(proof, request, script)
            self._check_lemmas(script)
            refinement_checked = self._maybe_validate(proof, script)
            failed = script.failed_lemmas()
            if failed:
                details = "; ".join(
                    f"{lemma.name}: " + (
                        str(lemma.verdict.counterexample)
                        if lemma.verdict is not None
                        else "unchecked"
                    )
                    for lemma in failed[:3]
                )
                return ProofOutcome(
                    proof.name, proof.strategy.name, False, script,
                    f"verification failed: {details}",
                    refinement_checked,
                    time.perf_counter() - started,
                )
            return ProofOutcome(
                proof.name, proof.strategy.name, True, script, None,
                refinement_checked, time.perf_counter() - started,
            )
        except StrategyError as error:
            return ProofOutcome(
                proof.name, proof.strategy.name, False, None,
                f"correspondence error: {error.message}",
                False, time.perf_counter() - started,
            )
        except ArmadaError as error:
            return ProofOutcome(
                proof.name, proof.strategy.name, False, None,
                str(error), False, time.perf_counter() - started,
            )

    # ------------------------------------------------------------------

    def _apply_directives(
        self,
        proof: ast.ProofDecl,
        request: ProofRequest,
        script: ProofScript,
    ) -> None:
        if proof.has_directive("use_regions"):
            for lemma in region_lemmas(request.low_ctx):
                script.add(lemma)
        if proof.has_directive("use_address_invariant"):
            for lemma in address_invariant_lemmas(request.low_ctx):
                script.add(lemma)
        for item in proof.directives("lemma"):
            # Lemma customization (§4.1.2): developer-supplied text is
            # appended to the named lemma (or the last one).
            target_name = item.args[0] if item.args else ""
            text = item.args[1] if len(item.args) > 1 else target_name
            target = next(
                (l for l in script.lemmas if l.name == target_name),
                script.lemmas[-1] if script.lemmas else None,
            )
            if target is not None:
                target.customization.append(text)

    def _check_lemmas(self, script: ProofScript) -> None:
        for lemma in script.lemmas:
            if lemma.obligation is None:
                continue
            try:
                lemma.verdict = lemma.obligation()
            except ArmadaError as error:
                lemma.verdict = bool_verdict(False, {"error": str(error)})

    def _maybe_validate(
        self, proof: ast.ProofDecl, script: ProofScript
    ) -> bool:
        should = self.validate_refinement == "always" or (
            self.validate_refinement == "auto" and script.global_checks
        )
        if not should:
            return False
        from repro.explore.refinement_check import check_refinement
        from repro.proofs.refinement import relation_from_recipe

        relation = relation_from_recipe(
            proof,
            self.checked.contexts[proof.low_level],
            self.checked.contexts[proof.high_level],
        )
        result = check_refinement(
            self.machine(proof.low_level),
            self.machine(proof.high_level),
            relation=relation,
            max_product_states=self.max_states,
        )
        script.add(
            Lemma(
                name="WholeProgramRefinement",
                statement=(
                    f"every finite behavior of {proof.low_level} "
                    f"simulates a behavior of {proof.high_level} "
                    "modulo stuttering (bounded check)"
                ),
                body=[
                    f"// product states explored: {result.product_states}"
                ]
                + [f"// discharges: {reason}"
                   for reason in script.global_checks]
                + (
                    [
                        "// counterexample trace: "
                        + result.counterexample.format_trace()
                    ]
                    if result.counterexample is not None
                    else []
                ),
                obligation=None,
                verdict=bool_verdict(
                    result.holds,
                    result.counterexample.description
                    if result.counterexample
                    else None,
                ),
            )
        )
        if not result.holds:
            script.lemmas[-1].obligation = lambda: bool_verdict(False)
        return True

    # ------------------------------------------------------------------

    def run_all(self) -> ChainOutcome:
        """Run every proof and compose the chain by transitivity."""
        chain_outcome = ChainOutcome()
        for proof in self.checked.program.proofs:
            chain_outcome.outcomes.append(self.run_proof(proof))
        chain_outcome.chain = self._compose_chain()
        chain_outcome.end_to_end = (
            chain_outcome.success and len(chain_outcome.chain) >= 2
        )
        return chain_outcome

    def _compose_chain(self) -> list[str]:
        """Order the levels by following the proofs' low→high edges from
        the level that is never a high side (the implementation)."""
        edges = {
            p.low_level: p.high_level
            for p in self.checked.program.proofs
        }
        highs = set(edges.values())
        starts = [low for low in edges if low not in highs]
        if len(starts) != 1:
            return []
        chain = [starts[0]]
        while chain[-1] in edges:
            nxt = edges[chain[-1]]
            if nxt in chain:
                return []  # cycle
            chain.append(nxt)
        return chain


def verify_source(
    source: str,
    filename: str = "<armada>",
    max_states: int = 200_000,
    validate_refinement: str = "auto",
) -> ChainOutcome:
    """Parse, check, and verify a complete Armada program text."""
    checked = check_program(source, filename)
    engine = ProofEngine(
        checked, max_states=max_states,
        validate_refinement=validate_refinement,
    )
    return engine.run_all()
