"""The proof engine: runs recipes end to end (Figure 1).

For each ``proof`` declaration the engine translates both levels into
state machines, dispatches to the recipe's strategy to generate a
:class:`ProofScript`, mechanically checks every lemma obligation (the
role Dafny plays in the paper), runs any whole-program bounded
refinement checks the strategy requested, and finally composes the
per-pair results by refinement transitivity into the end-to-end theorem
"the implementation refines the specification".

Obligation checking is delegated to the verification farm
(:mod:`repro.farm`): every lemma obligation across every proof of a
chain — plus the whole-program refinement checks — is collected into a
job queue with stable content-addressed keys, then discharged through a
cache and a worker pool.  A default farm (one worker, no cache)
reproduces the historical sequential behaviour exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import (
    ArmadaError,
    InconclusiveCheck,
    ProofFailure,
    StrategyError,
)
from repro.farm import VerificationFarm, global_check_job, lemma_jobs
from repro.farm.scheduler import Job
from repro.lang import asts as ast
from repro.lang.frontend import CheckedProgram, check_program
from repro.machine.program import DomainConfig, StateMachine
from repro.machine.translator import translate_level
from repro.obs import OBS
from repro.proofs.artifacts import Lemma, ProofScript, bool_verdict
from repro.strategies.base import ProofRequest
from repro.strategies.registry import lookup
from repro.strategies.regions import (
    address_invariant_lemmas,
    region_lemmas,
)
from repro.verifier.prover import Prover


@dataclass
class ProofOutcome:
    """Result of running one refinement recipe."""

    proof_name: str
    strategy: str
    success: bool
    script: ProofScript | None = None
    error: str | None = None
    refinement_checked: bool = False
    elapsed_seconds: float = 0.0
    #: Every unproved lemma timed out or was abandoned (UNKNOWN): the
    #: proof is *inconclusive* — not refuted — and a re-run with a
    #: bigger deadline or a healthier farm may still settle it.
    inconclusive: bool = False
    #: Reused wholesale from an outcome cache (incremental
    #: re-verification): neither levels, recipe, prover budget, nor
    #: toolchain changed since this outcome was computed, so no
    #: obligation was re-discharged.
    from_cache: bool = False

    @property
    def generated_sloc(self) -> int:
        return self.script.sloc() if self.script is not None else 0

    @property
    def lemma_count(self) -> int:
        return len(self.script.lemmas) if self.script is not None else 0


@dataclass
class ChainOutcome:
    """Result of running every recipe of a program and composing them."""

    outcomes: list[ProofOutcome] = field(default_factory=list)
    chain: list[str] = field(default_factory=list)
    end_to_end: bool = False
    #: Why the level chain failed to compose (broken, cyclic, or
    #: disconnected proof graph); None when ``chain`` is valid.
    chain_error: str | None = None
    #: Static-analyzer observations about the recipes (``--analyze``):
    #: RACY locations named by tso_elim recipes, validated ownership
    #: suggestions, and fast-path discharges.  Empty when analysis is
    #: off.
    analysis_notes: list[str] = field(default_factory=list)
    #: Aggregate ample-set reduction statistics across every state sweep
    #: the proofs performed (``--por``); None when reduction is off or
    #: no strategy enumerated states.
    por_summary: str | None = None

    @property
    def success(self) -> bool:
        return all(o.success for o in self.outcomes) and bool(self.outcomes)

    @property
    def inconclusive(self) -> bool:
        """The chain did not verify, but nothing was refuted either:
        every non-successful proof is inconclusive (timeouts/UNKNOWNs).
        Callers must not report this as 'the program is wrong'."""
        return (
            not self.success
            and bool(self.outcomes)
            and all(
                o.success or o.inconclusive for o in self.outcomes
            )
        )

    @property
    def status(self) -> str:
        """``verified`` / ``inconclusive`` / ``failed``."""
        if self.success:
            return "verified"
        if self.inconclusive:
            return "inconclusive"
        return "failed"

    @property
    def total_generated_sloc(self) -> int:
        return sum(o.generated_sloc for o in self.outcomes)


@dataclass
class _PreparedProof:
    """One proof between script generation and outcome finalization."""

    proof: ast.ProofDecl
    script: ProofScript | None = None
    #: Early failure (strategy/correspondence error): finalize returns
    #: this outcome untouched and no jobs are scheduled.
    outcome: ProofOutcome | None = None
    refinement_checked: bool = False
    validation_error: str | None = None
    #: The validation obligation never settled (drain/deadline): the
    #: proof is inconclusive, not failed.
    validation_inconclusive: bool = False
    prepare_seconds: float = 0.0
    jobs: list[Job] = field(default_factory=list)


class ProofEngine:
    """Drives proof generation and checking for one Armada program."""

    def __init__(
        self,
        checked: CheckedProgram,
        prover: Prover | None = None,
        max_states: int = 200_000,
        domains: DomainConfig | None = None,
        validate_refinement: str = "auto",
        farm: VerificationFarm | None = None,
        analyze: bool = False,
        por: "bool | str" = False,
        outcome_cache: "object | None" = None,
        memory_model: str | None = None,
        compiled: bool = True,
        atomic: bool = False,
    ) -> None:
        """``validate_refinement``: ``"always"`` runs the whole-program
        bounded simulation check for every pair, ``"auto"`` only when a
        strategy requests it (``global_checks``), ``"never"`` trusts the
        per-lemma obligations alone.

        ``farm``: the verification farm obligations are discharged
        through; defaults to a sequential, uncached farm.

        ``analyze``: run the static race/TSO-robustness analyzer over
        each proof's low level, attach the result to the strategy's
        :class:`ProofRequest` (enabling fast paths such as tso_elim's
        trivial discharge for provably thread-local locations), and
        collect recipe advisories into ``ChainOutcome.analysis_notes``.

        ``por``: enable partial-order reduction for the state sweeps
        obligations perform.  Off by default — sound for every
        property over multithreaded shared state, but an obligation
        predicate may quantify over intermediate private-thread
        configurations that reduction elides (see
        :mod:`repro.explore.por`).  ``True`` selects the static ample
        rule; the string ``"dynamic"`` selects the dynamic reducer
        (:mod:`repro.explore.dpor`), which observes footprints at
        exploration time.  The mode is part of the farm cache
        fingerprint, so differently-reduced verdicts never mix.

        ``outcome_cache``: an object with ``get(key) -> ProofOutcome |
        None`` and ``put(key, outcome)`` (see
        :class:`repro.serve.incremental.OutcomeCache`).  When a proof's
        :meth:`proof_key` hits, the stored outcome is reused wholesale
        — no script generation, no obligation discharge, no
        whole-program check — which is how ``armada serve`` re-verifies
        only the proofs a resubmission invalidated.  Only *settled*
        outcomes (verified, or failed with a refutation) are stored:
        an inconclusive outcome must be retried, never pinned.

        ``memory_model``: which memory model every level's machine runs
        under (``sc`` / ``tso`` / ``ra``; default ``tso``).  Part of
        every cache fingerprint — level fingerprints, job fingerprints
        and proof keys all change with the model, so a verdict obtained
        under one model is never replayed for another.

        ``atomic``: apply the regular-to-atomic transformation
        (:mod:`repro.strategies.regular_to_atomic`).  Obligation state
        sweeps run under the atomic lift (hidden states agree with
        their chain end on all shared state), and each generated
        script's consecutive statement lemmas along non-breaking runs
        collapse into single atomic-block obligations — the same
        checks run, but the farm schedules strictly fewer jobs.  Part
        of the cache fingerprint; self-disables per level when the
        classification is unavailable (C11 RA).
        """
        from repro.memmodel import get_model

        self.checked = checked
        self.memory_model = get_model(memory_model).name
        self.prover = prover or Prover()
        self.max_states = max_states
        self.domains = domains
        self.validate_refinement = validate_refinement
        self.farm = farm or VerificationFarm()
        self.analyze = analyze
        self.por = por
        # Compiled step specialization for every state sweep (bounded
        # obligations, analyzer cross-checks).  Bit-identical to the
        # interpreter, so deliberately NOT part of any cache
        # fingerprint.
        self.compiled = compiled
        self.atomic = atomic
        self.outcome_cache = outcome_cache
        self._level_fingerprints: dict[str, str] = {}
        self._machines: dict[str, StateMachine] = {}
        self._analyses: dict[str, "object"] = {}
        self._analysis_notes: list[str] = []
        self._requests: list[ProofRequest] = []

    # ------------------------------------------------------------------

    def machine(self, level_name: str) -> StateMachine:
        if level_name not in self._machines:
            ctx = self.checked.contexts.get(level_name)
            if ctx is None:
                raise ProofFailure(f"unknown level {level_name}")
            machine = translate_level(ctx, memory_model=self.memory_model)
            if self.domains is not None:
                machine.domains = self.domains
            self._machines[level_name] = machine
        return self._machines[level_name]

    def analysis(self, level_name: str):
        """The analyzer's result for one level, cached like machines."""
        if level_name not in self._analyses:
            from repro.analysis import analyze_level

            ctx = self.checked.contexts.get(level_name)
            if ctx is None:
                raise ProofFailure(f"unknown level {level_name}")
            self._analyses[level_name] = analyze_level(
                ctx,
                machine=self.machine(level_name),
                max_states=self.max_states,
                memory_model=self.memory_model,
                compiled=self.compiled,
            )
        return self._analyses[level_name]

    def _recipe_advisories(self, proof: ast.ProofDecl, analysis) -> list[str]:
        """What the analyzer has to say about one recipe."""
        notes: list[str] = []
        if proof.strategy.name != "tso_elim" or not proof.strategy.args:
            return notes
        varname = proof.strategy.args[0]
        verdict = analysis.verdict(varname)
        if verdict is None:
            return notes
        prefix = f"analysis[{proof.name}]"
        if varname in analysis.racy():
            note = (
                f"{prefix}: WARNING — tso_elim targets {varname}, which "
                f"the analyzer classifies RACY in {proof.low_level}"
            )
            if verdict.witness is not None:
                note += f" (witness: {verdict.witness.describe()})"
            notes.append(note)
            return notes
        if analysis.is_provably_thread_local(varname):
            notes.append(
                f"{prefix}: {varname} is provably thread-local; "
                "ownership obligations discharged without state "
                "enumeration"
            )
            return notes
        suggestion = analysis.suggestion_for(varname)
        if suggestion is not None and suggestion.predicate is not None:
            recipe_predicate = (
                proof.strategy.args[1]
                if len(proof.strategy.args) > 1 else None
            )
            if recipe_predicate != suggestion.predicate:
                notes.append(
                    f"{prefix}: validated ownership predicate "
                    f'available: tso_elim {varname} '
                    f'"{suggestion.predicate}"'
                )
            else:
                notes.append(
                    f"{prefix}: recipe predicate "
                    f'"{suggestion.predicate}" matches the '
                    "analyzer's validated suggestion"
                )
        return notes

    # ------------------------------------------------------------------

    def run_proof(self, proof: ast.ProofDecl) -> ProofOutcome:
        prep = self._prepare(proof)
        if prep.outcome is None:
            self.farm.discharge(self._schedule(prep))
        return self._finalize(prep)

    # ------------------------------------------------------------------

    def _prepare(self, proof: ast.ProofDecl) -> _PreparedProof:
        """Generate the proof script (no obligation is checked yet)."""
        with OBS.span(proof.name, "proof", low=proof.low_level,
                      high=proof.high_level,
                      strategy=proof.strategy.name,
                      memory_model=self.memory_model):
            return self._prepare_inner(proof)

    def _prepare_inner(self, proof: ast.ProofDecl) -> _PreparedProof:
        started = time.perf_counter()
        prep = _PreparedProof(proof)
        try:
            strategy = lookup(proof.strategy.name)
            for level_name in (proof.low_level, proof.high_level):
                if level_name not in self.checked.contexts:
                    raise ProofFailure(
                        f"proof {proof.name} names unknown level "
                        f"{level_name}"
                    )
            request = ProofRequest(
                proof=proof,
                low_ctx=self.checked.contexts[proof.low_level],
                high_ctx=self.checked.contexts[proof.high_level],
                low_machine=self.machine(proof.low_level),
                high_machine=self.machine(proof.high_level),
                prover=self.prover,
                max_states=self.max_states,
                por=self.por,
                compiled=self.compiled,
                atomic=self.atomic,
            )
            self._requests.append(request)
            if self.analyze:
                request.analysis = self.analysis(proof.low_level)
                self._analysis_notes.extend(
                    self._recipe_advisories(proof, request.analysis)
                )
            with OBS.span(proof.strategy.name, "strategy",
                          proof=proof.name):
                script = strategy.generate(request)
            self._apply_directives(proof, request, script)
            if self.atomic:
                self._collapse_atomic(proof, request, script)
            prep.script = script
            if OBS.enabled:
                OBS.count("engine.lemmas_generated", len(script.lemmas))
        except StrategyError as error:
            prep.outcome = ProofOutcome(
                proof.name, proof.strategy.name, False, None,
                f"correspondence error: {error.message}",
                False, time.perf_counter() - started,
            )
        except ArmadaError as error:
            prep.outcome = ProofOutcome(
                proof.name, proof.strategy.name, False, None,
                str(error), False, time.perf_counter() - started,
            )
        prep.prepare_seconds = time.perf_counter() - started
        return prep

    def _collapse_atomic(self, proof, request, script) -> None:
        """Merge consecutive statement obligations along non-breaking
        pc runs into single atomic-block lemmas (regular-to-atomic,
        sec. 4.2.2).  Runs *after* ``_apply_directives`` so recipe
        ``lemma`` directives still see the original names; the merged
        lemma carries every member's customization.  A no-op when the
        level's classification is unavailable (e.g. under C11 RA)."""
        from repro.explore.atomic import classify_atomic
        from repro.strategies.regular_to_atomic import (
            collapse_proof_script,
        )

        classification = classify_atomic(self.machine(proof.low_level))
        if not classification.enabled:
            return
        absorbed = collapse_proof_script(script, classification)
        if OBS.enabled and absorbed:
            OBS.count("atomic.lemmas_collapsed", absorbed)

    def _job_fingerprint(self) -> str:
        """Everything beyond lemma content that can change a verdict."""
        domains = self.domains
        if domains is None:
            domain_part = "default-domains"
        else:
            overrides = sorted(
                (repr(k), repr(v)) for k, v in domains.overrides.items()
            )
            domain_part = (
                f"{domains.bool_values}:{domains.int_values}:"
                f"{domains.newframe_int_values}:{overrides}"
            )
        return (
            f"{self.prover.fingerprint()}|max_states={self.max_states}"
            f"|por={self.por if isinstance(self.por, str) else ('on' if self.por else 'off')}"
            f"|atomic={'on' if self.atomic else 'off'}"
            f"|mm={self.memory_model}|{domain_part}"
        )

    def level_fingerprint(self, level_name: str) -> str:
        """Position-free fingerprint of one level's machine semantics.

        The rendered definitions cover PCs, datatypes, and step
        effects; global initial values are appended separately because
        the renderer omits them.  This is the unit of incremental
        re-verification: a proof's cache keys change exactly when one
        of its two levels' fingerprints does, so editing one level of a
        chain invalidates only the proofs that touch it.
        """
        cached = self._level_fingerprints.get(level_name)
        if cached is not None:
            return cached
        from repro.farm.cache import structural_hash
        from repro.lang.astutil import expr_to_str
        from repro.proofs.render import render_machine_definitions

        ctx = self.checked.contexts.get(level_name)
        if ctx is None:
            raise ProofFailure(f"unknown level {level_name}")
        inits = [
            f"{g.name}:"
            f"{expr_to_str(g.init) if g.init is not None else '*'}"
            for g in ctx.level.globals
        ]
        fingerprint = structural_hash(
            "machine-level",
            level_name,
            self.memory_model,
            "\n".join(render_machine_definitions(self.machine(level_name))),
            inits,
        )
        self._level_fingerprints[level_name] = fingerprint
        return fingerprint

    def level_fingerprints(self) -> dict[str, str]:
        """Fingerprints for every level of the program, by name — what
        the serve daemon diffs against its index to decide which
        proofs a resubmission invalidated."""
        return {
            level.name: self.level_fingerprint(level.name)
            for level in self.checked.program.levels
        }

    def _machine_fingerprint(self, proof: ast.ProofDecl) -> str:
        """Fingerprint of both levels' semantics.

        Reachability-based obligations (rely-guarantee path lemmas,
        ownership predicates, phase invariants) quantify over the whole
        machine's reachable states, not only over the text of their
        lemma, so the cache key must change whenever either machine
        does.
        """
        from repro.farm.cache import structural_hash

        return structural_hash(
            "machine-pair",
            self.level_fingerprint(proof.low_level),
            self.level_fingerprint(proof.high_level),
        )

    def proof_key(self, proof: ast.ProofDecl) -> str:
        """Content address of one proof's *entire outcome*.

        Covers everything that can change any verdict the proof
        produces: both machines' semantics (level fingerprints), the
        full recipe (strategy, arguments, every directive — lemma
        customizations included), the prover/exploration configuration
        (:meth:`_job_fingerprint`, which also covers POR and domains),
        the refinement-validation policy (it decides whether the
        whole-program check runs), and the toolchain version.  Two runs
        with equal keys perform byte-identical obligation checks, so
        reusing the stored :class:`ProofOutcome` — the basis of
        ``armada serve``'s incremental re-verification — is sound even
        for the whole-program bounded checks the lemma cache cannot
        cover.
        """
        from repro.farm.cache import code_version, structural_hash

        recipe = [
            (item.name, list(item.args)) for item in proof.items
        ]
        return structural_hash(
            "proof-outcome",
            proof.name,
            proof.low_level,
            proof.high_level,
            recipe,
            self.level_fingerprint(proof.low_level),
            self.level_fingerprint(proof.high_level),
            self._job_fingerprint(),
            self.validate_refinement,
            "analyze" if self.analyze else "no-analyze",
            code_version(),
        )

    def _schedule(self, prep: _PreparedProof) -> list[Job]:
        """Collect this proof's checkable units into farm jobs."""
        script = prep.script
        assert script is not None
        fingerprint = (
            f"{self._job_fingerprint()}"
            f"|{self._machine_fingerprint(prep.proof)}"
        )
        jobs = lemma_jobs(script, fingerprint)
        should_validate = self.validate_refinement == "always" or (
            self.validate_refinement == "auto" and script.global_checks
        )
        if should_validate:
            jobs.append(self._global_check_job(prep))
            prep.refinement_checked = True
        prep.jobs = jobs
        return jobs

    def _global_check_job(self, prep: _PreparedProof) -> Job:
        proof = prep.proof
        script = prep.script
        low_machine = self.machine(proof.low_level)
        high_machine = self.machine(proof.high_level)
        low_ctx = self.checked.contexts[proof.low_level]
        high_ctx = self.checked.contexts[proof.high_level]
        max_states = self.max_states

        def thunk():
            from repro.explore.refinement_check import check_refinement
            from repro.proofs.refinement import relation_from_recipe

            try:
                relation = relation_from_recipe(proof, low_ctx, high_ctx)
                return check_refinement(
                    low_machine,
                    high_machine,
                    relation=relation,
                    max_product_states=max_states,
                )
            except ArmadaError as error:
                return error

        def apply(result) -> None:
            if isinstance(result, ArmadaError):
                prep.validation_error = str(result)
                prep.validation_inconclusive = isinstance(
                    result, InconclusiveCheck
                )
                return
            script.add(
                Lemma(
                    name="WholeProgramRefinement",
                    statement=(
                        f"every finite behavior of {proof.low_level} "
                        f"simulates a behavior of {proof.high_level} "
                        "modulo stuttering (bounded check)"
                    ),
                    body=[
                        "// product states explored: "
                        f"{result.product_states}"
                    ]
                    + [f"// discharges: {reason}"
                       for reason in script.global_checks]
                    + (
                        [
                            "// counterexample trace: "
                            + result.counterexample.format_trace()
                        ]
                        if result.counterexample is not None
                        else []
                    ),
                    obligation=(
                        (lambda: bool_verdict(False))
                        if not result.holds else None
                    ),
                    verdict=bool_verdict(
                        result.holds,
                        result.counterexample.description
                        if result.counterexample
                        else None,
                    ),
                )
            )

        return global_check_job(proof.name, thunk, apply)

    def _finalize(self, prep: _PreparedProof) -> ProofOutcome:
        """Fold checked verdicts into this proof's outcome."""
        if prep.outcome is not None:
            return prep.outcome
        proof = prep.proof
        script = prep.script
        elapsed = prep.prepare_seconds + sum(
            job.wall_seconds for job in prep.jobs
        )
        if prep.validation_error is not None:
            return ProofOutcome(
                proof.name, proof.strategy.name, False, None,
                prep.validation_error, False, elapsed,
                inconclusive=prep.validation_inconclusive,
            )
        failed = script.failed_lemmas()
        if failed:
            details = "; ".join(
                f"{lemma.name}: " + (
                    str(lemma.verdict.counterexample)
                    if lemma.verdict is not None
                    else "unchecked"
                )
                for lemma in failed[:3]
            )
            # If nothing was actually refuted — every unproved lemma
            # timed out or was abandoned — the proof is inconclusive,
            # not failed: a refutation claims the program is wrong, a
            # timeout only says the farm ran out of budget.
            if all(
                lemma.verdict is not None and lemma.verdict.inconclusive
                for lemma in failed
            ):
                return ProofOutcome(
                    proof.name, proof.strategy.name, False, script,
                    f"inconclusive: {details}",
                    prep.refinement_checked, elapsed,
                    inconclusive=True,
                )
            return ProofOutcome(
                proof.name, proof.strategy.name, False, script,
                f"verification failed: {details}",
                prep.refinement_checked, elapsed,
            )
        return ProofOutcome(
            proof.name, proof.strategy.name, True, script, None,
            prep.refinement_checked, elapsed,
        )

    # ------------------------------------------------------------------

    def _apply_directives(
        self,
        proof: ast.ProofDecl,
        request: ProofRequest,
        script: ProofScript,
    ) -> None:
        if proof.has_directive("use_regions"):
            for lemma in region_lemmas(request.low_ctx):
                script.add(lemma)
        if proof.has_directive("use_address_invariant"):
            for lemma in address_invariant_lemmas(request.low_ctx):
                script.add(lemma)
        for item in proof.directives("lemma"):
            # Lemma customization (§4.1.2): developer-supplied text is
            # appended to the named lemma (or the last one).
            target_name = item.args[0] if item.args else ""
            text = item.args[1] if len(item.args) > 1 else target_name
            target = next(
                (l for l in script.lemmas if l.name == target_name),
                script.lemmas[-1] if script.lemmas else None,
            )
            if target is not None:
                target.customization.append(text)

    def _check_lemmas(
        self, script: ProofScript, proof: ast.ProofDecl | None = None
    ) -> None:
        """Discharge one script's lemma obligations through the farm."""
        fingerprint = self._job_fingerprint()
        if proof is not None:
            fingerprint += f"|{self._machine_fingerprint(proof)}"
        self.farm.discharge(lemma_jobs(script, fingerprint))

    # ------------------------------------------------------------------

    def run_all(self) -> ChainOutcome:
        """Run every proof and compose the chain by transitivity.

        Script generation stays per-proof, but the obligations of *all*
        proofs are collected into one farm batch, so a multi-worker
        farm parallelises across the entire chain.
        """
        import dataclasses

        levels = self.checked.program.levels
        chain_name = levels[0].name if levels else "chain"
        with OBS.span(chain_name, "chain",
                      levels=len(levels),
                      proofs=len(self.checked.program.proofs),
                      memory_model=self.memory_model):
            # Incremental re-verification: a proof whose outcome key
            # hits the cache is reused wholesale — its levels, recipe,
            # prover budget, and toolchain are all unchanged, so
            # re-running it would perform byte-identical checks.  Only
            # the invalidated proofs are prepared and discharged.
            entries: list[tuple[_PreparedProof | None, ProofOutcome | None]] = []
            batch: list[Job] = []
            for proof in self.checked.program.proofs:
                reused = None
                if self.outcome_cache is not None:
                    reused = self.outcome_cache.get(self.proof_key(proof))
                if reused is not None:
                    entries.append((None, dataclasses.replace(
                        reused, from_cache=True, elapsed_seconds=0.0,
                    )))
                    if OBS.enabled:
                        OBS.count("engine.proofs_reused")
                    continue
                prep = self._prepare(proof)
                entries.append((prep, None))
                if prep.outcome is None:
                    batch.extend(self._schedule(prep))
            self.farm.discharge(batch)
        chain_outcome = ChainOutcome(
            analysis_notes=list(self._analysis_notes),
            por_summary=self._por_summary(),
        )
        for prep, reused in entries:
            if reused is not None:
                chain_outcome.outcomes.append(reused)
                continue
            outcome = self._finalize(prep)
            chain_outcome.outcomes.append(outcome)
            # Inconclusive outcomes (timeouts, drains, abandoned
            # obligations) are environment-dependent and must be
            # retried by the next run, never pinned.
            if self.outcome_cache is not None and not outcome.inconclusive:
                self.outcome_cache.put(
                    self.proof_key(prep.proof), outcome
                )
        chain, chain_error = self._compose_chain()
        chain_outcome.chain = chain
        chain_outcome.chain_error = chain_error
        chain_outcome.end_to_end = (
            chain_outcome.success and len(chain_outcome.chain) >= 2
        )
        return chain_outcome

    def _por_summary(self) -> str | None:
        """Merge ample-set statistics from every request's reducers."""
        if not self.por:
            return None
        from repro.explore.por import PorStats

        merged = PorStats()
        seen_reducer = False
        for request in self._requests:
            for reducer in request._reducers.values():
                merged.merge(reducer.stats)
                seen_reducer = True
        if not seen_reducer:
            return None
        return merged.describe()

    def _compose_chain(self) -> tuple[list[str], str | None]:
        """Order the levels by following the proofs' low→high edges from
        the level that is never a high side (the implementation).

        Returns ``(chain, None)`` on success or ``([], reason)`` when
        the proof graph does not form a single linear chain."""
        proofs = self.checked.program.proofs
        if not proofs:
            return [], "no proofs declared"
        edges: dict[str, str] = {}
        for p in proofs:
            if p.low_level in edges and edges[p.low_level] != p.high_level:
                return [], (
                    f"level {p.low_level} is the low side of multiple "
                    f"proofs ({edges[p.low_level]} and {p.high_level})"
                )
            edges[p.low_level] = p.high_level
        highs = set(edges.values())
        starts = [low for low in edges if low not in highs]
        if not starts:
            return [], (
                "cyclic level chain: every level is the high side of "
                "some proof"
            )
        if len(starts) > 1:
            return [], (
                "broken level chain: multiple candidate implementation "
                "levels (" + ", ".join(sorted(starts)) + ")"
            )
        chain = [starts[0]]
        while chain[-1] in edges:
            nxt = edges[chain[-1]]
            if nxt in chain:
                return [], f"cyclic level chain at {nxt}"
            chain.append(nxt)
        if len(chain) != len(edges) + 1:
            unused = sorted(
                low for low in edges if low not in chain[:-1]
            )
            return [], (
                "disconnected proof graph: proofs from "
                + ", ".join(unused) + " are not reachable from "
                + chain[0]
            )
        return chain, None


def verify_source(
    source: str,
    filename: str = "<armada>",
    max_states: int = 200_000,
    validate_refinement: str = "auto",
    farm: VerificationFarm | None = None,
    analyze: bool = False,
    por: bool = False,
    memory_model: str | None = None,
    atomic: bool = False,
) -> ChainOutcome:
    """Parse, check, and verify a complete Armada program text."""
    checked = check_program(source, filename)
    engine = ProofEngine(
        checked, max_states=max_states,
        validate_refinement=validate_refinement,
        farm=farm, analyze=analyze, por=por,
        memory_model=memory_model, atomic=atomic,
    )
    return engine.run_all()
