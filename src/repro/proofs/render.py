"""Rendering of state machines into Dafny-like proof preambles.

Every proof Armada generates includes the program-specific state-machine
definitions (§3.2.2): the state datatype, the enumerated PC type, the
step datatype with one constructor per step, and one next-state function
per step type.  We render the same structure; it forms the bulk of the
generated proof text, exactly as in the paper's SLOC accounting.
"""

from __future__ import annotations

from repro.lang import types as ty
from repro.lang.astutil import expr_to_str
from repro.machine.program import StateMachine
from repro.machine.steps import (
    AssertStep,
    AssignStep,
    AssumeStep,
    BranchStep,
    CallStep,
    CreateThreadStep,
    DeallocStep,
    ExternSpecStep,
    ExternStep,
    JoinStep,
    MallocStep,
    ReturnStep,
    SomehowStep,
    Step,
)


def step_constructor_name(step: Step) -> str:
    kind = type(step).__name__.removesuffix("Step")
    return f"Step_{kind}_{step.pc.replace('#', '_')}"


def describe_step_effect(step: Step) -> str:
    """A one-line summary of a step's semantics (used in lemma bodies)."""
    if isinstance(step, AssignStep):
        op = "::=" if step.tso_bypass else ":="
        lhs = ", ".join(expr_to_str(e) for e in step.lhss)
        rhs = ", ".join(expr_to_str(e) for e in step.rhss)
        return f"{lhs} {op} {rhs}"
    if isinstance(step, BranchStep):
        cond = "*" if step.cond is None else expr_to_str(step.cond)
        return f"branch {cond} == {str(step.when).lower()}"
    if isinstance(step, AssumeStep):
        return f"assume {expr_to_str(step.cond)}"
    if isinstance(step, AssertStep):
        return f"assert {expr_to_str(step.cond)}"
    if isinstance(step, SomehowStep):
        return "somehow " + " ".join(
            [f"requires {expr_to_str(e)}" for e in step.spec.requires]
            + [f"modifies {expr_to_str(e)}" for e in step.spec.modifies]
            + [f"ensures {expr_to_str(e)}" for e in step.spec.ensures]
        )
    if isinstance(step, CallStep):
        args = ", ".join(expr_to_str(a) for a in step.args)
        return f"call {step.method}({args})"
    if isinstance(step, ReturnStep):
        return "return" + (
            f" {expr_to_str(step.value)}" if step.value else ""
        )
    if isinstance(step, CreateThreadStep):
        args = ", ".join(expr_to_str(a) for a in step.args)
        return f"create_thread {step.method}({args})"
    if isinstance(step, JoinStep):
        return f"join {expr_to_str(step.thread)}"
    if isinstance(step, MallocStep):
        what = "calloc" if step.count is not None else "malloc"
        return f"{what}({step.alloc_type})"
    if isinstance(step, DeallocStep):
        return f"dealloc {expr_to_str(step.ptr)}"
    if isinstance(step, ExternStep):
        args = ", ".join(expr_to_str(a) for a in step.args)
        return f"extern {step.name}({args})"
    if isinstance(step, ExternSpecStep):
        return f"extern-model {step.method_name}"
    return type(step).__name__


def render_type(t: ty.Type) -> str:
    return str(t)


def render_machine_definitions(machine: StateMachine) -> list[str]:
    """Render the program-specific state-machine module for *machine*."""
    ctx = machine.ctx
    lines: list[str] = []
    name = machine.level_name
    lines.append(f"// State machine for level {name} (program-specific,")
    lines.append("// one step constructor and one next-function per "
                 "statement).")
    # PC enumeration.
    pc_names = sorted(machine.pcs, key=lambda p: (p.split("#")[0],
                                                  machine.pcs[p].index))
    lines.append(f"datatype PC_{name} =")
    for pc in pc_names:
        info = machine.pcs[pc]
        suffix = "" if info.yieldable else "  // non-yieldable (atomic)"
        lines.append(f"  | PC_{pc.replace('#', '_')}{suffix}")
    # Global-state datatype.
    lines.append(f"datatype Globals_{name} = Globals_{name}(")
    for g in ctx.level.globals:
        kind = "ghost " if g.ghost else ""
        lines.append(f"  {kind}{g.name}: {render_type(g.var_type)},")
    lines.append(")")
    # Per-method stack frames (fields named after program variables,
    # §3.2.2).
    for method_name, mctx in ctx.method_contexts.items():
        if machine.ctx.methods[method_name].is_extern:
            continue
        lines.append(
            f"datatype Frame_{name}_{method_name} = "
            f"Frame_{name}_{method_name}("
        )
        for lname, info in mctx.locals.items():
            lines.append(f"  {lname}: {render_type(info.type)},")
        lines.append(")")
    # Thread + total state.
    lines.append(f"datatype Thread_{name} = Thread_{name}(")
    lines.append(f"  pc: PC_{name},")
    lines.append("  stack: seq<Frame>,")
    lines.append("  storeBuffer: seq<(Location, Value)>,  // x86-TSO")
    lines.append(")")
    lines.append(f"datatype TotalState_{name} = TotalState_{name}(")
    lines.append(f"  threads: map<uint64, Thread_{name}>,")
    lines.append(f"  globals: Globals_{name},")
    lines.append("  heap: Heap,  // immutable forest (sec. 3.2.4)")
    lines.append("  log: seq<uint64>,")
    lines.append("  termination: TerminationKind,")
    lines.append(")")
    # Step datatype: one constructor per step, with its encapsulated
    # nondeterminism as constructor fields (sec. 4.1).
    lines.append(f"datatype Step_{name} =")
    for step in machine.all_steps():
        fields = ", ".join(
            f"{_param_field_name(v.key, i)}: {render_type(v.type)}"
            for i, v in enumerate(step.nondet_vars())
        )
        lines.append(f"  | {step_constructor_name(step)}({fields})")
    # One next-function per step (program-specific semantics).
    for step in machine.all_steps():
        ctor = step_constructor_name(step)
        lines.append(
            f"function NextState_{ctor}(s: TotalState_{name}, tid: uint64, "
            f"step: Step_{name}): TotalState_{name}"
        )
        lines.append("{")
        lines.append(f"  // {describe_step_effect(step)}")
        lines.append(f"  // pc {step.pc} -> {step.target}")
        lines.append("  ApplyStepSemantics(s, tid, step)")
        lines.append("}")
    lines.append(
        f"function NextState_{name}(s: TotalState_{name}, tid: uint64, "
        f"step: Step_{name}): TotalState_{name}"
    )
    lines.append("{")
    lines.append("  match step")
    for step in machine.all_steps():
        ctor = step_constructor_name(step)
        lines.append(f"    case {ctor}(_) => NextState_{ctor}(s, tid, step)")
    lines.append("}")
    return lines


def _param_field_name(key, index: int) -> str:
    if isinstance(key, tuple):
        return "_".join(str(part).replace("#", "_") for part in key
                        if not isinstance(part, int) or True)
    # Expression-nondet keys are id()-based (process-local); naming the
    # field by position keeps the rendered text identical across
    # translations, which content-addressed caching depends on.
    return f"nd_{index}"
