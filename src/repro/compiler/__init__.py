"""Compiler back ends: ClightTSO-flavoured C (§5) and executable
Python (SC / TSO-faithful modes, the Figure 12 compilation paths)."""

from repro.compiler.cbackend import compile_to_c  # noqa: F401
from repro.compiler.pybackend import (  # noqa: F401
    CompiledProgram,
    compile_to_python,
)
