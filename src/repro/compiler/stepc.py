"""Compiled step specialization for the exploration core.

The explicit-state explorer spends nearly all of its time in
``StateMachine.enabled_transitions`` / ``next_state``: for every state it
re-walks the AST of every step at every thread's pc through the generic
evaluator (:mod:`repro.machine.evaluator`), rebuilding an
:class:`EvalContext` per step per state.  This module specializes one
level's step relation into a *compiled* Python successor function — the
same play as the paper's compilation of the step semantics into
per-statement ``NextState`` functions (Figure 12's machine-generated
path), realized with the ``exec``-compile idiom already used by
:mod:`repro.compiler.pybackend`.

For a ``StateMachine`` + memory model it emits (and ``exec``-compiles,
with an on-disk source cache keyed by the level fingerprint + model) a
flat ``enabled_and_next(state)`` function that returns the exact
``[(Transition, successor_state), ...]`` list the interpreted pipeline
would produce — same transitions, same order, bit-identical successor
states, identical UB reasons — with the per-PC dispatch, guard
evaluation and state construction inlined.  No per-step AST walk, no
``EvalContext`` construction.

**Fallback rules.**  The specializer is conservative: any step it cannot
prove it compiles faithfully (pointer dereferences, ``somehow``/extern
specs with state-dependent witness candidates, struct writes, ``old()``,
quantifiers, ...) is emitted as a call into the interpreted enumeration
for that single step (:func:`_interp_step`), preserving order and
semantics exactly.  Whole machines fall back (``stepper_for`` returns
``None``) when the memory model is not SC or x86-TSO — the RA model's
env transitions and view bookkeeping stay interpreted — or when codegen
fails for any reason.  Compiled and interpreted exploration are
differentially tested for bit-identical state sets, UB reasons and
verdicts across all three memory models (``tests/test_stepc.py``, the
PR-5 fuzz suite).

**Cache key.**  The on-disk source cache key is a structural hash over
the level name, the memory model, every pc (method, yieldability), every
step (class, pc, target and full expression ASTs with their checked
types), the variable layout that drives place classification
(globals/ghosts, per-method locals with address-taken flags, newframe
locals) and :func:`repro.farm.cache.code_version` — so any toolchain or
program change invalidates the cached source.  Value *domains* are
deliberately not part of the key: they only affect the parameter tuples
bound at load time, not the generated source.
"""

from __future__ import annotations

import dataclasses
import os
from pathlib import Path
from typing import Any

from repro.lang import asts as ast
from repro.lang import types as ty
from repro.machine.pmap import PMap
from repro.machine.program import StateMachine, Transition
from repro.machine.state import (
    Frame,
    ProgramState,
    TERM_NORMAL,
    TERM_UB,
    Termination,
    ThreadState,
    UBSignal,
)
from repro.machine.steps import (
    AssertStep,
    AssignStep,
    AssumeStep,
    BranchStep,
    CallStep,
    CreateThreadStep,
    ExternStep,
    JoinStep,
    ReturnStep,
    Step,
)
from repro.machine.values import (
    CompositeValue,
    GhostMap,
    Location,
    NONE_OPTION,
    NULL,
    Root,
    some,
)
from repro.obs import OBS

#: Bump to invalidate every cached source when codegen output changes in
#: a way ``code_version`` alone would not capture (it normally does).
_STEPC_FORMAT = 3

_MISS = object()


class _Unsupported(Exception):
    """Internal: this construct is outside the specializer's coverage."""


# ---------------------------------------------------------------------------
# Runtime helpers injected into every compiled module's namespace.  Each
# replicates one interpreter code path exactly, including UB messages.


def _local_read(locals_map: Any, name: str) -> Any:
    value = locals_map.get(name, _MISS)
    if value is _MISS:
        raise UBSignal(f"read of undefined local {name}")
    return value


def _ghost_read(state: ProgramState, name: str) -> Any:
    value = state.ghosts.get(name, _MISS)
    if value is _MISS:
        raise UBSignal(f"read of undefined ghost {name}")
    return value


def _mem_local_read(
    state: ProgramState, tid: int, name: str, serial: int
) -> Any:
    root = Root("local", name, serial)
    status = state.allocation.get(root)
    if status == "freed":
        raise UBSignal(f"access to freed object {root}")
    if status is None:
        raise UBSignal(f"access to unallocated object {root}")
    return state.local_view(tid, Location(root))


def _seq_index(base: Any, index: Any) -> Any:
    # The non-pointer branches of evaluator._eval_access, verbatim.
    if isinstance(base, CompositeValue):
        if not 0 <= index < len(base.children):
            raise UBSignal(f"index {index} out of bounds")
        return base.children[index]
    if isinstance(base, tuple):
        if not 0 <= index < len(base):
            raise UBSignal(f"sequence index {index} out of bounds")
        return base[index]
    if isinstance(base, GhostMap):
        if index not in base:
            raise UBSignal(f"map key {index!r} absent")
        return base[index]
    raise UBSignal(f"cannot index {type(base).__name__}")


def _signed(value: int, lo: int, hi: int, tname: str) -> int:
    if lo <= value <= hi:
        return value
    raise UBSignal(f"signed overflow: {value} does not fit {tname}")


def _swrap(value: int, bits: int) -> int:
    masked = value & ((1 << bits) - 1)
    if masked >= (1 << (bits - 1)):
        masked -= 1 << bits
    return masked


def _divc(left: int, right: int) -> int:
    if right == 0:
        raise UBSignal("division by zero")
    quotient = abs(left) // abs(right)
    if (left < 0) != (right < 0):
        quotient = -quotient
    return quotient


def _modc(left: int, right: int) -> int:
    return left - _divc(left, right) * right


def _shiftck(amount: int, bits: int, tname: str) -> int:
    if not 0 <= amount < bits:
        raise UBSignal(f"shift by {amount} out of range for {tname}")
    return amount


def _len_value(value: Any) -> int:
    if isinstance(value, CompositeValue):
        return len(value.children)
    return len(value)


def _first(value: Any) -> Any:
    if not isinstance(value, tuple) or not value:
        raise UBSignal("first() of empty or non-sequence")
    return value[0]


def _last(value: Any) -> Any:
    if not isinstance(value, tuple) or not value:
        raise UBSignal("last() of empty or non-sequence")
    return value[-1]


def _drop(value: Any, count: Any) -> Any:
    if not isinstance(value, tuple) or not isinstance(count, int):
        raise UBSignal("drop() on non-sequence")
    if not 0 <= count <= len(value):
        raise UBSignal(f"drop({count}) out of range")
    return value[count:]


def _take(value: Any, count: Any) -> Any:
    if not isinstance(value, tuple) or not isinstance(count, int):
        raise UBSignal("take() on non-sequence")
    if not 0 <= count <= len(value):
        raise UBSignal(f"take({count}) out of range")
    return value[:count]


def _ufn(name: str, args: tuple, result_type: ty.Type) -> Any:
    from repro.machine.evaluator import _hashable, uninterpreted_value

    return uninterpreted_value(
        name, tuple(_hashable(a) for a in args), result_type
    )


def _adv(
    state: ProgramState, tid: int, target: str | None, inside: bool
) -> ProgramState:
    """Step._advance + update_atomic_owner with the pc-yieldability
    lookup folded to a compile-time constant, built by direct
    construction instead of a chain of ``dataclasses.replace`` calls
    (equality and hashing are structural, so the states are
    bit-identical to the interpreter's)."""
    t = state.threads[tid]
    nt = ThreadState(t.tid, target, t.frames, t.store_buffer, t.view)
    if inside:
        ao = tid
    else:
        ao = state.atomic_owner
        if ao == tid:
            ao = None
    return ProgramState(
        state.threads.set(tid, nt), state.memory, state.allocation,
        state.ghosts, state.log, state.termination, state.next_tid,
        state.next_serial, ao, state.histories,
    )


def _term(state: ProgramState, kind: str, detail: str) -> ProgramState:
    """``ProgramState.terminate`` by direct construction."""
    return ProgramState(
        state.threads, state.memory, state.allocation, state.ghosts,
        state.log, Termination(kind, detail), state.next_tid,
        state.next_serial, state.atomic_owner, state.histories,
    )


def _interp_step(
    machine: StateMachine,
    step: Step,
    state: ProgramState,
    tid: int,
    thread: Any,
    emit: Any,
) -> None:
    """Interpreted enumeration of one step — the per-step fallback.
    Mirrors the step portion of ``enabled_transitions`` + ``next_state``
    exactly (same order, same dict copies, same UB conversion)."""
    method = thread.frames[0].method
    for params in machine.param_assignments(step, method, state, tid):
        try:
            is_enabled = step.enabled(machine, state, tid, dict(params))
        except UBSignal:
            is_enabled = True
        if is_enabled:
            transition = Transition(tid, step, params)
            emit((transition, machine.next_state(state, transition)))


_NAMESPACE_BASE = {
    "UBSignal": UBSignal,
    "Transition": Transition,
    "Location": Location,
    "Root": Root,
    "CompositeValue": CompositeValue,
    "NULL": NULL,
    "NONE_OPTION": NONE_OPTION,
    "TERM_UB": TERM_UB,
    "replace": dataclasses.replace,
    "_some": some,
    "_local": _local_read,
    "_ghost": _ghost_read,
    "_mem_local": _mem_local_read,
    "_seq_index": _seq_index,
    "_signed": _signed,
    "_swrap": _swrap,
    "_divc": _divc,
    "_modc": _modc,
    "_shiftck": _shiftck,
    "_len_value": _len_value,
    "_first": _first,
    "_last": _last,
    "_drop": _drop,
    "_take": _take,
    "_ufn": _ufn,
    "_adv": _adv,
    "_term": _term,
    "_MS": _MISS,
    "_PW": PMap._wrap,
    "_TN": Termination(TERM_NORMAL),
    "_interp": _interp_step,
    "Frame": Frame,
    "ThreadState": ThreadState,
    "ProgramState": ProgramState,
    "BOOL": ty.BOOL,
    "MATHINT": ty.MATHINT,
    "IntType": ty.IntType,
}


# ---------------------------------------------------------------------------
# Expression compilation


class _ExprCompiler:
    """Compiles one step's typed AST expressions into Python source.

    The emitted code evaluates subexpressions in exactly the order the
    recursive interpreter does (Python's own left-to-right evaluation)
    and raises :class:`UBSignal` with the interpreter's exact messages.
    Anything outside coverage raises :class:`_Unsupported`, which makes
    the enclosing step fall back to the interpreter.
    """

    def __init__(self, gen: "_Gen", method: str, nondet_index: dict,
                 key_const: str | None, cache_mode: bool = False) -> None:
        self.gen = gen
        self.ctx = gen.machine.ctx
        self.method = method
        self.mctx = self.ctx.method_contexts.get(method)
        #: id(Nondet node) -> index into the step's nondet_vars().
        self.nondet_index = nondet_index
        #: Name of the bound tuple of nondet keys (``NK<n>``).
        self.key_const = key_const
        #: *Hoisted* pure global reads: ``(_g<k>, source)`` pairs the
        #: emitter assigns before the expression uses them.  A mapped
        #: global's ``local_view`` read cannot raise and has no side
        #: effects, so evaluating it early is invisible — and it makes
        #: the read values available as a successor-cache key.
        self.hoisted: list[tuple[str, str]] = []
        self._hoist_map: dict[str, str] = {}
        #: True once the expression read state through something that is
        #: not a hoistable pure read (ghost / memory-resident local):
        #: those can raise mid-expression, so the step's outcome is not
        #: a function of (thread, hoisted reads) alone.
        self.state_dep = False
        #: In cache mode, indexed global-array reads hoist the *whole*
        #: array (pure) and index the tuple, keeping the bounds check —
        #: and its UB — inside the cached computation.
        self.cache_mode = cache_mode

    def _hoist(self, src: str) -> str:
        if not self.cache_mode:
            return src
        name = self._hoist_map.get(src)
        if name is None:
            name = f"_g{len(self._hoist_map)}"
            self._hoist_map[src] = name
            self.hoisted.append((name, src))
        return name

    # -- variable classification ----------------------------------------

    def _local_info(self, name: str):
        if self.mctx and name in self.mctx.locals:
            return self.mctx.locals[name]
        return None

    def _global_decl(self, name: str):
        return self.ctx.globals.get(name)

    # -- compilation ----------------------------------------------------

    def compile(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.IntLit):
            return repr(expr.value)
        if isinstance(expr, ast.BoolLit):
            return repr(expr.value)
        if isinstance(expr, ast.NullLit):
            return "NULL"
        if isinstance(expr, ast.Nondet):
            index = self.nondet_index.get(id(expr))
            if index is None or self.key_const is None:
                raise _Unsupported("unresolved nondet")
            return f"_pd[{self.key_const}[{index}]]"
        if isinstance(expr, ast.Var):
            return self._compile_var(expr)
        if isinstance(expr, ast.MetaVar):
            if expr.name == "$me":
                return "tid"
            if expr.name == "$sb_empty":
                return "(not thread.store_buffer)"
            raise _Unsupported(f"meta variable {expr.name}")
        if isinstance(expr, ast.Unary):
            return self._compile_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._compile_binary(expr)
        if isinstance(expr, ast.Conditional):
            cond = self.compile(expr.cond)
            then = self.compile(expr.then)
            els = self.compile(expr.els)
            return f"(({then}) if ({cond}) else ({els}))"
        if isinstance(expr, ast.Index):
            return self._compile_index(expr)
        if isinstance(expr, ast.Call):
            return self._compile_call(expr)
        if isinstance(expr, ast.SeqLit):
            if not expr.elements:
                return "()"
            inner = ", ".join(self.compile(e) for e in expr.elements)
            return f"({inner},)"
        if isinstance(expr, ast.SetLit):
            inner = ", ".join(self.compile(e) for e in expr.elements)
            return f"frozenset(({inner},))" if inner else "frozenset()"
        # Old/Deref/AddressOf/FieldAccess/Allocated/Quantifier/...:
        # interpreted territory.
        raise _Unsupported(type(expr).__name__)

    def _compile_var(self, expr: ast.Var) -> str:
        name = expr.name
        info = self._local_info(name)
        if info is not None:
            if info.address_taken:
                if isinstance(info.type, (ty.ArrayType, ty.StructType)):
                    raise _Unsupported("composite memory local")
                self.state_dep = True
                return (f"_mem_local(state, tid, {name!r}, "
                        f"thread.frames[0].serial)")
            return f"_local(_locals, {name!r})"
        if name == "None":
            return "NONE_OPTION"
        g = self._global_decl(name)
        if g is None:
            raise _Unsupported(f"unknown variable {name}")
        if g.ghost:
            self.state_dep = True
            return f"_ghost(state, {name!r})"
        t = g.var_type
        if isinstance(t, ty.ArrayType):
            if isinstance(t.element, (ty.ArrayType, ty.StructType)):
                raise _Unsupported("nested composite global")
            locs = self.gen.global_leaf_locs(name, t.size)
            # Whole-array read: same leaves, same local_view path, same
            # (nonexistent) failure modes as the interpreter's composite
            # read of a fully-mapped global.
            return self._hoist(
                f"CompositeValue(tuple(state.local_view(tid, _l) "
                f"for _l in {locs}))"
            )
        if isinstance(t, ty.StructType):
            raise _Unsupported("struct global read")
        loc = self.gen.global_loc(name)
        return self._hoist(f"state.local_view(tid, {loc})")

    def _arith(self, raw: str, t: ty.Type | None) -> str:
        """Apply evaluator._arith_result to the raw arithmetic source."""
        if isinstance(t, ty.IntType):
            if t.signed:
                return (f"_signed({raw}, {t.min_value}, {t.max_value}, "
                        f"'{t}')")
            mask = (1 << t.bits) - 1
            return f"(({raw}) & {mask:#x})"
        return f"({raw})"

    def _wrap(self, raw: str, t: ty.Type) -> str:
        """Apply IntType.wrap to the raw source (two's complement)."""
        if not isinstance(t, ty.IntType):
            raise _Unsupported("wrap on non-integer type")
        if t.signed:
            return f"_swrap({raw}, {t.bits})"
        mask = (1 << t.bits) - 1
        return f"(({raw}) & {mask:#x})"

    def _compile_unary(self, expr: ast.Unary) -> str:
        operand = self.compile(expr.operand)
        if expr.op == "!":
            return f"(not ({operand}))"
        if expr.op == "-":
            return self._arith(f"-({operand})", expr.type)
        if expr.op == "~":
            return self._wrap(f"~({operand})", expr.type)
        raise _Unsupported(f"unary {expr.op}")

    @staticmethod
    def _pointerish(t: ty.Type | None) -> bool:
        return t is None or isinstance(t, ty.PtrType)

    def _compile_binary(self, expr: ast.Binary) -> str:
        op = expr.op
        if op == "&&":
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            return f"(bool({left}) and bool({right}))"
        if op == "||":
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            return f"(bool({left}) or bool({right}))"
        if op == "==>":
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            return f"((not ({left})) or bool({right}))"
        if op == "<==":
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            return f"(bool({left}) or (not ({right})))"
        # Pointer operands take the compare_pointers/offset_pointer
        # paths, which need an EvalContext: interpreted territory.
        if self._pointerish(expr.left.type) or \
                self._pointerish(expr.right.type):
            raise _Unsupported(f"pointer-typed operand of {op}")
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        if op == "in":
            return f"(({left}) in ({right}))"
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return f"(({left}) {op} ({right}))"
        if op == "+" and isinstance(expr.type, ty.SeqType):
            return f"(({left}) + ({right}))"
        if op in ("+", "-", "*"):
            return self._arith(f"({left}) {op} ({right})", expr.type)
        if op == "/":
            return self._arith(f"_divc({left}, {right})", expr.type)
        if op == "%":
            return self._arith(f"_modc({left}, {right})", expr.type)
        if op in ("<<", ">>"):
            t = expr.type
            if not isinstance(t, ty.IntType):
                raise _Unsupported("shift on non-integer type")
            shifted = f"({left}) {op} _shiftck({right}, {t.bits}, '{t}')"
            if op == "<<":
                return self._wrap(shifted, t)
            return f"(({shifted}))"
        if op in ("&", "|", "^"):
            t = expr.type
            if not isinstance(t, ty.IntType):
                raise _Unsupported("bitop on non-integer type")
            return self._wrap(f"({left}) {op} ({right})", t)
        raise _Unsupported(f"binary {op}")

    def _compile_index(self, expr: ast.Index) -> str:
        base_t = expr.base.type
        if isinstance(base_t, ty.PtrType):
            raise _Unsupported("pointer indexing")
        index = self.compile(expr.index)
        if (
            isinstance(expr.base, ast.Var)
            and self._local_info(expr.base.name) is None
            and expr.base.name != "None"
        ):
            g = self._global_decl(expr.base.name)
            if g is not None and not g.ghost and \
                    isinstance(g.var_type, ty.ArrayType):
                t = g.var_type
                if isinstance(t.element, (ty.ArrayType, ty.StructType)):
                    raise _Unsupported("nested composite element")
                # Reading element i of a fully-mapped global array is
                # leaf-equivalent to the interpreter's composite read
                # followed by child selection; the bounds message below
                # is the CompositeValue branch's.
                locs = self.gen.global_leaf_locs(expr.base.name, t.size)
                tmp = self.gen.tmp_name()
                if self.cache_mode:
                    # Hoist the whole array (pure) so the element value
                    # lands in the successor-cache key; the bounds check
                    # — and its UB — stays in evaluation order.
                    arr = self._hoist(
                        f"tuple(state.local_view(tid, _l) "
                        f"for _l in {locs})"
                    )
                    return (f"({arr}[{tmp}] "
                            f"if 0 <= ({tmp} := ({index})) < {t.size} "
                            f"else _oob({tmp}))")
                return (f"(state.local_view(tid, {locs}[{tmp}]) "
                        f"if 0 <= ({tmp} := ({index})) < {t.size} "
                        f"else _oob({tmp}))")
        base = self.compile(expr.base)
        return f"_seq_index({base}, {index})"

    def _compile_call(self, expr: ast.Call) -> str:
        func = expr.func
        if func == "len":
            return f"_len_value({self.compile(expr.args[0])})"
        if func == "abs":
            return f"abs({self.compile(expr.args[0])})"
        if func == "Some":
            return f"_some({self.compile(expr.args[0])})"
        if func in ("first", "last"):
            inner = self.compile(expr.args[0])
            return f"_{func}({inner})"
        if func in ("drop", "take"):
            value = self.compile(expr.args[0])
            count = self.compile(expr.args[1])
            return f"_{func}({value}, {count})"
        if func in self.ctx.methods:
            raise _Unsupported("method call in expression")
        result_type = expr.type if expr.type is not None else ty.BOOL
        type_src = _type_src(result_type)
        args = ", ".join(self.compile(a) for a in expr.args)
        args_src = f"({args},)" if args else "()"
        return f"_ufn({func!r}, {args_src}, {type_src})"


def _type_src(t: ty.Type) -> str:
    if isinstance(t, ty.BoolType):
        return "BOOL"
    if isinstance(t, ty.MathIntType):
        return "MATHINT"
    if isinstance(t, ty.IntType):
        return f"IntType({t.bits}, {t.signed})"
    raise _Unsupported(f"uninterpreted result type {t}")


def _oob(index: Any) -> Any:
    raise UBSignal(f"index {index} out of bounds")


_NAMESPACE_BASE["_oob"] = _oob


# ---------------------------------------------------------------------------
# Code generation


class _Writer:
    def __init__(self, indent: int = 0) -> None:
        self.lines: list[str] = []
        self.indent = indent

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def push(self) -> None:
        self.indent += 1

    def pop(self) -> None:
        self.indent -= 1


class _Gen:
    """Generates the compiled module source for one machine + model."""

    def __init__(self, machine: StateMachine) -> None:
        self.machine = machine
        self.model = machine.memmodel.name
        self.prelude: list[str] = []  # build()-body constant bindings
        self._consts: dict[str, str] = {}  # source expr -> name
        self._counter = 0
        self._tmp_counter = 0
        self.compiled_steps = 0
        self.fallback_steps = 0

    # -- constants bound inside build(machine) --------------------------

    def const(self, src: str, hint: str = "C", dedupe: bool = True) -> str:
        name = self._consts.get(src) if dedupe else None
        if name is None:
            self._counter += 1
            name = f"{hint}{self._counter}"
            if dedupe:
                self._consts[src] = name
            self.prelude.append(f"{name} = {src}")
        return name

    def tmp_name(self) -> str:
        self._tmp_counter += 1
        return f"_w{self._tmp_counter}"

    def global_loc(self, name: str) -> str:
        return self.const(
            f"Location(Root('global', {name!r}))", "LOC"
        )

    def global_leaf_locs(self, name: str, size: int) -> str:
        return self.const(
            f"tuple(Location(Root('global', {name!r}), (_i,)) "
            f"for _i in range({size}))",
            "LOCS",
        )

    def step_ref(self, pc: str, index: int) -> str:
        return self.const(f"_steps[{pc!r}][{index}]", "S")

    def params_ref(self, pc: str, index: int, method: str) -> str:
        step = self.step_ref(pc, index)
        return self.const(
            f"tuple((_p, dict(_p)) for _p in _pa({step}, {method!r}))",
            "P",
        )

    def keys_ref(self, pc: str, index: int) -> str:
        step = self.step_ref(pc, index)
        return self.const(
            f"tuple(_v.key for _v in {step}.nondet_vars())", "NK"
        )

    def inside(self, target: str | None) -> bool:
        return (
            target is not None
            and not self.machine.pcs[target].yieldable
        )

    # -- source assembly ------------------------------------------------

    def generate(self, fingerprint: str) -> str:
        machine = self.machine
        pc_funcs: list[tuple[str, str]] = []  # (pc, function name)
        bodies: list[list[str]] = []
        for n, pc in enumerate(sorted(machine.steps_by_pc)):
            steps = machine.steps_by_pc[pc]
            if not steps:
                continue
            fn_name = f"_pc_{n}"
            w = _Writer(indent=1)
            w.emit(
                f"def {fn_name}(state, tid, thread, threads, _ap, _hT):"
            )
            w.push()
            w.emit(f"# pc {pc}")
            any_locals = False
            step_blocks: list[list[str]] = []
            for i, step in enumerate(steps):
                block = _Writer(indent=w.indent)
                try:
                    uses_locals = self._emit_step(block, pc, i, step)
                    self.compiled_steps += 1
                    any_locals = any_locals or uses_locals
                except _Unsupported:
                    block = _Writer(indent=w.indent)
                    block.emit(
                        f"_interp(machine, {self.step_ref(pc, i)}, "
                        f"state, tid, thread, _ap)"
                    )
                    self.fallback_steps += 1
                step_blocks.append(block.lines)
            if any_locals:
                w.emit("_locals = thread.frames[0].locals")
            for lines in step_blocks:
                w.lines.extend(lines)
            bodies.append(w.lines)
            pc_funcs.append((pc, fn_name))

        out: list[str] = []
        out.append("# Generated by repro.compiler.stepc — do not edit.")
        out.append(f"# level: {machine.level_name}")
        out.append(f"# model: {self.model}")
        out.append(f"# fingerprint: {fingerprint}")
        out.append("")
        out.append("def build(machine):")
        out.append("    mm = machine.memmodel")
        out.append("    _steps = machine.steps_by_pc")
        out.append("    _pa = machine.param_assignments")
        for line in self.prelude:
            out.append("    " + line)
        for body in bodies:
            out.extend(body)
        dispatch = ", ".join(
            f"{pc!r}: {fn}" for pc, fn in pc_funcs
        )
        out.append(f"    _DISPATCH = {{{dispatch}}}")
        out.append("    _TIDS = {}")
        if self.model == "tso":
            out.append("    _DC = {}")
        out.append("    def enabled_and_next(state):")
        out.append("        if state.termination is not None:")
        out.append("            return []")
        out.append("        out = []")
        out.append("        _ap = out.append")
        out.append("        threads = state.threads")
        out.append("        ao = state.atomic_owner")
        out.append("        if ao is None:")
        out.append("            _T = _TIDS.get(threads)")
        out.append("            if _T is None:")
        out.append("                _T = tuple(")
        out.append("                    (tid, _t, hash((tid, _t)), "
                   "_DISPATCH.get(_t.pc))")
        out.append("                    for tid, _t in "
                   "sorted(threads._items.items()))")
        out.append("                _TIDS[threads] = _T")
        out.append("        else:")
        out.append("            _t0 = threads[ao]")
        out.append("            _T = ((ao, _t0, hash((ao, _t0)), "
                   "_DISPATCH.get(_t0.pc)),)")
        out.append("        for tid, thread, _hT, fn in _T:")
        if self.model == "tso":
            # state.drain_one(tid) by direct construction; the popped
            # entry, the drained ThreadState, the drain Transition and
            # their entry hashes are a pure function of the thread, so
            # they are hash-consed per thread configuration.  The
            # memory write replicates ``PMap.set`` inline, including
            # its same-value short-circuit.
            out.append("            _sb = thread.store_buffer")
            out.append("            if _sb:")
            out.append("                _de = _DC.get(thread)")
            out.append("                if _de is None:")
            out.append("                    _e = _sb[0]")
            out.append("                    _dn = ThreadState(tid, "
                       "thread.pc, thread.frames, _sb[1:], thread.view)")
            out.append("                    _de = (Transition(tid, None, "
                       "()), _dn, _e[0], _e[1], hash((tid, _dn)))")
            out.append("                    _DC[thread] = _de")
            out.append("                _dT = dict(threads._items)")
            out.append("                _dT[tid] = _de[1]")
            out.append("                _aT = threads._acc")
            out.append("                _mem = state.memory")
            out.append("                _loc = _de[2]")
            out.append("                _val = _de[3]")
            out.append("                _old = _mem._items.get(_loc, _MS)")
            out.append("                if _old is _MS or _old != _val:")
            out.append("                    _dM = dict(_mem._items)")
            out.append("                    _dM[_loc] = _val")
            out.append("                    _aM = _mem._acc")
            out.append("                    if _aM is not None:")
            out.append("                        if _old is not _MS:")
            out.append("                            _aM ^= hash((_loc, "
                       "_old))")
            out.append("                        _aM ^= hash((_loc, _val))")
            out.append("                    _mem = _PW(_dM, _aM)")
            out.append("                _ap((_de[0], ProgramState(")
            out.append("                    _PW(_dT, (_aT ^ _hT ^ _de[4]) "
                       "if _aT is not None else None), _mem,")
            out.append("                    state.allocation, state.ghosts, "
                       "state.log, None,")
            out.append("                    state.next_tid, "
                       "state.next_serial, ao, state.histories)))")
        out.append("            if fn is not None:")
        out.append("                fn(state, tid, thread, threads, _ap, _hT)")
        out.append("        return out")
        out.append("    return enabled_and_next")
        out.append("")
        return "\n".join(out)

    # -- per-step emission ----------------------------------------------

    def _emit_step(
        self, w: _Writer, pc: str, index: int, step: Step
    ) -> bool:
        """Emit the enumeration of one step.  Returns whether the code
        reads ``_locals``.  Raises :class:`_Unsupported` to request the
        interpreted fallback for this step."""
        machine = self.machine
        method = machine.pcs[pc].method
        nondet_vars = step.nondet_vars()
        has_newframe = isinstance(step, (CallStep, CreateThreadStep)) and \
            bool(machine.newframe_locals.get(step.method))
        has_params = bool(nondet_vars) or has_newframe
        nondet_index = {v.key: j for j, v in enumerate(nondet_vars)}
        key_const = self.keys_ref(pc, index) if nondet_vars else None
        step_ref = self.step_ref(pc, index)
        w.emit(f"# step {index}: {type(step).__name__} -> {step.target}")
        body = _Writer(indent=w.indent + (1 if has_params else 0))
        if has_params:
            pt_src, pd_src = "_pt", "_pd"
        else:
            pt_src, pd_src = "()", "{}"

        def mk_ec(cache_mode: bool = False) -> _ExprCompiler:
            return _ExprCompiler(
                self, method, nondet_index, key_const, cache_mode
            )

        cache_used = [False]

        def mk_cache() -> str:
            cache_used[0] = True
            if has_params:
                return "_c"
            return self.const("{}", "C", dedupe=False)

        if isinstance(
            step, (AssignStep, BranchStep, AssumeStep, AssertStep)
        ):
            # These four kinds manage their own parameter loops so a
            # nondet step's whole successor *family* caches under one
            # key (one lookup per state instead of one per row).
            rows = (
                self.params_ref(pc, index, method) if has_params
                else None
            )
            fam = _Writer(indent=w.indent)

            def mk_fam_cache() -> str:
                return self.const("{}", "C", dedupe=False)

            emitter = {
                AssignStep: self._emit_assign,
                BranchStep: self._emit_branch,
                AssumeStep: self._emit_assume,
                AssertStep: self._emit_assert,
            }[type(step)]
            emitter(fam, step, mk_ec, step_ref, pt_src, mk_fam_cache,
                    rows)
            w.lines.extend(fam.lines)
            return any("_locals" in line for line in w.lines)
        if isinstance(step, CallStep):
            self._emit_call(body, step, mk_ec, step_ref, pt_src, pd_src,
                            mk_cache)
        elif isinstance(step, ReturnStep):
            self._emit_return(body, step, mk_ec, step_ref, pt_src,
                              mk_cache)
        elif isinstance(step, CreateThreadStep):
            self._emit_create(body, step, mk_ec(), step_ref, pt_src,
                              pd_src)
        elif isinstance(step, JoinStep):
            self._emit_join(body, step, mk_ec(), step_ref, pt_src)
        elif isinstance(step, ExternStep):
            self._emit_extern(body, step, mk_ec(), step_ref, pt_src)
        else:
            # SomehowStep, ExternSpecStep, MallocStep, DeallocStep:
            # witness candidates / allocation are state-dependent.
            raise _Unsupported(type(step).__name__)
        if has_params:
            if cache_used[0]:
                # Per-parameter-row successor caches ride along in the
                # bound tuple.
                params_ref = self.const(
                    f"tuple((_p, dict(_p), {{}}) for _p in "
                    f"_pa({step_ref}, {method!r}))",
                    "PC",
                )
                w.emit(f"for _pt, _pd, _c in {params_ref}:")
            else:
                params_ref = self.params_ref(pc, index, method)
                w.emit(f"for _pt, _pd in {params_ref}:")
        w.lines.extend(body.lines)
        return any("_locals" in line for line in w.lines)

    def _adv_src(self, step: Step, state_src: str) -> str:
        inside = self.inside(step.target)
        return f"_adv({state_src}, tid, {step.target!r}, {inside})"

    def _emit_thread_build(
        self,
        w: _Writer,
        step: Step,
        local_writes: list[tuple[str, str]] = (),
        sb_writes: list[tuple[str, str]] = (),
        out_var: str = "_nt",
    ) -> None:
        """Emit the stepped thread's successor ``ThreadState`` — local
        writes fold into one rebuilt top frame, TSO-buffered stores
        append to the store buffer, and the pc advances, all in a
        single positional construction."""
        if local_writes:
            w.emit("_f0 = thread.frames[0]")
            locals_src = "_f0.locals" + "".join(
                f".set({name!r}, {val})" for name, val in local_writes
            )
            w.emit(
                f"_nf = Frame(_f0.method, _f0.serial, {locals_src}, "
                f"_f0.return_pc, _f0.return_lhs_key)"
            )
            frames_src = "(_nf,) + thread.frames[1:]"
        else:
            frames_src = "thread.frames"
        if sb_writes:
            entries = ", ".join(
                f"({loc}, {val})" for loc, val in sb_writes
            )
            sb_src = f"thread.store_buffer + ({entries},)"
        else:
            sb_src = "thread.store_buffer"
        w.emit(
            f"{out_var} = ThreadState(tid, {step.target!r}, "
            f"{frames_src}, {sb_src}, thread.view)"
        )

    def _threads_src(
        self, new_thread: str, new_hash: str | None = None
    ) -> list[str]:
        """Lines replicating ``threads.set(tid, new_thread)`` inline —
        ``PMap.set`` minus the no-op equality probe (a fresh but equal
        map is structurally identical), with the incremental hash
        accumulator derived exactly as ``PMap.set`` derives it.  The
        old entry's hash is the driver-computed ``_hT``; *new_hash*
        supplies a precomputed hash for the new entry."""
        nh = new_hash or f"hash((tid, {new_thread}))"
        return [
            "_dT = dict(threads._items)",
            f"_dT[tid] = {new_thread}",
            "_aT = threads._acc",
            f"_nT = _PW(_dT, (_aT ^ _hT ^ {nh}) "
            f"if _aT is not None else None)",
        ]

    def _emit_build(
        self,
        w: _Writer,
        step: Step,
        local_writes: list[tuple[str, str]] = (),
        sb_writes: list[tuple[str, str]] = (),
        mem_writes: list[tuple[str, str]] = (),
        ghost_writes: list[tuple[str, str]] = (),
        assign_to: str = "_ns",
    ) -> None:
        """Emit the *fused* successor construction: every write of the
        step plus the pc advance collapse into one ``ThreadState`` and
        one ``ProgramState`` built positionally, with no intermediate
        ``dataclasses.replace`` states.  Sound because (a) the writes
        themselves cannot raise — every UB check is emitted before this
        point, in interpreter order — and (b) a stepping thread always
        satisfies ``atomic_owner in (None, tid)``, so the post-step
        owner is the compile-time constant ``tid``/``None``.
        Expects ``state``/``thread``/``threads`` in scope."""
        self._emit_thread_build(w, step, local_writes, sb_writes)
        for line in self._threads_src("_nt"):
            w.emit(line)
        mem_src = "state.memory" + "".join(
            f".set({loc}, {val})" for loc, val in mem_writes
        )
        ghost_src = "state.ghosts" + "".join(
            f".set({name!r}, {val})" for name, val in ghost_writes
        )
        ao_src = "tid" if self.inside(step.target) else "None"
        w.emit(
            f"{assign_to} = ProgramState(_nT, "
            f"{mem_src}, state.allocation, {ghost_src}, state.log, "
            f"None, state.next_tid, state.next_serial, {ao_src}, "
            f"state.histories)"
        )

    def _emit_hoisted(self, w: _Writer, ec: _ExprCompiler) -> None:
        for name, src in ec.hoisted:
            w.emit(f"{name} = {src}")

    def _cache_key_src(self, ec: _ExprCompiler) -> str:
        if not ec.hoisted:
            return "thread"
        names = ", ".join(name for name, _src in ec.hoisted)
        return f"(thread, {names})"

    def _emit_apply_entry(
        self, w: _Writer, step: Step, check_none: bool = False
    ) -> None:
        """Emit the application of a successor-cache entry ``_e`` at the
        current state: ``None`` → disabled, a cached ``ThreadState`` →
        splice it in (its hash is already memoized on the shared
        object), a ``(kind, detail)`` pair → terminate."""
        if check_none:
            w.emit("if _e is not None:")
            w.push()
        w.emit("_p = _e[1]")
        w.emit("if _p.__class__ is ThreadState:")
        w.push()
        for line in self._threads_src("_p", new_hash="_e[2]"):
            w.emit(line)
        ao_src = "tid" if self.inside(step.target) else "None"
        w.emit(
            f"_ap((_e[0], ProgramState(_nT, state.memory, "
            f"state.allocation, state.ghosts, state.log, None, "
            f"state.next_tid, state.next_serial, {ao_src}, "
            f"state.histories)))"
        )
        w.pop()
        w.emit("else:")
        w.push()
        w.emit("_ap((_e[0], _term(state, _p[0], _p[1])))")
        w.pop()
        if check_none:
            w.pop()

    def _emit_family(
        self,
        w: _Writer,
        step: Step,
        ec: _ExprCompiler,
        mk_cache,
        rows: str | None,
        compute,
        check_none: bool,
    ) -> None:
        """Emit the successor-cache scaffolding around *compute* (which
        emits code assigning the entry ``_e`` for the bindings in
        scope).  Without parameter rows the cache maps key → entry;
        with rows it maps key → tuple of per-row entries, computed in
        one pass on miss and applied in order on every visit."""
        cache = mk_cache()
        self._emit_hoisted(w, ec)
        key = self._cache_key_src(ec)
        if rows is None:
            w.emit(f"_e = {cache}.get({key}, _MS)")
            w.emit("if _e is _MS:")
            w.push()
            compute(w)
            w.emit(f"{cache}[{key}] = _e")
            w.pop()
            self._emit_apply_entry(w, step, check_none=check_none)
            return
        w.emit(f"_F = {cache}.get({key}, _MS)")
        w.emit("if _F is _MS:")
        w.push()
        w.emit("_F = []")
        w.emit(f"for _pt, _pd in {rows}:")
        w.push()
        compute(w)
        w.emit("_F.append(_e)")
        w.pop()
        w.emit(f"_F = tuple(_F)")
        w.emit(f"{cache}[{key}] = _F")
        w.pop()
        w.emit("for _e in _F:")
        w.push()
        self._emit_apply_entry(w, step, check_none=check_none)
        w.pop()

    def _emit_fit(self, w: _Writer, t: ty.Type | None, val: str) -> None:
        if isinstance(t, ty.IntType):
            w.emit(
                f"if isinstance({val}, int) and not isinstance({val}, "
                f"bool) and not ({t.min_value} <= {val} <= "
                f"{t.max_value}):"
            )
            w.push()
            w.emit(f'raise UBSignal(f"value {{{val}}} does not fit {t}")')
            w.pop()

    # -- lvalue classification and write emission ------------------------

    def _classify_lhs(self, ec: _ExprCompiler, lhs: ast.Expr):
        """Returns a place spec for the supported lvalue shapes:
        ('local', name) | ('memlocal', name) | ('global', loc_const) |
        ('gelem', locs_const, size, typestr) | ('ghost', name)."""
        if isinstance(lhs, ast.Var):
            info = ec._local_info(lhs.name)
            if info is not None:
                if info.address_taken:
                    if isinstance(info.type,
                                  (ty.ArrayType, ty.StructType)):
                        raise _Unsupported("composite memory local lhs")
                    return ("memlocal", lhs.name)
                return ("local", lhs.name)
            g = ec._global_decl(lhs.name)
            if g is None:
                raise _Unsupported(f"unknown lvalue {lhs.name}")
            if g.ghost:
                return ("ghost", lhs.name)
            if isinstance(g.var_type, (ty.ArrayType, ty.StructType)):
                raise _Unsupported("composite global lhs")
            return ("global", self.global_loc(lhs.name))
        if isinstance(lhs, ast.Index) and isinstance(lhs.base, ast.Var):
            base = lhs.base
            if ec._local_info(base.name) is not None:
                raise _Unsupported("indexed local lhs")
            g = ec._global_decl(base.name)
            if g is None or g.ghost or not isinstance(
                g.var_type, ty.ArrayType
            ):
                raise _Unsupported("indexed non-array lhs")
            t = g.var_type
            if isinstance(t.element, (ty.ArrayType, ty.StructType)):
                raise _Unsupported("nested composite element lhs")
            return (
                "gelem",
                self.global_leaf_locs(base.name, t.size),
                t.size,
                str(t),
            )
        raise _Unsupported(f"lvalue {type(lhs).__name__}")

    def _emit_write(
        self,
        w: _Writer,
        spec: tuple,
        val: str,
        buffered: bool,
        idx: str | None = None,
    ) -> None:
        kind = spec[0]
        if kind == "local":
            w.emit(
                f"_ns = _ns.with_thread(_ns.threads[tid]"
                f".set_local({spec[1]!r}, {val}))"
            )
        elif kind == "ghost":
            w.emit(f"_ns = _ns.with_ghost({spec[1]!r}, {val})")
        elif kind == "global":
            w.emit(
                f"_ns = mm.write_leaves(_ns, tid, (({spec[1]}, {val}),), "
                f"{buffered})"
            )
        elif kind == "gelem":
            w.emit(
                f"_ns = mm.write_leaves(_ns, tid, (({spec[1]}[{idx}], "
                f"{val}),), {buffered})"
            )
        elif kind == "memlocal":
            name = spec[1]
            w.emit(
                f"_r = Root('local', {name!r}, thread.frames[0].serial)"
            )
            w.emit("_rst = _ns.allocation.get(_r)")
            w.emit("if _rst == 'freed':")
            w.push()
            w.emit('raise UBSignal(f"write to freed object {_r}")')
            w.pop()
            w.emit("if _rst is None:")
            w.push()
            w.emit('raise UBSignal(f"write to invalid object {_r}")')
            w.pop()
            w.emit(
                f"_ns = mm.write_leaves(_ns, tid, ((Location(_r), "
                f"{val}),), {buffered})"
            )
        else:  # pragma: no cover - spec kinds are closed
            raise _Unsupported(kind)

    # -- step emitters ---------------------------------------------------

    def _emit_assign(self, w, step: AssignStep, mk_ec, step_ref, pt_src,
                     mk_cache, rows=None):
        buffered = self.model == "tso" and not step.tso_bypass
        ec = mk_ec(True)
        specs = [self._classify_lhs(ec, lhs) for lhs in step.lhss]
        # A step's outcome is a pure function of (thread, hoisted reads,
        # params) — and therefore successor-cacheable — when its effects
        # stay in the thread: local writes always, shared writes only
        # when TSO buffers them (a store-buffer append is thread state).
        effects_local = all(
            s[0] == "local" or (buffered and s[0] in ("global", "gelem"))
            for s in specs
        )
        rhs_srcs = [ec.compile(rhs) for rhs in step.rhss]
        idx_srcs = [
            ec.compile(lhs.index) if spec[0] == "gelem" else None
            for lhs, spec in zip(step.lhss, specs)
        ]
        cacheable = effects_local and not ec.state_dep
        if not cacheable:
            # Recompile without whole-array hoisting of indexed reads.
            ec = mk_ec(False)
            rhs_srcs = [ec.compile(rhs) for rhs in step.rhss]
            idx_srcs = [
                ec.compile(lhs.index) if spec[0] == "gelem" else None
                for lhs, spec in zip(step.lhss, specs)
            ]

        def emit_checks(w: _Writer):
            # 1. all rhs values, in order
            vals = []
            for j, src in enumerate(rhs_srcs):
                w.emit(f"_v{j} = {src}")
                vals.append(f"_v{j}")
            # 2. all places, in order (index evaluation + bounds checks)
            idx_names: list[str | None] = []
            for j, (spec, idx_src) in enumerate(zip(specs, idx_srcs)):
                if spec[0] == "gelem":
                    w.emit(f"_i{j} = {idx_src}")
                    w.emit(f"if not 0 <= _i{j} < {spec[2]}:")
                    w.push()
                    w.emit(
                        f'raise UBSignal(f"index {{_i{j}}} out of '
                        f'bounds for {spec[3]}")'
                    )
                    w.pop()
                    idx_names.append(f"_i{j}")
                else:
                    idx_names.append(None)
            # 3. fit checks + UB checks in lhs order, collecting the
            # writes (none of which can raise) for one fused
            # construction.  Allocation never changes during an assign,
            # so checking every memlocal status against the original
            # state matches the interpreter's evolving-state checks.
            local_writes: list[tuple[str, str]] = []
            shared_writes: list[tuple[str, str]] = []  # sb or memory
            ghost_writes: list[tuple[str, str]] = []
            for j, (lhs, spec, val, idx) in enumerate(
                zip(step.lhss, specs, vals, idx_names)
            ):
                self._emit_fit(w, lhs.type, val)
                kind = spec[0]
                if kind == "local":
                    local_writes.append((spec[1], val))
                elif kind == "ghost":
                    ghost_writes.append((spec[1], val))
                elif kind == "global":
                    shared_writes.append((spec[1], val))
                elif kind == "gelem":
                    shared_writes.append((f"{spec[1]}[{idx}]", val))
                elif kind == "memlocal":
                    w.emit(
                        f"_r{j} = Root('local', {spec[1]!r}, "
                        f"thread.frames[0].serial)"
                    )
                    w.emit(f"_rst = state.allocation.get(_r{j})")
                    w.emit("if _rst == 'freed':")
                    w.push()
                    w.emit(
                        f'raise UBSignal(f"write to freed object '
                        f'{{_r{j}}}")'
                    )
                    w.pop()
                    w.emit("if _rst is None:")
                    w.push()
                    w.emit(
                        f'raise UBSignal(f"write to invalid object '
                        f'{{_r{j}}}")'
                    )
                    w.pop()
                    shared_writes.append((f"Location(_r{j})", val))
                else:  # pragma: no cover - spec kinds are closed
                    raise _Unsupported(kind)
            return local_writes, shared_writes, ghost_writes

        if cacheable:
            def compute(cw):
                cw.emit("try:")
                cw.push()
                local_writes, sb_writes, _ghosts = emit_checks(cw)
                self._emit_thread_build(cw, step, local_writes, sb_writes)
                cw.emit(
                    f"_e = (Transition(tid, {step_ref}, {pt_src}), _nt, "
                    f"hash((tid, _nt)))"
                )
                cw.pop()
                cw.emit("except UBSignal as _u:")
                cw.push()
                cw.emit(
                    f"_e = (Transition(tid, {step_ref}, {pt_src}), "
                    f"(TERM_UB, _u.reason))"
                )
                cw.pop()

            self._emit_family(w, step, ec, mk_cache, rows, compute,
                              check_none=False)
            return
        if rows is not None:
            w.emit(f"for _pt, _pd in {rows}:")
            w.push()
        w.emit("try:")
        w.push()
        self._emit_hoisted(w, ec)
        local_writes, shared_writes, ghost_writes = emit_checks(w)
        self._emit_build(
            w, step,
            local_writes=local_writes,
            sb_writes=shared_writes if buffered else [],
            mem_writes=[] if buffered else shared_writes,
            ghost_writes=ghost_writes,
        )
        w.pop()
        w.emit("except UBSignal as _u:")
        w.push()
        w.emit("_ns = _term(state, TERM_UB, _u.reason)")
        w.pop()
        w.emit(f"_ap((Transition(tid, {step_ref}, {pt_src}), _ns))")
        if rows is not None:
            w.pop()

    def _emit_branch(self, w, step: BranchStep, mk_ec, step_ref, pt_src,
                     mk_cache, rows=None):
        if step.cond is None:
            def compute(cw):
                self._emit_thread_build(cw, step)
                cw.emit(
                    f"_e = (Transition(tid, {step_ref}, {pt_src}), _nt, "
                    f"hash((tid, _nt)))"
                )

            self._emit_family(w, step, mk_ec(True), mk_cache, rows,
                              compute, check_none=False)
            return
        ec = mk_ec(True)
        cond = ec.compile(step.cond)
        if ec.state_dep:
            ec = mk_ec(False)
            cond = ec.compile(step.cond)
            if rows is not None:
                w.emit(f"for _pt, _pd in {rows}:")
                w.push()
            w.emit("try:")
            w.push()
            self._emit_hoisted(w, ec)
            w.emit(f"_en = bool({cond}) == {step.when}")
            w.emit("_ub = None")
            w.pop()
            w.emit("except UBSignal as _u:")
            w.push()
            # A UB guard fires only via the when=True twin (BranchStep).
            w.emit(f"_en = {step.when}")
            w.emit("_ub = _u.reason")
            w.pop()
            w.emit("if _en:")
            w.push()
            w.emit("if _ub is not None:")
            w.push()
            w.emit("_ns = _term(state, TERM_UB, _ub)")
            w.pop()
            w.emit("else:")
            w.push()
            self._emit_build(w, step)
            w.pop()
            w.emit(
                f"_ap((Transition(tid, {step_ref}, {pt_src}), "
                f"_ns))"
            )
            w.pop()
            if rows is not None:
                w.pop()
            return

        def compute(cw):
            cw.emit("try:")
            cw.push()
            cw.emit(f"_en = bool({cond}) == {step.when}")
            cw.emit("_ub = None")
            cw.pop()
            cw.emit("except UBSignal as _u:")
            cw.push()
            # A UB guard fires only via the when=True twin (BranchStep).
            cw.emit(f"_en = {step.when}")
            cw.emit("_ub = _u.reason")
            cw.pop()
            cw.emit("if not _en:")
            cw.push()
            cw.emit("_e = None")
            cw.pop()
            cw.emit("elif _ub is not None:")
            cw.push()
            cw.emit(
                f"_e = (Transition(tid, {step_ref}, {pt_src}), "
                f"(TERM_UB, _ub))"
            )
            cw.pop()
            cw.emit("else:")
            cw.push()
            self._emit_thread_build(cw, step)
            cw.emit(
                f"_e = (Transition(tid, {step_ref}, {pt_src}), _nt, "
                f"hash((tid, _nt)))"
            )
            cw.pop()

        self._emit_family(w, step, ec, mk_cache, rows, compute,
                          check_none=True)

    def _emit_assume(self, w, step: AssumeStep, mk_ec, step_ref, pt_src,
                     mk_cache, rows=None):
        ec = mk_ec(True)
        cond = ec.compile(step.cond)
        if ec.state_dep:
            ec = mk_ec(False)
            cond = ec.compile(step.cond)
            if rows is not None:
                w.emit(f"for _pt, _pd in {rows}:")
                w.push()
            w.emit("try:")
            w.push()
            self._emit_hoisted(w, ec)
            w.emit(f"_en = bool({cond})")
            w.pop()
            w.emit("except UBSignal:")
            w.push()
            w.emit("_en = False")
            w.pop()
            w.emit("if _en:")
            w.push()
            self._emit_build(w, step)
            w.emit(
                f"_ap((Transition(tid, {step_ref}, {pt_src}), "
                f"_ns))"
            )
            w.pop()
            if rows is not None:
                w.pop()
            return

        def compute(cw):
            cw.emit("try:")
            cw.push()
            cw.emit(f"_en = bool({cond})")
            cw.pop()
            cw.emit("except UBSignal:")
            cw.push()
            cw.emit("_en = False")
            cw.pop()
            cw.emit("if _en:")
            cw.push()
            self._emit_thread_build(cw, step)
            cw.emit(
                f"_e = (Transition(tid, {step_ref}, {pt_src}), _nt, "
                f"hash((tid, _nt)))"
            )
            cw.pop()
            cw.emit("else:")
            cw.push()
            cw.emit("_e = None")
            cw.pop()

        self._emit_family(w, step, ec, mk_cache, rows, compute,
                          check_none=True)

    def _emit_assert(self, w, step: AssertStep, mk_ec, step_ref, pt_src,
                     mk_cache, rows=None):
        ec = mk_ec(True)
        cond = ec.compile(step.cond)
        reason = f"at {step.pc}"
        if ec.state_dep:
            ec = mk_ec(False)
            cond = ec.compile(step.cond)
            if rows is not None:
                w.emit(f"for _pt, _pd in {rows}:")
                w.push()
            w.emit("try:")
            w.push()
            self._emit_hoisted(w, ec)
            w.emit(f"if not ({cond}):")
            w.push()
            w.emit(f"_ns = _term(state, 'assert_failure', {reason!r})")
            w.pop()
            w.emit("else:")
            w.push()
            self._emit_build(w, step)
            w.pop()
            w.pop()
            w.emit("except UBSignal as _u:")
            w.push()
            w.emit("_ns = _term(state, TERM_UB, _u.reason)")
            w.pop()
            w.emit(
                f"_ap((Transition(tid, {step_ref}, {pt_src}), "
                f"_ns))"
            )
            if rows is not None:
                w.pop()
            return

        def compute(cw):
            cw.emit("try:")
            cw.push()
            cw.emit(f"if not ({cond}):")
            cw.push()
            cw.emit(
                f"_e = (Transition(tid, {step_ref}, {pt_src}), "
                f"('assert_failure', {reason!r}))"
            )
            cw.pop()
            cw.emit("else:")
            cw.push()
            self._emit_thread_build(cw, step)
            cw.emit(
                f"_e = (Transition(tid, {step_ref}, {pt_src}), _nt, "
                f"hash((tid, _nt)))"
            )
            cw.pop()
            cw.pop()
            cw.emit("except UBSignal as _u:")
            cw.push()
            cw.emit(
                f"_e = (Transition(tid, {step_ref}, {pt_src}), "
                f"(TERM_UB, _u.reason))"
            )
            cw.pop()

        self._emit_family(w, step, ec, mk_cache, rows, compute,
                          check_none=False)

    def _no_address_taken(self, method: str) -> bool:
        mctx = self.machine.ctx.method_contexts.get(method)
        if mctx is None:
            return True
        return not any(i.address_taken for i in mctx.locals.values())

    def _emit_call(self, w, step: CallStep, mk_ec, step_ref, pt_src,
                   pd_src, mk_cache):
        ec = mk_ec(True)
        args = ", ".join(ec.compile(a) for a in step.args)
        # A call's successor is a pure function of (thread, hoisted
        # reads, next_serial): the pushed frame embeds next_serial, and
        # a callee without address-taken locals touches neither memory
        # nor allocation.  next_serial is a multiset counter (one bump
        # per call on any thread), so interleavings of the same call
        # history share cache keys.
        cacheable = (
            not ec.state_dep and self._no_address_taken(step.method)
        )
        if not cacheable:
            ec = mk_ec(False)
            args = ", ".join(ec.compile(a) for a in step.args)
            w.emit("try:")
            w.push()
            w.emit(
                f"_ns = machine.push_frame(state, tid, {step.method!r}, "
                f"[{args}], {step.target!r}, {step.result_local!r}, "
                f"{pd_src})"
            )
            w.pop()
            w.emit("except UBSignal as _u:")
            w.push()
            w.emit("_ns = _term(state, TERM_UB, _u.reason)")
            w.pop()
            w.emit(
                f"_ap((Transition(tid, {step_ref}, {pt_src}), "
                f"_ns))"
            )
            return
        entry = self.machine.method_entry[step.method]
        cache = mk_cache()
        self._emit_hoisted(w, ec)
        base_key = self._cache_key_src(ec)
        if base_key == "thread":
            key = "(thread, state.next_serial)"
        else:
            key = base_key[:-1] + ", state.next_serial)"
        w.emit(f"_e = {cache}.get({key}, _MS)")
        w.emit("if _e is _MS:")
        w.push()
        w.emit("try:")
        w.push()
        w.emit(
            f"_nf = machine._make_frame(state, {step.method!r}, "
            f"[{args}], {pd_src}, {step.target!r}, "
            f"{step.result_local!r})[1]"
        )
        w.emit(
            f"_nt = ThreadState(tid, {entry!r}, "
            f"(_nf,) + thread.frames, thread.store_buffer, thread.view)"
        )
        w.emit(
            f"_e = (Transition(tid, {step_ref}, {pt_src}), _nt, "
            f"hash((tid, _nt)))"
        )
        w.pop()
        w.emit("except UBSignal as _u:")
        w.push()
        w.emit(
            f"_e = (Transition(tid, {step_ref}, {pt_src}), "
            f"(TERM_UB, _u.reason))"
        )
        w.pop()
        w.emit(f"{cache}[{key}] = _e")
        w.pop()
        ao = "tid" if self.inside(entry) else "None"
        w.emit("_p = _e[1]")
        w.emit("if _p.__class__ is ThreadState:")
        w.push()
        for line in self._threads_src("_p", new_hash="_e[2]"):
            w.emit(line)
        w.emit(
            f"_ap((_e[0], ProgramState(_nT, state.memory, "
            f"state.allocation, state.ghosts, state.log, None, "
            f"state.next_tid, state.next_serial + 1, {ao}, "
            f"state.histories)))"
        )
        w.pop()
        w.emit("else:")
        w.push()
        w.emit("_ap((_e[0], _term(state, _p[0], _p[1])))")
        w.pop()

    def _emit_return(self, w, step: ReturnStep, mk_ec, step_ref, pt_src,
                     mk_cache):
        ec = mk_ec(True)
        value = (
            ec.compile(step.value) if step.value is not None else None
        )
        # A return's successor is a pure function of (thread, hoisted
        # reads) when the returning method has no address-taken locals
        # (no roots to free): pop the frame, write the return value
        # into the caller, advance to the runtime return_pc.  The
        # atomic-owner and main-exit-termination decisions ride in the
        # entry because they depend on the popped frame.
        cacheable = (
            not ec.state_dep and self._no_address_taken(ec.method)
        )
        if not cacheable:
            ec = mk_ec(False)
            value = (
                ec.compile(step.value)
                if step.value is not None else "None"
            )
            w.emit("try:")
            w.push()
            w.emit(f"_ns = machine.pop_frame(state, tid, {value})")
            w.pop()
            w.emit("except UBSignal as _u:")
            w.push()
            w.emit("_ns = _term(state, TERM_UB, _u.reason)")
            w.pop()
            w.emit(
                f"_ap((Transition(tid, {step_ref}, {pt_src}), "
                f"_ns))"
            )
            return
        cache = mk_cache()
        self._emit_hoisted(w, ec)
        key = self._cache_key_src(ec)
        w.emit(f"_e = {cache}.get({key}, _MS)")
        w.emit("if _e is _MS:")
        w.push()
        w.emit("try:")
        w.push()
        if value is not None:
            w.emit(f"_v = {value}")
        w.emit("_f0 = thread.frames[0]")
        w.emit("_rest = thread.frames[1:]")
        w.emit("if not _rest:")
        w.push()
        w.emit(
            "_nt = ThreadState(tid, None, (), thread.store_buffer, "
            "thread.view)"
        )
        w.emit(
            f"_e = (Transition(tid, {step_ref}, {pt_src}), _nt, "
            f"hash((tid, _nt)), False, tid == 1)"
        )
        w.pop()
        w.emit("else:")
        w.push()
        w.emit("_c0 = _rest[0]")
        if value is not None:
            w.emit("if _f0.return_lhs_key is not None and _v is not None:")
            w.push()
            w.emit(
                "_c0 = Frame(_c0.method, _c0.serial, "
                "_c0.locals.set(_f0.return_lhs_key, _v), "
                "_c0.return_pc, _c0.return_lhs_key)"
            )
            w.pop()
        w.emit(
            "_nt = ThreadState(tid, _f0.return_pc, (_c0,) + _rest[1:], "
            "thread.store_buffer, thread.view)"
        )
        w.emit(
            f"_e = (Transition(tid, {step_ref}, {pt_src}), _nt, "
            f"hash((tid, _nt)), "
            f"not machine.pcs[_f0.return_pc].yieldable, False)"
        )
        w.pop()
        w.pop()
        w.emit("except UBSignal as _u:")
        w.push()
        w.emit(
            f"_e = (Transition(tid, {step_ref}, {pt_src}), "
            f"(TERM_UB, _u.reason))"
        )
        w.pop()
        w.emit(f"{cache}[{key}] = _e")
        w.pop()
        w.emit("_p = _e[1]")
        w.emit("if _p.__class__ is ThreadState:")
        w.push()
        for line in self._threads_src("_p", new_hash="_e[2]"):
            w.emit(line)
        w.emit(
            "_ap((_e[0], ProgramState(_nT, state.memory, "
            "state.allocation, state.ghosts, state.log, "
            "_TN if _e[4] else None, state.next_tid, state.next_serial, "
            "tid if _e[3] else None, state.histories)))"
        )
        w.pop()
        w.emit("else:")
        w.push()
        w.emit("_ap((_e[0], _term(state, _p[0], _p[1])))")
        w.pop()

    def _emit_create(self, w, step: CreateThreadStep, ec, step_ref,
                     pt_src, pd_src):
        spec = (
            self._classify_lhs(ec, step.lhs)
            if step.lhs is not None else None
        )
        if spec is not None and spec[0] == "gelem":
            raise _Unsupported("indexed create_thread lhs")
        args = ", ".join(ec.compile(a) for a in step.args)
        w.emit("try:")
        w.push()
        w.emit(
            f"_ns, _nt = machine.spawn_thread(state, {step.method!r}, "
            f"[{args}], {pd_src}, tid)"
        )
        if spec is not None:
            buffered = spec[0] in ("global", "gelem", "memlocal")
            self._emit_write(w, spec, "_nt", buffered)
        w.emit(f"_ns = {self._adv_src(step, '_ns')}")
        w.pop()
        w.emit("except UBSignal as _u:")
        w.push()
        w.emit("_ns = _term(state, TERM_UB, _u.reason)")
        w.pop()
        w.emit(f"_ap((Transition(tid, {step_ref}, {pt_src}), _ns))")

    def _emit_join(self, w, step: JoinStep, ec, step_ref, pt_src):
        target = ec.compile(step.thread)
        w.emit("try:")
        w.push()
        w.emit(f"_t = {target}")
        w.emit("_o = state.threads.get(_t)")
        w.emit("_en = _o is not None and _o.pc is None")
        w.emit("_ub = None")
        w.pop()
        w.emit("except UBSignal as _u:")
        w.push()
        w.emit("_en = True")
        w.emit("_ub = _u.reason")
        w.pop()
        w.emit("if _en:")
        w.push()
        w.emit("if _ub is not None:")
        w.push()
        w.emit("_ns = _term(state, TERM_UB, _ub)")
        w.pop()
        w.emit("else:")
        w.push()
        # SC and TSO both use the base identity ``on_join`` (only RA
        # merges views, and RA machines are never compiled), so the
        # join advance fuses directly from *state*.
        self._emit_build(w, step)
        w.pop()
        w.emit(f"_ap((Transition(tid, {step_ref}, {pt_src}), _ns))")
        w.pop()

    # -- externs ---------------------------------------------------------

    #: Externs whose semantics require an empty store buffer (the x86
    #: LOCK prefix / MFENCE drains it) — from ExternStep.enabled.
    _SB_EXTERNS = frozenset((
        "lock", "unlock", "compare_and_swap", "atomic_exchange",
        "atomic_fetch_add", "fence",
    ))

    def _emit_mutex_loc(self, w, ec, arg: ast.Expr) -> str:
        """Emit code computing ``_mutex_location``'s result for the
        supported ``&var`` / ``&array[i]`` / ``&local`` shapes; raises
        UBSignal exactly where place evaluation would."""
        if not isinstance(arg, ast.AddressOf):
            raise _Unsupported("extern location not an address-of")
        operand = arg.operand
        if isinstance(operand, ast.Var):
            info = ec._local_info(operand.name)
            if info is not None:
                if not info.address_taken:
                    raise _Unsupported("address of register local")
                w.emit(
                    f"_loc = Location(Root('local', {operand.name!r}, "
                    f"thread.frames[0].serial))"
                )
                return "_loc"
            g = ec._global_decl(operand.name)
            if g is None or g.ghost:
                raise _Unsupported("address of ghost/unknown")
            return self.global_loc(operand.name)
        if isinstance(operand, ast.Index) and \
                isinstance(operand.base, ast.Var):
            base = operand.base
            if ec._local_info(base.name) is not None:
                raise _Unsupported("address of local element")
            g = ec._global_decl(base.name)
            if g is None or g.ghost or not isinstance(
                g.var_type, ty.ArrayType
            ):
                raise _Unsupported("address of non-array element")
            t = g.var_type
            if isinstance(t.element, (ty.ArrayType, ty.StructType)):
                raise _Unsupported("nested composite element")
            locs = self.global_leaf_locs(base.name, t.size)
            w.emit(f"_li = {ec.compile(operand.index)}")
            w.emit(f"if not 0 <= _li < {t.size}:")
            w.push()
            w.emit(
                f'raise UBSignal(f"index {{_li}} out of bounds for {t}")'
            )
            w.pop()
            w.emit(f"_loc = {locs}[_li]")
            return "_loc"
        raise _Unsupported("extern location shape")

    def _emit_extern(self, w, step: ExternStep, ec, step_ref, pt_src):
        name = step.name
        lhs_spec = (
            self._classify_lhs(ec, step.lhs)
            if step.lhs is not None else None
        )
        if lhs_spec is not None and lhs_spec[0] == "gelem":
            raise _Unsupported("indexed extern lhs")
        if name in ("lock", "unlock", "initialize_mutex", "fence",
                    "compare_and_swap", "atomic_exchange",
                    "atomic_fetch_add"):
            if lhs_spec is not None and name in (
                "lock", "unlock", "initialize_mutex", "fence"
            ):
                raise _Unsupported(f"{name} with lhs")
        elif name not in ("print_uint64", "print_uint32"):
            raise _Unsupported(f"extern {name}")

        guarded = name in self._SB_EXTERNS
        if guarded:
            w.emit("if not thread.store_buffer:")
            w.push()

        emit_tr = (
            f"_ap((Transition(tid, {step_ref}, {pt_src}), _ns))"
        )

        if name == "lock":
            w.emit("try:")
            w.push()
            loc = self._emit_mutex_loc(w, ec, step.args[0])
            w.emit(f"_en = state.memory.get({loc}, 0) == 0")
            w.emit("_ub = None")
            w.pop()
            w.emit("except UBSignal as _u:")
            w.push()
            w.emit("_en = True")
            w.emit("_ub = _u.reason")
            w.pop()
            w.emit("if _en:")
            w.push()
            w.emit("if _ub is not None:")
            w.push()
            w.emit("_ns = _term(state, TERM_UB, _ub)")
            w.pop()
            w.emit("else:")
            w.push()
            adv = self._adv_src(
                step, f"mm.atomic_update(state, tid, {loc}, tid)"
            )
            w.emit(f"_ns = {adv}")
            w.pop()
            w.emit(emit_tr)
            w.pop()
        elif name in ("unlock", "initialize_mutex"):
            w.emit("try:")
            w.push()
            loc = self._emit_mutex_loc(w, ec, step.args[0])
            if name == "unlock":
                w.emit(f"if state.memory.get({loc}) != tid:")
                w.push()
                w.emit('raise UBSignal("unlock of a mutex not held by '
                       'this thread")')
                w.pop()
            adv = self._adv_src(
                step, f"mm.atomic_update(state, tid, {loc}, 0)"
            )
            w.emit(f"_ns = {adv}")
            w.pop()
            w.emit("except UBSignal as _u:")
            w.push()
            w.emit("_ns = _term(state, TERM_UB, _u.reason)")
            w.pop()
            w.emit(emit_tr)
        elif name == "fence":
            adv = self._adv_src(step, "mm.fence(state, tid)")
            w.emit(f"_ns = {adv}")
            w.emit(emit_tr)
        elif name in ("print_uint64", "print_uint32"):
            arg = ec.compile(step.args[0])
            w.emit("try:")
            w.push()
            w.emit(f"_v = {arg}")
            w.emit("_ns = state.append_log(_v)")
            if lhs_spec is not None:
                buffered = lhs_spec[0] in ("global", "gelem", "memlocal")
                self._emit_write(w, lhs_spec, "None", buffered)
            w.emit(f"_ns = {self._adv_src(step, '_ns')}")
            w.pop()
            w.emit("except UBSignal as _u:")
            w.push()
            w.emit("_ns = _term(state, TERM_UB, _u.reason)")
            w.pop()
            w.emit(emit_tr)
        else:  # compare_and_swap / atomic_exchange / atomic_fetch_add
            w.emit("try:")
            w.push()
            loc = self._emit_mutex_loc(w, ec, step.args[0])
            if name == "compare_and_swap":
                w.emit(f"_e = {ec.compile(step.args[1])}")
                w.emit(f"_d = {ec.compile(step.args[2])}")
                w.emit(f"_cur = state.memory.get({loc})")
                w.emit("if _cur is None:")
                w.push()
                w.emit('raise UBSignal("CAS on unmapped location")')
                w.pop()
                w.emit("if _cur == _e:")
                w.push()
                w.emit(f"_ns = mm.atomic_update(state, tid, {loc}, _d)")
                w.emit("_res = True")
                w.pop()
                w.emit("else:")
                w.push()
                w.emit(f"_ns = mm.atomic_acquire(state, tid, {loc})")
                w.emit("_res = False")
                w.pop()
            elif name == "atomic_exchange":
                w.emit(f"_x = {ec.compile(step.args[1])}")
                w.emit(f"_cur = state.memory.get({loc})")
                w.emit("if _cur is None:")
                w.push()
                w.emit('raise UBSignal("exchange on unmapped location")')
                w.pop()
                w.emit(f"_ns = mm.atomic_update(state, tid, {loc}, _x)")
                w.emit("_res = _cur")
            else:  # atomic_fetch_add
                w.emit(f"_x = {ec.compile(step.args[1])}")
                w.emit(f"_cur = state.memory.get({loc})")
                w.emit("if _cur is None:")
                w.push()
                w.emit('raise UBSignal("fetch_add on unmapped location")')
                w.pop()
                w.emit(
                    f"_ns = mm.atomic_update(state, tid, {loc}, "
                    f"(_cur + _x) & 0xffffffffffffffff)"
                )
                w.emit("_res = _cur")
            if lhs_spec is not None:
                buffered = lhs_spec[0] in ("global", "gelem", "memlocal")
                self._emit_write(w, lhs_spec, "_res", buffered)
            w.emit(f"_ns = {self._adv_src(step, '_ns')}")
            w.pop()
            w.emit("except UBSignal as _u:")
            w.push()
            w.emit("_ns = _term(state, TERM_UB, _u.reason)")
            w.pop()
            w.emit(emit_tr)
        if guarded:
            w.pop()


# ---------------------------------------------------------------------------
# Fingerprinting and the on-disk source cache


def _ast_sig(node: Any) -> Any:
    """Deterministic structural signature of an AST fragment, including
    the checked types that drive wrap/overflow codegen."""
    if isinstance(node, ast.Expr):
        sig: list[Any] = [
            type(node).__name__,
            str(node.type) if node.type is not None else "?",
        ]
        for f in dataclasses.fields(node):
            if f.name in ("loc", "type"):
                continue
            sig.append(_ast_sig(getattr(node, f.name)))
        return sig
    if isinstance(node, (list, tuple)):
        return [_ast_sig(item) for item in node]
    if isinstance(node, ty.Type):
        return str(node)
    if node is None or isinstance(node, (str, int, bool)):
        return node
    if dataclasses.is_dataclass(node):
        sig = [type(node).__name__]
        for f in dataclasses.fields(node):
            if f.name == "loc":
                continue
            sig.append(_ast_sig(getattr(node, f.name)))
        return sig
    return repr(node)


def machine_fingerprint(machine: StateMachine) -> str:
    """Level fingerprint + model: the on-disk cache key ingredients."""
    from repro.farm.cache import code_version, structural_hash

    ctx = machine.ctx
    pcs = [
        [pc, info.method, bool(info.yieldable)]
        for pc, info in sorted(machine.pcs.items())
    ]
    steps = [
        [pc, [_ast_sig(step) for step in steps_at]]
        for pc, steps_at in sorted(machine.steps_by_pc.items())
    ]
    globals_sig = [
        [name, bool(g.ghost), str(g.var_type)]
        for name, g in sorted(ctx.globals.items())
    ]
    locals_sig = [
        [
            method,
            [
                [name, bool(info.address_taken), bool(info.is_param),
                 str(info.type)]
                for name, info in sorted(mctx.locals.items())
            ],
        ]
        for method, mctx in sorted(ctx.method_contexts.items())
    ]
    extra = [
        sorted(machine.method_entry.items()),
        sorted((m, list(names)) for m, names in
               machine.memory_locals.items()),
        sorted(
            (m, [[n, str(t)] for n, t in pairs])
            for m, pairs in machine.newframe_locals.items()
        ),
    ]
    return structural_hash(
        "stepc", _STEPC_FORMAT, code_version(), machine.level_name,
        machine.memmodel.name, pcs, steps, globals_sig, locals_sig, extra,
    )


def _cache_dir() -> Path | None:
    env = os.environ.get("ARMADA_STEPC_CACHE")
    if env is not None:
        if env.lower() in ("", "0", "off", "none"):
            return None
        return Path(env)
    home = os.environ.get("HOME")
    if not home:
        return None
    return Path(home) / ".cache" / "armada" / "stepc"


def _cache_load(key: str) -> str | None:
    directory = _cache_dir()
    if directory is None:
        return None
    try:
        return (directory / f"{key}.py").read_text()
    except OSError:
        return None


def _cache_store(key: str, source: str) -> None:
    directory = _cache_dir()
    if directory is None:
        return
    try:
        directory.mkdir(parents=True, exist_ok=True)
        tmp = directory / f".{key}.{os.getpid()}.tmp"
        tmp.write_text(source)
        tmp.replace(directory / f"{key}.py")
    except OSError:
        pass


# ---------------------------------------------------------------------------
# Entry points


@dataclasses.dataclass(frozen=True)
class StepFootprint:
    """Static access metadata for one step, exported to the
    exploration-time reducers (:mod:`repro.explore.dpor`): the abstract
    locations the step may read/write, whether every write is a plain
    TSO-buffered store, whether any access is atomic, and whether the
    step is ghost-free.  Derived once per machine from the analyzer's
    access map and shared by every exploration of the stepper."""

    reads: frozenset
    writes: frozenset
    buffered_writes_only: bool
    atomic: bool
    ghost_free: bool


class CompiledStepper:
    """A compiled ``enabled_and_next`` plus its provenance."""

    __slots__ = (
        "machine", "fn", "source", "cache_key", "cache_hit",
        "compiled_steps", "fallback_steps", "_footprints",
    )

    def __init__(self, machine, fn, source, cache_key, cache_hit,
                 compiled_steps, fallback_steps):
        self.machine = machine
        self.fn = fn
        self.source = source
        self.cache_key = cache_key
        self.cache_hit = cache_hit
        self.compiled_steps = compiled_steps
        self.fallback_steps = fallback_steps
        self._footprints: dict[int, StepFootprint] | None = None

    def enabled_and_next(
        self, state: ProgramState
    ) -> list[tuple[Transition, ProgramState]]:
        return self.fn(state)

    __call__ = enabled_and_next

    def step_footprints(self) -> dict[int, StepFootprint]:
        """``id(step) -> StepFootprint`` for every step of the machine,
        built lazily on first use (steps compare by identity, so the id
        key is stable for the machine's lifetime)."""
        table = self._footprints
        if table is None:
            # Deferred: repro.analysis reaches back into the strategy
            # layer, which imports repro.explore and this module.
            from repro.analysis.accesses import extract_accesses
            from repro.analysis.independence import _mentions_ghost

            machine = self.machine
            amap = extract_accesses(machine.ctx, machine)
            table = {}
            for pc, steps in machine.steps_by_pc.items():
                method = machine.pcs[pc].method
                for step in steps:
                    reads: set = set()
                    writes: set = set()
                    buffered_only = True
                    atomic = False
                    for access in amap.step_accesses(step):
                        if access.kind == "write":
                            writes.add(access.location)
                            if not access.buffered or access.atomic:
                                buffered_only = False
                        else:
                            reads.add(access.location)
                        atomic = atomic or access.atomic
                    table[id(step)] = StepFootprint(
                        frozenset(reads), frozenset(writes),
                        buffered_only, atomic,
                        not _mentions_ghost(
                            machine.ctx, method, step.reads_exprs()
                        ),
                    )
            self._footprints = table
        return table


def compile_stepper(machine: StateMachine) -> CompiledStepper:
    """Generate (or load from the source cache), exec-compile, and bind
    the specialized step relation for *machine*.  Raises on machines the
    specializer cannot handle at all; per-step gaps fall back inline."""
    key = machine_fingerprint(machine)
    source = _cache_load(key)
    cache_hit = source is not None
    gen = _Gen(machine)
    if source is None:
        source = gen.generate(key)
        _cache_store(key, source)
    namespace = dict(_NAMESPACE_BASE)
    try:
        code = compile(
            source, f"<armada-stepc:{machine.level_name}:"
            f"{machine.memmodel.name}>", "exec"
        )
        exec(code, namespace)
        fn = namespace["build"](machine)
    except Exception:
        if not cache_hit:
            raise
        # A stale/corrupt cached source: regenerate from scratch.
        gen = _Gen(machine)
        source = gen.generate(key)
        _cache_store(key, source)
        namespace = dict(_NAMESPACE_BASE)
        exec(compile(source, "<armada-stepc>", "exec"), namespace)
        fn = namespace["build"](machine)
        cache_hit = False
    if cache_hit:
        # Counters come from a fresh (uncached) generation pass; when
        # the source came from disk, recover them from the fallback
        # markers in the source itself.
        gen.fallback_steps = source.count("_interp(machine, ")
        gen.compiled_steps = (
            machine.step_count() - gen.fallback_steps
        )
    return CompiledStepper(
        machine, fn, source, key, cache_hit,
        gen.compiled_steps, gen.fallback_steps,
    )


def _domains_token(domains) -> tuple:
    try:
        return (
            tuple(domains.bool_values),
            tuple(domains.int_values),
            tuple(domains.newframe_int_values),
            tuple(domains.overrides.items()),
        )
    except Exception:
        return (object(),)  # unknown shape: never matches, always rebuild


def stepper_for(machine: StateMachine) -> CompiledStepper | None:
    """The compiled stepper for *machine*, or ``None`` when the whole
    machine must stay interpreted (non-SC/TSO model, codegen failure).

    Memoized on the machine, keyed by the value domains: the proof
    engine replaces ``machine.domains`` after translation, and the
    parameter tuples bound into the compiled function depend on them.
    """
    memmodel = getattr(machine, "memmodel", None)
    if memmodel is None or memmodel.name not in ("sc", "tso"):
        return None
    token = _domains_token(getattr(machine, "domains", None))
    cached = machine.__dict__.get("_stepc_cache")
    if cached is not None and cached[0] == token:
        return cached[1]
    try:
        stepper = compile_stepper(machine)
    except Exception:
        if OBS.enabled:
            OBS.count("stepc.codegen_failed")
        stepper = None
    machine.__dict__["_stepc_cache"] = (token, stepper)
    return stepper
