"""Python execution back end for core Armada.

This is the reproduction's stand-in for the paper's compilation paths
(Figure 12, see DESIGN.md).  Three modes:

* ``mode="sc"`` — the *GCC analogue*: aggressive direct compilation;
  globals become module-level Python variables accessed natively.
* ``mode="conservative"`` — the *CompCertTSO analogue*: correct but
  less optimized code, the way a 2013-era verified compiler emits it.
  Every shared access goes through an accessor with no caching or
  expression fusion (volatile-style), every arithmetic result is
  re-normalized to its machine width, and fences compile to real calls.
  On x86 the hardware provides TSO natively, so — exactly as with
  CompCertTSO — no run-time buffering is needed; the cost is purely
  less aggressive code generation.
* ``mode="tso"`` — a *semantics-testing* mode (not a performance
  analogue): every shared write goes through an explicit per-thread
  FIFO store buffer and every shared read searches it, with drains at
  fences, atomics, and buffer pressure.  Useful for exercising TSO
  behaviours from compiled code in tests and examples.

The backend emits a self-contained Python module source and can execute
it with real ``threading`` threads.  Only the core-Armada subset used
by performance code is supported (fixed-width ints, arrays, pointers to
scalar globals for the mutex/atomic externs, threads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import CompileError
from repro.lang import asts as ast
from repro.lang import types as ty
from repro.lang.core_check import check_core
from repro.lang.resolver import LevelContext

_RUNTIME = '''\
import threading

class _Ref:
    """A pointer to a named global scalar (for extern calls)."""
    __slots__ = ("name",)
    def __init__(self, name):
        self.name = name

class _Runtime:
    def __init__(self):
        self.log = []
        self.log_lock = threading.Lock()
        self.locks = {}
        self.threads = []
        self.cas_lock = threading.Lock()

RT = _Runtime()

def initialize_mutex(ref):
    RT.locks[ref.name] = threading.Lock()

def lock(ref):
    RT.locks[ref.name].acquire()

def unlock(ref):
    RT.locks[ref.name].release()

def compare_and_swap(ref, expected, desired):
    with RT.cas_lock:
        g = globals()
        if g[ref.name] == expected:
            g[ref.name] = desired
            return True
        return False

def atomic_exchange(ref, value):
    with RT.cas_lock:
        g = globals()
        old = g[ref.name]
        g[ref.name] = value
        return old

def atomic_fetch_add(ref, delta):
    with RT.cas_lock:
        g = globals()
        old = g[ref.name]
        g[ref.name] = (old + delta) & 0xFFFFFFFFFFFFFFFF
        return old

def print_uint64(n):
    with RT.log_lock:
        RT.log.append(n)

print_uint32 = print_uint64

def _spawn(fn, args):
    t = threading.Thread(target=fn, args=args)
    RT.threads.append(t)
    t.start()
    return len(RT.threads) - 1

def _join(handle):
    RT.threads[handle].join()
'''

_SC_RUNTIME = '''\

def fence():
    pass
'''

_CONSERVATIVE_RUNTIME = '''\

def fence():
    # The fence survives as a real (non-inlined) call: CompCertTSO
    # neither removes nor inlines the ClightTSO barrier.
    pass
'''

_TSO_RUNTIME = '''\

_TLS = threading.local()
_SB_CAPACITY = 8

def _sb():
    buf = getattr(_TLS, "buf", None)
    if buf is None:
        buf = []
        _TLS.buf = buf
    return buf

def _sb_write(key, value):
    """Buffered x86-TSO store: enqueue, draining under pressure."""
    buf = _sb()
    buf.append((key, value))
    if len(buf) >= _SB_CAPACITY:
        _drain_one()

def _sb_write_elem(name, index, value):
    _sb_write((name, index), value)

def _sb_read(key):
    """Local view: youngest buffered store wins, else global memory."""
    buf = _sb()
    for i in range(len(buf) - 1, -1, -1):
        if buf[i][0] == key:
            return buf[i][1]
    g = globals()
    if isinstance(key, tuple):
        return g[key[0]][key[1]]
    return g[key]

def _drain_one():
    buf = _sb()
    key, value = buf.pop(0)
    g = globals()
    if isinstance(key, tuple):
        g[key[0]][key[1]] = value
    else:
        g[key] = value

def fence():
    buf = _sb()
    while buf:
        _drain_one()
'''

_MODE_RUNTIMES = {
    "sc": _SC_RUNTIME,
    "conservative": _CONSERVATIVE_RUNTIME,
    "tso": _TSO_RUNTIME,
}

_MASKS = {8: 0xFF, 16: 0xFFFF, 32: 0xFFFFFFFF, 64: 0xFFFFFFFFFFFFFFFF}


@dataclass
class CompiledProgram:
    """A compiled Armada program ready to execute."""

    source: str
    level_name: str
    mode: str

    def run(self) -> list[int]:
        """Execute ``main`` (with real threads); returns the console
        log."""
        namespace = self.load()
        namespace["main"]()
        return list(namespace["RT"].log)

    def load(self) -> dict[str, Any]:
        """Execute the module body only, returning its namespace (for
        benchmarks that drive individual methods)."""
        namespace: dict[str, Any] = {}
        exec(compile(self.source, f"<armada:{self.level_name}>", "exec"),
             namespace)
        return namespace


class PyBackend:
    def __init__(self, ctx: LevelContext, mode: str = "sc") -> None:
        if mode not in _MODE_RUNTIMES:
            raise CompileError(f"unknown backend mode {mode!r}")
        self.ctx = ctx
        self.mode = mode
        self._lines: list[str] = []
        self._indent = 0

    # ------------------------------------------------------------------

    def compile(self) -> CompiledProgram:
        check_core(self.ctx)
        self._check_shadowing()
        self._lines = [_RUNTIME, _MODE_RUNTIMES[self.mode]]
        self._emit_globals()
        for method in self.ctx.level.methods:
            if method.body is not None and not method.is_extern:
                self._emit_method(method)
        return CompiledProgram(
            "\n".join(self._lines) + "\n", self.ctx.level.name, self.mode
        )

    def _check_shadowing(self) -> None:
        global_names = set(self.ctx.globals)
        for method_name, mctx in self.ctx.method_contexts.items():
            clash = global_names & set(mctx.locals)
            if clash:
                raise CompileError(
                    f"python backend: local(s) {sorted(clash)} in "
                    f"{method_name} shadow globals; rename them"
                )

    # ------------------------------------------------------------------

    def _emit(self, line: str = "") -> None:
        self._lines.append("    " * self._indent + line)

    def _emit_globals(self) -> None:
        for g in self.ctx.level.globals:
            self._lines.append(f"{g.name} = {self._default(g)}")

    def _default(self, g: ast.GlobalVarDecl) -> str:
        t = g.var_type
        if isinstance(t, ty.ArrayType):
            return f"[0] * {t.size}"
        if g.init is not None and isinstance(g.init, ast.IntLit):
            return str(g.init.value)
        return "0"

    # ------------------------------------------------------------------

    def _emit_method(self, method: ast.MethodDecl) -> None:
        params = ", ".join(p.name for p in method.params)
        self._emit("")
        self._emit(f"def {method.name}({params}):")
        self._indent += 1
        assert method.body is not None
        if self.mode in ("sc", "conservative"):
            written = self._written_global_scalars(method.body)
            if written:
                self._emit(f"global {', '.join(sorted(written))}")
        if not method.body.stmts:
            self._emit("pass")
        for stmt in method.body.stmts:
            self._stmt(stmt)
        if self.mode == "tso":
            # Thread exit drains the store buffer (the hardware does
            # eventually; joining threads must observe the writes).
            self._emit("fence()")
        self._indent -= 1

    def _written_global_scalars(self, block: ast.Block) -> set[str]:
        written: set[str] = set()
        for stmt in ast.walk_stmts(block):
            if isinstance(stmt, ast.AssignStmt):
                for lhs in stmt.lhss:
                    if isinstance(lhs, ast.Var) and lhs.name in \
                            self.ctx.globals:
                        written.add(lhs.name)
        return written

    def _stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                self._stmt(inner)
        elif isinstance(stmt, ast.VarDeclStmt):
            if stmt.init is None:
                self._emit(f"{stmt.name} = 0")
            else:
                self._assign_one(ast.Var(stmt.name), stmt.init)
        elif isinstance(stmt, ast.AssignStmt):
            if not stmt.lhss:
                rhs = stmt.rhss[0]
                assert isinstance(rhs, ast.CallRhs)
                if rhs.method == "fence" and self.mode == "sc":
                    # A compiler barrier costs zero instructions under
                    # an aggressive compiler (the GCC analogue).
                    return
                self._emit(self._call_text(rhs))
                return
            for lhs, rhs in zip(stmt.lhss, stmt.rhss):
                self._assign_one(lhs, rhs)
        elif isinstance(stmt, ast.IfStmt):
            self._emit(f"if {self._expr(stmt.cond)}:")
            self._block(stmt.then)
            if stmt.els is not None:
                self._emit("else:")
                self._block(stmt.els)
        elif isinstance(stmt, ast.WhileStmt):
            self._emit(f"while {self._expr(stmt.cond)}:")
            self._block(stmt.body)
        elif isinstance(stmt, ast.BreakStmt):
            self._emit("break")
        elif isinstance(stmt, ast.ContinueStmt):
            self._emit("continue")
        elif isinstance(stmt, ast.ReturnStmt):
            if self.mode == "tso":
                self._emit("fence()")
            if stmt.value is not None:
                self._emit(f"return {self._expr(stmt.value)}")
            else:
                self._emit("return")
        elif isinstance(stmt, ast.AssertStmt):
            self._emit(f"assert {self._expr(stmt.cond)}")
        elif isinstance(stmt, ast.JoinStmt):
            self._emit(f"_join({self._expr(stmt.thread)})")
        elif isinstance(stmt, ast.LabelStmt):
            self._stmt(stmt.stmt)
        else:
            raise CompileError(
                f"python backend cannot compile {type(stmt).__name__}",
                stmt.loc,
            )

    def _block(self, block: ast.Block) -> None:
        self._indent += 1
        if not block.stmts:
            self._emit("pass")
        for inner in block.stmts:
            self._stmt(inner)
        self._indent -= 1

    # ------------------------------------------------------------------

    def _assign_one(self, lhs: ast.Expr, rhs: ast.Rhs) -> None:
        if isinstance(rhs, ast.ExprRhs):
            value = self._expr(rhs.expr)
            value = self._masked(lhs.type, value, rhs.expr)
            self._emit_store(lhs, value)
        elif isinstance(rhs, ast.CallRhs):
            self._emit_store(lhs, self._call_text(rhs))
        elif isinstance(rhs, ast.CreateThreadRhs):
            args = ", ".join(self._expr(a) for a in rhs.args)
            trailing = "," if rhs.args else ""
            self._emit_store(
                lhs, f"_spawn({rhs.method}, ({args}{trailing}))"
            )
        else:
            raise CompileError(
                "python backend does not support heap allocation",
                rhs.loc,
            )

    def _call_text(self, rhs: ast.CallRhs) -> str:
        args = ", ".join(self._expr(a) for a in rhs.args)
        return f"{rhs.method}({args})"

    def _emit_store(self, lhs: ast.Expr, value: str) -> None:
        if isinstance(lhs, ast.Var):
            if lhs.name in self.ctx.globals:
                if self.mode == "tso":
                    self._emit(f"_sb_write({lhs.name!r}, {value})")
                else:
                    self._emit(f"{lhs.name} = {value}")
            else:
                self._emit(f"{lhs.name} = {value}")
            return
        if isinstance(lhs, ast.Index) and isinstance(lhs.base, ast.Var) \
                and lhs.base.name in self.ctx.globals:
            index = self._expr(lhs.index)
            if self.mode == "tso":
                self._emit(
                    f"_sb_write_elem({lhs.base.name!r}, {index}, {value})"
                )
            else:
                self._emit(f"{lhs.base.name}[{index}] = {value}")
            return
        raise CompileError("unsupported assignment target", lhs.loc)

    def _masked(
        self, t: ty.Type | None, value: str, expr: ast.Expr | None = None
    ) -> str:
        if isinstance(t, ty.IntType) and not t.signed:
            if self.mode == "conservative":
                # No overflow-analysis elision: always re-normalize.
                return f"(({value}) & {hex(_MASKS[t.bits])})"
            if self.mode == "sc" and isinstance(expr, ast.Binary) \
                    and expr.op in ("%", ">>", "&"):
                # Already bounded: an aggressive compiler elides the wrap.
                return value
            if any(op in value for op in ("+", "-", "*", "<<")):
                return f"(({value}) & {hex(_MASKS[t.bits])})"
        return value

    # ------------------------------------------------------------------

    def _expr(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.IntLit):
            return str(expr.value)
        if isinstance(expr, ast.BoolLit):
            return "True" if expr.value else "False"
        if isinstance(expr, ast.Var):
            if expr.name in self.ctx.globals and self.mode == "tso":
                return f"_sb_read({expr.name!r})"
            return expr.name
        if isinstance(expr, ast.Unary):
            ops = {"!": "not ", "-": "-", "~": "~"}
            return f"({ops[expr.op]}{self._expr(expr.operand)})"
        if isinstance(expr, ast.Binary):
            return self._binary(expr)
        if isinstance(expr, ast.Conditional):
            return (
                f"({self._expr(expr.then)} if {self._expr(expr.cond)} "
                f"else {self._expr(expr.els)})"
            )
        if isinstance(expr, ast.AddressOf):
            target = expr.operand
            if isinstance(target, ast.Var) and target.name in \
                    self.ctx.globals:
                return f"_Ref({target.name!r})"
            raise CompileError(
                "python backend only supports pointers to globals",
                expr.loc,
            )
        if isinstance(expr, ast.Index):
            if isinstance(expr.base, ast.Var) and expr.base.name in \
                    self.ctx.globals:
                index = self._expr(expr.index)
                if self.mode == "tso":
                    return f"_sb_read(({expr.base.name!r}, {index}))"
                return f"{expr.base.name}[{index}]"
            return f"{self._expr(expr.base)}[{self._expr(expr.index)}]"
        if isinstance(expr, ast.Call):
            args = ", ".join(self._expr(a) for a in expr.args)
            return f"{expr.func}({args})"
        raise CompileError(
            f"python backend cannot compile {type(expr).__name__}",
            expr.loc,
        )

    def _binary(self, expr: ast.Binary) -> str:
        ops = {"&&": "and", "||": "or"}
        if expr.op == "==>":
            return (
                f"((not {self._expr(expr.left)}) or "
                f"{self._expr(expr.right)})"
            )
        if expr.op == "/" and expr.type is not None \
                and expr.type.is_integer():
            return f"({self._expr(expr.left)} // {self._expr(expr.right)})"
        op = ops.get(expr.op, expr.op)
        text = f"({self._expr(expr.left)} {op} {self._expr(expr.right)})"
        if isinstance(expr.type, ty.IntType) and not expr.type.signed \
                and expr.op in ("+", "-", "*", "<<"):
            if self.mode in ("sc", "conservative"):
                # Intermediates stay exact (machine registers hold the
                # full value); the wrap happens at the store boundary.
                return text
            return f"({text} & {hex(_MASKS[expr.type.bits])})"
        return text


def compile_to_python(
    ctx: LevelContext, mode: str = "sc"
) -> CompiledProgram:
    """Compile a core Armada level to an executable Python module."""
    return PyBackend(ctx, mode).compile()
