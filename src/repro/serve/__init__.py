"""``repro.serve`` — verification as a service.

``armada serve`` keeps a daemon resident next to a state directory so
that verification stops being a batch process and becomes a queryable
service: editors, CI runners, and humans with ``nc`` submit Armada
programs over a line-delimited JSON socket protocol, poll status,
stream lifecycle events, and fetch results — while the daemon
multiplexes every job onto shared warm state (one byte-capped LRU
proof cache, one proof-outcome cache, per-program resume journals and
a level-fingerprint index for incremental re-verification).

Modules:

* :mod:`repro.serve.protocol` — the NDJSON wire protocol (ops, job
  kinds, job states, framing).
* :mod:`repro.serve.incremental` — the proof-outcome cache and the
  per-level fingerprint diff that make resubmitting an edited program
  re-verify only the proofs the edit invalidated.
* :mod:`repro.serve.daemon` — the asyncio server, job queue, drain
  lifecycle, and restart resume.
* :mod:`repro.serve.client` — the synchronous client library the
  ``armada submit``/``status``/``result``/``cancel`` subcommands use.
"""

from __future__ import annotations

from repro.serve.client import ServeClient, ServeError  # noqa: F401
from repro.serve.daemon import (  # noqa: F401
    ArmadaDaemon,
    DaemonThread,
    ServeJob,
    run_daemon,
)
from repro.serve.incremental import (  # noqa: F401
    FingerprintIndex,
    LevelDiff,
    OutcomeCache,
)
from repro.serve.protocol import (  # noqa: F401
    KIND_ANALYZE,
    KIND_EXPLORE,
    KIND_VERIFY,
    PROTOCOL_VERSION,
    ProtocolError,
)
