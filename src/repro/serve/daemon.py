"""``armada serve`` — the verification-as-a-service daemon.

One asyncio event loop multiplexes any number of concurrent clients
onto a small pool of *job slots*.  The loop itself never verifies
anything: every job body (parse, translate, discharge obligations
through a :class:`~repro.farm.VerificationFarm`) runs on an executor
thread, so a client polling ``status`` gets an answer in microseconds
while a six-level chain grinds through its state sweeps next door.

Shared, multi-tenant state — the reason a daemon beats N batch
processes:

* one :class:`~repro.farm.cache.ProofCache` (byte-capped, LRU) serves
  every job, so tenant A's verified obligations discharge tenant B's
  identical ones by file read;
* one :class:`~repro.serve.incremental.OutcomeCache` reuses whole
  proof outcomes when a resubmission left both levels, the recipe, and
  the configuration untouched — including the whole-program bounded
  checks the lemma cache cannot cover;
* one :class:`~repro.serve.incremental.FingerprintIndex` diffs each
  submission's per-level machine fingerprints against the previous one
  under the same name, reporting exactly which levels changed and
  which proofs that invalidated.

Lifecycle: SIGTERM/SIGINT (or the ``shutdown`` op) starts a *drain* —
new submissions are rejected, running farms finish their in-flight
obligations and short-circuit the rest as inconclusive, journals are
flushed, and unfinished jobs stay in ``pending.jsonl`` so the next
``armada serve`` on the same state directory re-enqueues them.
Journals and the proof cache are content-addressed, so the resumed run
re-checks only what the interrupted one had not settled.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ArmadaError
from repro.farm import FarmConfig, VerificationFarm
from repro.farm.cache import ProofCache, code_version, structural_hash
from repro.obs import OBS
from repro.serve import protocol
from repro.serve.incremental import FingerprintIndex, OutcomeCache
from repro.serve.protocol import (
    CANCELLED,
    DONE,
    ERROR,
    KIND_ANALYZE,
    KIND_EXPLORE,
    KIND_VERIFY,
    KINDS,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
)

#: How long the drain phase waits for in-flight jobs before giving up
#: and exiting anyway (their journals are flushed per-verdict, so even
#: a hard exit loses no settled obligation).
DRAIN_GRACE_SECONDS = 30.0


def _now() -> float:
    return time.time()


@dataclass
class ServeJob:
    """One submitted job, from queue to terminal state."""

    id: str
    kind: str
    name: str
    source: str
    filename: str
    options: dict[str, Any]
    state: str = QUEUED
    submitted_at: float = field(default_factory=_now)
    started_at: float | None = None
    finished_at: float | None = None
    result: dict[str, Any] | None = None
    error: str | None = None
    incremental: dict[str, Any] | None = None
    cancel_requested: bool = False
    #: Drained by daemon shutdown (not by a user cancel): stays in
    #: ``pending.jsonl`` so a restarted daemon re-enqueues it.
    requeue_on_restart: bool = False
    #: The farm currently discharging this job (verify only) — the
    #: handle ``cancel`` uses to drain a running job.
    farm: VerificationFarm | None = None
    events: list[dict[str, Any]] = field(default_factory=list)
    done: asyncio.Event = field(default_factory=asyncio.Event)

    def event(self, kind: str, **detail: Any) -> None:
        self.events.append({
            "seq": len(self.events),
            "kind": kind,
            "time": _now(),
            **detail,
        })

    def runtime_seconds(self) -> float | None:
        if self.started_at is None:
            return None
        end = self.finished_at if self.finished_at is not None else _now()
        return end - self.started_at

    def describe(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "name": self.name,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "runtime_seconds": self.runtime_seconds(),
            "cancel_requested": self.cancel_requested,
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.incremental is not None:
            payload["incremental"] = self.incremental
        if self.result is not None and "status" in self.result:
            payload["status"] = self.result["status"]
        return payload


class ArmadaDaemon:
    """The server: one per state directory."""

    def __init__(
        self,
        socket_path: str | Path | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        state_dir: str | Path = ".armada-serve",
        slots: int = 2,
        cache_max_bytes: int | None = None,
        farm_jobs: int = 1,
        farm_mode: str = "auto",
    ) -> None:
        if socket_path is None and port is None:
            socket_path = Path(state_dir) / "armada.sock"
        self.socket_path = Path(socket_path) if socket_path else None
        self.host = host
        self.port = port
        self.state_dir = Path(state_dir)
        self.slots = max(1, slots)
        self.farm_jobs = farm_jobs
        self.farm_mode = farm_mode
        self.started_at = _now()

        self.state_dir.mkdir(parents=True, exist_ok=True)
        (self.state_dir / "journals").mkdir(exist_ok=True)
        self.cache = ProofCache(
            self.state_dir / "cache", max_bytes=cache_max_bytes
        )
        self.outcomes = OutcomeCache()
        self.index = FingerprintIndex(
            self.state_dir / "fingerprints.json"
        )
        self.pending_path = self.state_dir / "pending.jsonl"

        self.jobs: dict[str, ServeJob] = {}
        self._ids = itertools.count(1)
        self._queue: asyncio.Queue[ServeJob] | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop = threading.Event()
        self._stop_async: asyncio.Event | None = None
        self._pending_lock = threading.Lock()
        self.draining = False
        #: Counters the ``stats`` op reports beside the cache numbers.
        self.submitted = 0
        self.completed = 0

    # ------------------------------------------------------------------
    # pending log (restart resume)

    def _append_pending(self, record: dict[str, Any]) -> None:
        with self._pending_lock:
            with open(self.pending_path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
                fh.flush()

    def _load_pending(self) -> list[dict[str, Any]]:
        """Unfinished submissions from a previous daemon's pending log
        (torn/garbage lines skipped), compacting the log on the way."""
        records: dict[str, dict[str, Any]] = {}
        try:
            text = self.pending_path.read_text(encoding="utf-8")
        except OSError:
            return []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict) or "id" not in record:
                continue
            if record.get("done"):
                records.pop(record["id"], None)
            elif isinstance(record.get("source"), str):
                records[record["id"]] = record
        survivors = list(records.values())
        with self._pending_lock:
            with open(self.pending_path, "w", encoding="utf-8") as fh:
                for record in survivors:
                    fh.write(json.dumps(record, sort_keys=True) + "\n")
        return survivors

    def _resume_pending(self) -> int:
        """Re-enqueue jobs a previous daemon left unfinished."""
        resumed = 0
        max_id = 0
        for record in self._load_pending():
            job = ServeJob(
                id=str(record["id"]),
                kind=record.get("kind", KIND_VERIFY),
                name=str(record.get("name", "<resumed>")),
                source=record["source"],
                filename=str(record.get("filename", "<resumed>")),
                options=record.get("options", {}) or {},
            )
            job.event("resumed", detail="re-enqueued after restart")
            self.jobs[job.id] = job
            assert self._queue is not None
            self._queue.put_nowait(job)
            resumed += 1
            tail = job.id.rsplit("-", 1)[-1]
            if tail.isdigit():
                max_id = max(max_id, int(tail))
        if max_id:
            self._ids = itertools.count(max_id + 1)
        return resumed

    # ------------------------------------------------------------------
    # job execution (executor threads)

    def _program_key(self, job: ServeJob) -> str:
        options = sorted(
            (str(k), repr(v)) for k, v in job.options.items()
        )
        return structural_hash(
            "serve-program", job.kind, job.source, job.filename,
            options, code_version(),
        )

    def _execute(self, job: ServeJob) -> None:
        """Run one job body to completion on an executor thread."""
        with OBS.span(job.id, "serve.job", job_kind=job.kind):
            try:
                if job.kind == KIND_VERIFY:
                    job.result = self._run_verify(job)
                elif job.kind == KIND_ANALYZE:
                    job.result = self._run_analyze(job)
                elif job.kind == KIND_EXPLORE:
                    job.result = self._run_explore(job)
                else:
                    raise ArmadaError(f"unknown job kind {job.kind!r}")
                job.state = CANCELLED if job.cancel_requested else DONE
            except ArmadaError as error:
                job.state = ERROR
                job.error = str(error)
            except Exception as error:  # noqa: BLE001 — a job must
                # never take the daemon down with it.
                job.state = ERROR
                job.error = f"internal error: {error!r}"

    def _run_verify(self, job: ServeJob) -> dict[str, Any]:
        from repro.lang.frontend import check_program
        from repro.proofs.engine import ProofEngine

        options = job.options
        checked = check_program(job.source, job.filename)
        journal_path = (
            self.state_dir / "journals"
            / f"{self._program_key(job)[:32]}.jsonl"
        )
        farm = VerificationFarm(
            FarmConfig(
                jobs=self.farm_jobs,
                mode=self.farm_mode,
                journal_path=journal_path,
            ),
            cache=self.cache,
        )
        job.farm = farm
        if job.cancel_requested or self.draining:
            # Covers the race where a cancel or drain landed between
            # this job leaving the queue and the farm existing.
            farm.request_shutdown()
        engine = ProofEngine(
            checked,
            max_states=int(options.get("max_states", 200_000)),
            validate_refinement=str(options.get("validate", "auto")),
            farm=farm,
            analyze=bool(options.get("analyze", False)),
            por=bool(options.get("por", False)),
            outcome_cache=self.outcomes,
            memory_model=options.get("memory_model"),
            compiled=bool(options.get("compiled", True)),
            atomic=bool(options.get("atomic", False)),
        )
        fingerprints = engine.level_fingerprints()
        diff = self.index.diff(job.name, fingerprints)
        job.incremental = diff.to_dict(checked.program.proofs)
        job.event("incremental", **job.incremental)
        try:
            outcome = engine.run_all()
        finally:
            farm.close()
            job.farm = None
        if not outcome.inconclusive and not job.cancel_requested:
            # An inconclusive (timed-out / drained) run must not move
            # the index: the next submission of the same source should
            # still see those levels as "changed" work to finish.
            self.index.record(job.name, fingerprints)
        reused = sum(1 for o in outcome.outcomes if o.from_cache)
        job.incremental["reused_proofs"] = reused
        job.incremental["reverified_proofs"] = (
            len(outcome.outcomes) - reused
        )
        summary = farm.summary()
        return {
            "status": outcome.status,
            "memory_model": engine.memory_model,
            "end_to_end": outcome.end_to_end,
            "chain": outcome.chain,
            "chain_error": outcome.chain_error,
            "analysis_notes": outcome.analysis_notes,
            "por_summary": outcome.por_summary,
            "incremental": job.incremental,
            "outcomes": [
                {
                    "proof": o.proof_name,
                    "strategy": o.strategy,
                    "status": (
                        "verified" if o.success
                        else "inconclusive" if o.inconclusive
                        else "failed"
                    ),
                    "lemmas": o.lemma_count,
                    "generated_sloc": o.generated_sloc,
                    "elapsed_seconds": round(o.elapsed_seconds, 6),
                    "from_cache": o.from_cache,
                    "error": o.error,
                }
                for o in outcome.outcomes
            ],
            "farm": asdict(summary),
        }

    def _run_analyze(self, job: ServeJob) -> dict[str, Any]:
        from repro.analysis import analyze_level
        from repro.lang.frontend import check_program

        options = job.options
        checked = check_program(job.source, job.filename)
        level = options.get("level") or checked.program.levels[0].name
        ctx = checked.contexts.get(level)
        if ctx is None:
            names = ", ".join(l.name for l in checked.program.levels)
            raise ArmadaError(
                f"no level named {level} (levels: {names})"
            )
        result = analyze_level(
            ctx,
            max_states=int(options.get("max_states", 200_000)),
            dynamic=not options.get("no_dynamic", False),
            memory_model=options.get("memory_model"),
            compiled=bool(options.get("compiled", True)),
        )
        return {
            "status": "analyzed",
            "level": level,
            "memory_model": result.memory_model,
            "racy": result.racy(),
            "report": json.loads(result.report().to_json()),
        }

    def _run_explore(self, job: ServeJob) -> dict[str, Any]:
        from repro.farm.exploration import (
            exploration_summary,
            run_exploration,
        )
        from repro.lang.frontend import check_program
        from repro.machine.translator import translate_level

        options = job.options
        checked = check_program(job.source, job.filename)
        level = options.get("level") or checked.program.levels[0].name
        ctx = checked.contexts.get(level)
        if ctx is None:
            names = ", ".join(l.name for l in checked.program.levels)
            raise ArmadaError(
                f"no level named {level} (levels: {names})"
            )
        machine = translate_level(
            ctx, memory_model=options.get("memory_model")
        )
        dpor = bool(options.get("dpor", False))
        shard_workers = int(options.get("shard_workers", 0))
        result, disabled = run_exploration(
            machine,
            max_states=int(options.get("max_states", 200_000)),
            por=bool(options.get("por", True)) and not dpor
            and shard_workers <= 1,
            dpor=dpor,
            symmetry=bool(options.get("symmetry", False)),
            atomic=bool(options.get("atomic", False)),
            shard_workers=shard_workers,
            compiled=bool(options.get("compiled", True)),
        )
        summary = exploration_summary(machine, level, result, disabled)
        summary["status"] = "explored"
        return summary

    # ------------------------------------------------------------------
    # worker tasks (event loop side)

    async def _worker(self) -> None:
        assert self._queue is not None and self._loop is not None
        while True:
            job = await self._queue.get()
            if job.state != QUEUED:
                continue  # cancelled while queued
            if self.draining:
                # Leave the job QUEUED (and therefore in the pending
                # log): the next daemon on this state dir runs it.
                continue
            job.state = RUNNING
            job.started_at = _now()
            job.event("started")
            if OBS.enabled:
                OBS.count("serve.jobs_started")
            try:
                await self._loop.run_in_executor(
                    self._executor, self._execute, job
                )
            except asyncio.CancelledError:
                raise
            except Exception as err:  # noqa: BLE001 — _execute
                # catches everything itself; this is a belt for
                # failures in the dispatch machinery around it, which
                # must not silently kill the worker slot.
                job.state = ERROR
                job.error = f"internal error: {err!r}"
            job.finished_at = _now()
            job.event("finished", state=job.state,
                      error=job.error,
                      status=(job.result or {}).get("status"))
            self.completed += 1
            drained_unfinished = (
                (job.requeue_on_restart or self.draining)
                and not job.cancel_requested
                and job.result is not None
                and job.result.get("status") == "inconclusive"
            )
            if drained_unfinished:
                pass  # stays in pending.jsonl for the next daemon
            else:
                self._append_pending({"id": job.id, "done": True})
            job.done.set()

    # ------------------------------------------------------------------
    # protocol handlers (event loop side)

    async def _send(self, writer: asyncio.StreamWriter,
                    message: dict[str, Any]) -> None:
        writer.write(protocol.encode(message))
        await writer.drain()

    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    await self._send(writer, protocol.error(
                        "request line too long"))
                    break
                if not line:
                    break
                try:
                    request = protocol.decode(line)
                except protocol.ProtocolError as err:
                    await self._send(writer, protocol.error(str(err)))
                    continue
                try:
                    await self._dispatch(request, writer)
                except (ConnectionError, BrokenPipeError):
                    raise
                except Exception as err:  # noqa: BLE001 — one bad
                    # request must not sever every other client.
                    await self._send(writer, protocol.error(
                        f"internal error: {err!r}"))
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, OSError):
                pass

    async def _dispatch(self, request: dict[str, Any],
                        writer: asyncio.StreamWriter) -> None:
        op = request.get("op")
        if op == protocol.OP_PING:
            await self._send(writer, protocol.ok(
                pong=True,
                version=protocol.PROTOCOL_VERSION,
                draining=self.draining,
            ))
        elif op == protocol.OP_SUBMIT:
            await self._op_submit(request, writer)
        elif op == protocol.OP_STATUS:
            job = await self._find(request, writer)
            if job is not None:
                await self._send(writer, protocol.ok(**job.describe()))
        elif op == protocol.OP_RESULT:
            await self._op_result(request, writer)
        elif op == protocol.OP_CANCEL:
            await self._op_cancel(request, writer)
        elif op == protocol.OP_EVENTS:
            await self._op_events(request, writer)
        elif op == protocol.OP_STATS:
            await self._send(writer, protocol.ok(stats=self.stats()))
        elif op == protocol.OP_SHUTDOWN:
            await self._send(writer, protocol.ok(draining=True))
            self.initiate_drain("shutdown op")
        else:
            await self._send(writer, protocol.error(
                f"unknown op {op!r} (expected one of "
                f"{', '.join(protocol.OPS)})"))

    async def _find(self, request: dict[str, Any],
                    writer: asyncio.StreamWriter) -> ServeJob | None:
        job = self.jobs.get(str(request.get("id")))
        if job is None:
            await self._send(writer, protocol.error(
                f"no such job {request.get('id')!r}"))
        return job

    async def _op_submit(self, request: dict[str, Any],
                         writer: asyncio.StreamWriter) -> None:
        if self.draining:
            await self._send(writer, protocol.error(
                "daemon is draining; resubmit after restart"))
            return
        kind = request.get("kind", KIND_VERIFY)
        source = request.get("source")
        if kind not in KINDS:
            await self._send(writer, protocol.error(
                f"unknown kind {kind!r} (expected one of "
                f"{', '.join(KINDS)})"))
            return
        if not isinstance(source, str) or not source.strip():
            await self._send(writer, protocol.error(
                "submit requires a non-empty 'source' string"))
            return
        filename = str(request.get("filename", "<submitted>"))
        options = request.get("options") or {}
        if not isinstance(options, dict):
            await self._send(writer, protocol.error(
                "'options' must be a JSON object"))
            return
        job = ServeJob(
            id=f"j-{next(self._ids):06d}",
            kind=kind,
            name=str(request.get("name", filename)),
            source=source,
            filename=filename,
            options=options,
        )
        job.event("submitted", job_kind=kind, name=job.name)
        self.jobs[job.id] = job
        self.submitted += 1
        if OBS.enabled:
            OBS.count("serve.jobs_submitted")
        self._append_pending({
            "id": job.id, "kind": kind, "name": job.name,
            "source": source, "filename": filename,
            "options": options,
        })
        assert self._queue is not None
        self._queue.put_nowait(job)
        await self._send(writer, protocol.ok(id=job.id, state=job.state))

    async def _op_result(self, request: dict[str, Any],
                         writer: asyncio.StreamWriter) -> None:
        job = await self._find(request, writer)
        if job is None:
            return
        if request.get("wait") and job.state not in TERMINAL_STATES:
            timeout = request.get("timeout")
            try:
                await asyncio.wait_for(
                    job.done.wait(),
                    float(timeout) if timeout is not None else None,
                )
            except asyncio.TimeoutError:
                await self._send(writer, protocol.error(
                    f"job {job.id} still {job.state} after "
                    f"{timeout}s", id=job.id, state=job.state))
                return
        payload = job.describe()
        if job.state not in TERMINAL_STATES:
            await self._send(writer, protocol.error(
                f"job {job.id} is {job.state}; pass 'wait': true or "
                "poll later", **payload))
            return
        await self._send(writer, protocol.ok(
            result=job.result, **payload))

    async def _op_cancel(self, request: dict[str, Any],
                         writer: asyncio.StreamWriter) -> None:
        job = await self._find(request, writer)
        if job is None:
            return
        if job.state in TERMINAL_STATES:
            await self._send(writer, protocol.ok(**job.describe()))
            return
        job.cancel_requested = True
        job.event("cancel_requested")
        if OBS.enabled:
            OBS.count("serve.jobs_cancelled")
        if job.state == QUEUED:
            job.state = CANCELLED
            job.finished_at = _now()
            job.event("finished", state=CANCELLED)
            self._append_pending({"id": job.id, "done": True})
            job.done.set()
        elif job.farm is not None:
            # Running verify: drain its farm.  In-flight obligations
            # finish; queued ones short-circuit inconclusive.
            job.farm.request_shutdown()
        await self._send(writer, protocol.ok(**job.describe()))

    async def _op_events(self, request: dict[str, Any],
                         writer: asyncio.StreamWriter) -> None:
        job = await self._find(request, writer)
        if job is None:
            return
        sent = 0
        wait = bool(request.get("wait"))
        while True:
            while sent < len(job.events):
                await self._send(writer, protocol.stream(
                    id=job.id, event=job.events[sent]))
                sent += 1
            if job.state in TERMINAL_STATES or not wait:
                break
            try:
                await asyncio.wait_for(job.done.wait(), timeout=0.1)
            except asyncio.TimeoutError:
                pass
        await self._send(writer, protocol.ok(
            id=job.id, done=True, state=job.state, events=sent))

    # ------------------------------------------------------------------
    # stats

    def stats(self) -> dict[str, Any]:
        states: dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "uptime_seconds": _now() - self.started_at,
            "draining": self.draining,
            "slots": self.slots,
            "submitted": self.submitted,
            "completed": self.completed,
            "jobs": states,
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "stores": self.cache.stores,
                "quarantined": self.cache.quarantined,
                "evictions": self.cache.evictions,
                "evicted_bytes": self.cache.evicted_bytes,
                "max_bytes": self.cache.max_bytes,
                "bytes": self.cache.total_bytes(),
                "entries": len(self.cache),
            },
            "outcome_cache": self.outcomes.stats(),
        }

    # ------------------------------------------------------------------
    # lifecycle

    def initiate_drain(self, reason: str = "signal") -> None:
        """Begin graceful shutdown; safe to call more than once and
        from signal handlers."""
        already_draining = self.draining
        self.draining = True
        # Always (re-)signal the stop events: a second drain request
        # must still stop a daemon whose ``draining`` flag was set
        # before the loop existed.
        self._stop.set()
        if self._loop is not None and self._stop_async is not None:
            self._loop.call_soon_threadsafe(self._stop_async.set)
        if already_draining:
            return
        if OBS.enabled:
            OBS.count("serve.drains")
        for job in self.jobs.values():
            if job.state == RUNNING:
                job.requeue_on_restart = True
                if job.farm is not None:
                    job.farm.request_shutdown()
            elif job.state == QUEUED:
                job.requeue_on_restart = True

    def stop_from_thread(self) -> None:
        """Thread-safe shutdown trigger for embedding tests."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(
                self.initiate_drain, "external stop")

    async def run(self, ready: threading.Event | None = None) -> int:
        """Serve until drained.  Returns the process exit code."""
        self._loop = asyncio.get_running_loop()
        self._stop_async = asyncio.Event()
        self._queue = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=self.slots,
            thread_name_prefix="armada-serve",
        )
        if self._stop.is_set():
            self._stop_async.set()
        resumed = self._resume_pending()
        if resumed:
            self._log(f"resumed {resumed} unfinished job(s) from "
                      f"{self.pending_path}")

        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(
                    signum, self.initiate_drain,
                    signal.Signals(signum).name,
                )
            except (NotImplementedError, ValueError, RuntimeError):
                pass  # non-main thread or exotic platform

        if self.socket_path is not None:
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            try:
                self.socket_path.unlink()
            except OSError:
                pass
            server = await asyncio.start_unix_server(
                self._handle_client, path=str(self.socket_path),
                limit=protocol.MAX_LINE_BYTES,
            )
            endpoint = str(self.socket_path)
        else:
            server = await asyncio.start_server(
                self._handle_client, host=self.host, port=self.port,
                limit=protocol.MAX_LINE_BYTES,
            )
            sockets = server.sockets or []
            if sockets and self.port in (None, 0):
                self.port = sockets[0].getsockname()[1]
            endpoint = f"{self.host}:{self.port}"
        workers = [
            asyncio.ensure_future(self._worker())
            for _ in range(self.slots)
        ]
        self._log(f"listening on {endpoint} "
                  f"({self.slots} slot(s), state {self.state_dir})")
        if ready is not None:
            ready.set()
        try:
            await self._stop_async.wait()
        finally:
            server.close()
            await server.wait_closed()
            # Drain, phase 1: give in-flight jobs the grace period to
            # finish their current obligation and post-process (done
            # marker, finished event).  Their farms were already told
            # to shut down, so "finish" means one obligation, not the
            # whole queue.
            running = [
                job for job in self.jobs.values()
                if job.state == RUNNING
            ]
            if running:
                try:
                    await asyncio.wait_for(
                        asyncio.gather(
                            *(job.done.wait() for job in running)
                        ),
                        timeout=DRAIN_GRACE_SECONDS,
                    )
                except asyncio.TimeoutError:
                    self._log(
                        "grace period expired with job(s) still "
                        "running; they stay pending for the next "
                        "daemon"
                    )
            # Phase 2: workers now sit in queue.get (or in a job body
            # that outlived the grace period) — cancel them.
            for task in workers:
                task.cancel()
            await asyncio.gather(*workers, return_exceptions=True)
            assert self._executor is not None
            self._executor.shutdown(wait=True, cancel_futures=True)
            if self.socket_path is not None:
                try:
                    self.socket_path.unlink()
                except OSError:
                    pass
            self._log("drained; exiting")
        return 0

    def _log(self, message: str) -> None:
        import sys

        print(f"armada serve: {message}", file=sys.stderr, flush=True)


def run_daemon(daemon: ArmadaDaemon) -> int:
    """Blocking entry point used by the CLI."""
    return asyncio.run(daemon.run())


class DaemonThread:
    """An in-process daemon on a background thread (tests, benchmarks).

    The event loop runs on the thread; :meth:`stop` initiates the same
    drain SIGTERM would and joins.  Use as a context manager.
    """

    def __init__(self, daemon: ArmadaDaemon) -> None:
        self.daemon = daemon
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="armada-serve-loop", daemon=True,
        )
        self.exit_code: int | None = None

    def _run(self) -> None:
        self.exit_code = asyncio.run(self.daemon.run(ready=self._ready))

    def __enter__(self) -> "DaemonThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("armada serve daemon failed to start")
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def stop(self, timeout: float = DRAIN_GRACE_SECONDS + 5) -> None:
        self.daemon.stop_from_thread()
        self._thread.join(timeout=timeout)
