"""Thin synchronous client for the ``armada serve`` daemon.

One request per connection: the client opens a socket, writes one JSON
line, reads response lines until the first one not tagged
``"stream": true``, and closes.  That keeps the client free of
connection state (no reconnect logic, no pipelining bookkeeping) at
the cost of a socket handshake per call — negligible next to any
verification job, and exactly what the CLI subcommands
(``armada submit/status/result/cancel``) need.

The daemon is the source of truth for all job state; this module only
frames requests and raises :class:`ServeError` when the daemon says
``"ok": false``.
"""

from __future__ import annotations

import socket
import time
from pathlib import Path
from typing import Any

from repro.errors import ArmadaError
from repro.serve import protocol


class ServeError(ArmadaError):
    """The daemon refused a request or the connection failed."""

    def __init__(self, message: str,
                 response: dict[str, Any] | None = None) -> None:
        super().__init__(message)
        self.response = response or {}


class ServeClient:
    """Talk to one daemon, by Unix socket path or TCP host:port."""

    def __init__(
        self,
        socket_path: str | Path | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        timeout: float | None = 60.0,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ServeError(
                "ServeClient needs a socket path or a TCP port "
                "(exactly one)"
            )
        self.socket_path = Path(socket_path) if socket_path else None
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport

    def _connect(self) -> socket.socket:
        try:
            if self.socket_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(str(self.socket_path))
            else:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
            return sock
        except OSError as error:
            target = (
                str(self.socket_path) if self.socket_path is not None
                else f"{self.host}:{self.port}"
            )
            raise ServeError(
                f"cannot reach armada serve at {target}: {error} "
                "(is the daemon running?)"
            )

    def request(self, message: dict[str, Any],
                timeout: float | None = ...) -> dict[str, Any]:
        """One request → the final (non-stream) response.

        Intermediate stream lines are accumulated under a synthetic
        ``"_stream"`` key of the final response so callers that care
        (``events``) can see them without a second wire format.
        """
        sock = self._connect()
        if timeout is not ...:
            sock.settimeout(timeout)
        streamed: list[dict[str, Any]] = []
        try:
            with sock, sock.makefile("rwb") as wire:
                wire.write(protocol.encode(message))
                wire.flush()
                while True:
                    line = wire.readline(protocol.MAX_LINE_BYTES)
                    if not line:
                        raise ServeError(
                            "connection closed mid-response (daemon "
                            "shutting down?)"
                        )
                    response = protocol.decode(line)
                    if response.get("stream"):
                        streamed.append(response)
                        continue
                    if streamed:
                        response["_stream"] = streamed
                    if not response.get("ok"):
                        raise ServeError(
                            str(response.get("error",
                                             "daemon refused request")),
                            response,
                        )
                    return response
        except protocol.ProtocolError as error:
            raise ServeError(f"malformed daemon response: {error}")
        except socket.timeout:
            raise ServeError(
                f"daemon did not answer within {self.timeout}s"
            )
        except OSError as error:
            raise ServeError(f"connection to daemon failed: {error}")

    # ------------------------------------------------------------------
    # ops

    def ping(self) -> dict[str, Any]:
        return self.request({"op": protocol.OP_PING})

    def wait_until_ready(self, timeout: float = 30.0,
                         interval: float = 0.05) -> None:
        """Poll ``ping`` until the daemon answers (startup races)."""
        deadline = time.monotonic() + timeout
        last: Exception | None = None
        while time.monotonic() < deadline:
            try:
                self.ping()
                return
            except ServeError as error:
                last = error
                time.sleep(interval)
        raise ServeError(
            f"daemon not ready after {timeout}s: {last}"
        )

    def submit(
        self,
        source: str,
        *,
        kind: str = protocol.KIND_VERIFY,
        filename: str = "<submitted>",
        name: str | None = None,
        options: dict[str, Any] | None = None,
    ) -> str:
        """Enqueue a job; returns its id."""
        request: dict[str, Any] = {
            "op": protocol.OP_SUBMIT,
            "kind": kind,
            "source": source,
            "filename": filename,
        }
        if name is not None:
            request["name"] = name
        if options:
            request["options"] = options
        return str(self.request(request)["id"])

    def status(self, job_id: str) -> dict[str, Any]:
        return self.request({"op": protocol.OP_STATUS, "id": job_id})

    def result(self, job_id: str, wait: bool = True,
               timeout: float | None = None) -> dict[str, Any]:
        """The job's terminal response (``state``, ``result``, ...).

        ``wait=True`` blocks server-side until the job settles; pass
        ``timeout`` to bound the wait.  The socket timeout is widened
        to outlast the server-side wait.
        """
        request: dict[str, Any] = {
            "op": protocol.OP_RESULT, "id": job_id,
        }
        if wait:
            request["wait"] = True
            if timeout is not None:
                request["timeout"] = timeout
        sock_timeout = (
            None if (wait and timeout is None)
            else (timeout + 30.0 if timeout is not None
                  else self.timeout)
        )
        return self.request(request, timeout=sock_timeout)

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self.request({"op": protocol.OP_CANCEL, "id": job_id})

    def events(self, job_id: str) -> list[dict[str, Any]]:
        """The job's lifecycle events recorded so far."""
        response = self.request(
            {"op": protocol.OP_EVENTS, "id": job_id}
        )
        return [
            line["event"] for line in response.get("_stream", [])
            if "event" in line
        ]

    def stats(self) -> dict[str, Any]:
        return self.request({"op": protocol.OP_STATS})["stats"]

    def shutdown(self) -> dict[str, Any]:
        """Ask the daemon to drain and exit."""
        return self.request({"op": protocol.OP_SHUTDOWN})
