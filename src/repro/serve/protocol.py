"""Wire protocol of the ``armada serve`` job API.

The daemon speaks *line-delimited JSON* over a Unix-domain socket or a
TCP port: every request is one JSON object on one line, every response
is one JSON object on one line.  The framing is deliberately primitive
— any language with a socket and a JSON parser is a client; ``nc`` and
``socat`` work for debugging — and it multiplexes cleanly through an
asyncio server because a read never spans requests.

Requests carry an ``op`` plus op-specific fields; responses always
carry ``ok`` (bool).  Failures carry ``error`` (a message string).
Streaming ops (``events``, and ``result`` with ``wait``) emit zero or
more intermediate lines tagged ``"stream": true`` and terminate with a
final non-stream response, so a client reads lines until it sees one
without the tag.

Ops
---
``ping``    → liveness + protocol version.
``submit``  → enqueue a job: ``kind`` (verify/analyze/explore),
              ``source`` (Armada program text), ``filename``,
              optional ``name`` (the tenant-visible identity used by
              incremental fingerprint diffing; defaults to
              ``filename``), and ``options``.
``status``  → job state + timings + incremental summary.
``result``  → the job's result payload; ``wait: true`` blocks (server
              side, cheaply) until the job reaches a terminal state.
``cancel``  → request cancellation: a queued job never starts; a
              running job's farm drains (in-flight obligations finish,
              the rest short-circuit inconclusive).
``events``  → the job's lifecycle event list; ``wait: true`` streams
              new events as they happen until the job is terminal.
``stats``   → daemon-wide counters: jobs by state, shared-cache
              hit/miss/eviction numbers, outcome-cache reuse, uptime.
``shutdown``→ ask the daemon to drain and exit (the programmatic
              equivalent of SIGTERM; used by tests and CI).

Job states form a tiny lattice: ``queued → running → (done | error |
cancelled)``; ``done`` results carry a verification ``status``
(verified / failed / inconclusive) of their own.
"""

from __future__ import annotations

import json
from typing import Any

#: Bumped when a request or response shape changes incompatibly.
PROTOCOL_VERSION = 1

#: Hard per-line ceiling: a submitted source plus framing must fit one
#: line.  1000 lines of Armada is ~30 KiB; 8 MiB is not a tight budget,
#: it is a defence against a client streaming garbage at the daemon.
MAX_LINE_BYTES = 8 * 1024 * 1024

# -- ops ---------------------------------------------------------------
OP_PING = "ping"
OP_SUBMIT = "submit"
OP_STATUS = "status"
OP_RESULT = "result"
OP_CANCEL = "cancel"
OP_EVENTS = "events"
OP_STATS = "stats"
OP_SHUTDOWN = "shutdown"
OPS = (OP_PING, OP_SUBMIT, OP_STATUS, OP_RESULT, OP_CANCEL, OP_EVENTS,
       OP_STATS, OP_SHUTDOWN)

# -- job kinds ---------------------------------------------------------
KIND_VERIFY = "verify"
KIND_ANALYZE = "analyze"
KIND_EXPLORE = "explore"
KINDS = (KIND_VERIFY, KIND_ANALYZE, KIND_EXPLORE)

# -- job states --------------------------------------------------------
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
ERROR = "error"
CANCELLED = "cancelled"
TERMINAL_STATES = (DONE, ERROR, CANCELLED)


class ProtocolError(Exception):
    """A malformed request or response line."""


def encode(message: dict[str, Any]) -> bytes:
    """One message → one newline-terminated JSON line."""
    return json.dumps(message, sort_keys=True,
                      separators=(",", ":")).encode() + b"\n"


def decode(line: bytes | str) -> dict[str, Any]:
    """One line → one message dict, or :class:`ProtocolError`."""
    if isinstance(line, bytes):
        try:
            line = line.decode()
        except UnicodeDecodeError as error:
            raise ProtocolError(f"request is not UTF-8: {error}")
    line = line.strip()
    if not line:
        raise ProtocolError("empty request line")
    try:
        message = json.loads(line)
    except ValueError as error:
        raise ProtocolError(f"request is not JSON: {error}")
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object")
    return message


def ok(**fields: Any) -> dict[str, Any]:
    response = {"ok": True}
    response.update(fields)
    return response


def error(message: str, **fields: Any) -> dict[str, Any]:
    response: dict[str, Any] = {"ok": False, "error": message}
    response.update(fields)
    return response


def stream(**fields: Any) -> dict[str, Any]:
    """An intermediate line of a streaming response."""
    response: dict[str, Any] = {"ok": True, "stream": True}
    response.update(fields)
    return response
