"""Incremental re-verification for the serve daemon.

Armada's proof effort is already spread across many small, independently
dischargeable obligations, each content-addressed in the proof cache.
The serve daemon builds one more reuse layer on top — at *proof*
granularity — and an explanation layer beside it:

* :class:`OutcomeCache` maps :meth:`ProofEngine.proof_key` — a
  structural hash of both level machines, the full recipe, the prover
  configuration, and the toolchain version — to the finished
  :class:`~repro.proofs.engine.ProofOutcome`.  A hit skips script
  generation, every lemma obligation, *and* the whole-program bounded
  refinement check (which the lemma-level cache cannot cover, because
  its input is a pair of state machines rather than lemma text).  The
  soundness argument is the cache's, one level up: equal keys mean the
  re-run would perform byte-identical checks, so replaying the stored
  outcome is indistinguishable from re-computing it.  Only settled
  outcomes are stored; inconclusive ones (timeouts, drains) must be
  retried.  The cache is in-memory: outcomes hold live lemma/script
  objects whose obligation closures do not survive pickling.  Across
  daemon restarts the persistent lemma cache and per-program journals
  still make re-verification warm.

* :class:`FingerprintIndex` remembers, per tenant-visible program
  ``name``, the per-level machine fingerprints of the last submission.
  Diffing a new submission against it yields the *changed level set*
  and therefore the *invalidated proof set* (exactly the proofs whose
  low or high side changed).  The diff is reporting and metrics — the
  outcome/lemma caches enforce correctness by content address alone —
  but it is what makes the daemon's answer to "what will this edit
  cost me?" precise: editing one level re-verifies only the proofs
  that touch it.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.proofs.engine import ProofOutcome


class OutcomeCache:
    """In-memory, thread-safe proof-outcome store with LRU bound."""

    def __init__(self, max_entries: int = 4096) -> None:
        self._entries: dict[str, "ProofOutcome"] = {}
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    def get(self, key: str) -> "ProofOutcome | None":
        with self._lock:
            outcome = self._entries.get(key)
            if outcome is None:
                self.misses += 1
                return None
            # dict preserves insertion order; re-inserting marks recency.
            del self._entries[key]
            self._entries[key] = outcome
            self.hits += 1
            return outcome

    def put(self, key: str, outcome: "ProofOutcome") -> None:
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = outcome
            self.stores += 1
            while len(self._entries) > self.max_entries:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
            }


@dataclass
class LevelDiff:
    """What one resubmission changed, in machine-semantics terms."""

    #: Levels whose machine fingerprint differs from the index (or are
    #: new); their proofs must re-verify.
    changed: list[str] = field(default_factory=list)
    #: Levels whose fingerprint matches the previous submission.
    unchanged: list[str] = field(default_factory=list)
    #: True when the index had no entry for this program name yet.
    first_submission: bool = False

    def invalidated_proofs(self, proofs) -> list[str]:
        """Names of the proofs that touch a changed level."""
        changed = set(self.changed)
        return [
            p.name for p in proofs
            if p.low_level in changed or p.high_level in changed
        ]

    def to_dict(self, proofs=None) -> dict:
        payload = {
            "changed_levels": sorted(self.changed),
            "unchanged_levels": sorted(self.unchanged),
            "first_submission": self.first_submission,
        }
        if proofs is not None:
            payload["invalidated_proofs"] = sorted(
                self.invalidated_proofs(proofs)
            )
        return payload


class FingerprintIndex:
    """Per-program-name last-seen level fingerprints, persisted as JSON.

    The on-disk file makes the diff meaningful across daemon restarts
    (and is human-inspectable when debugging why a resubmission was or
    was not considered incremental).  Corruption is harmless: an
    unreadable index is treated as empty, which only widens the
    reported diff — never the set of obligations actually re-run.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._programs: dict[str, dict[str, str]] = {}
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict):
            return
        for name, levels in raw.items():
            if isinstance(name, str) and isinstance(levels, dict):
                self._programs[name] = {
                    str(k): str(v) for k, v in levels.items()
                }

    def _flush(self) -> None:
        tmp = self.path.with_suffix(".tmp")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(
                json.dumps(self._programs, indent=2, sort_keys=True),
                encoding="utf-8",
            )
            tmp.replace(self.path)
        except OSError:
            pass  # the index is advisory; losing it only widens diffs

    def diff(self, name: str,
             fingerprints: dict[str, str]) -> LevelDiff:
        """Compare a submission's level fingerprints against the last
        one recorded under *name* (without recording it)."""
        with self._lock:
            previous = self._programs.get(name)
        if previous is None:
            return LevelDiff(
                changed=sorted(fingerprints), first_submission=True
            )
        diff = LevelDiff()
        for level, fingerprint in fingerprints.items():
            if previous.get(level) == fingerprint:
                diff.unchanged.append(level)
            else:
                diff.changed.append(level)
        return diff

    def record(self, name: str, fingerprints: dict[str, str]) -> None:
        with self._lock:
            self._programs[name] = dict(fingerprints)
            self._flush()

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._programs
