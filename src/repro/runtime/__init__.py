"""Concrete runtime: scheduler-driven execution of translated levels."""

from repro.runtime.interpreter import (  # noqa: F401
    Interpreter,
    RandomScheduler,
    RoundRobinScheduler,
    RunResult,
    run_level,
)
