"""Concrete execution of Armada state machines.

Runs a translated level under a pluggable scheduler, resolving all
nondeterminism (thread choice, store-buffer drains, ``*`` values) at
each step.  This is the reference executor: slow but exactly the
semantics the proofs are about, which makes it the differential-testing
oracle for the compiled back ends.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ExecutionError
from repro.machine.program import StateMachine, Transition
from repro.machine.state import ProgramState


class Scheduler:
    """Chooses the next transition among the enabled ones."""

    def choose(
        self, state: ProgramState, transitions: list[Transition]
    ) -> Transition:
        raise NotImplementedError


class RoundRobinScheduler(Scheduler):
    """Rotates among threads, draining store buffers eagerly (a
    write-back-first policy: the resulting executions are sequentially
    consistent, the common case on real hardware)."""

    def __init__(self) -> None:
        self._last_tid = 0

    def choose(self, state, transitions):
        drains = [t for t in transitions if t.is_drain]
        if drains:
            return drains[0]
        tids = sorted({t.tid for t in transitions})
        for tid in tids:
            if tid > self._last_tid:
                self._last_tid = tid
                return next(t for t in transitions if t.tid == tid)
        self._last_tid = tids[0]
        return next(t for t in transitions if t.tid == tids[0])


class RandomScheduler(Scheduler):
    """Uniformly random choice (seeded, so runs are reproducible).
    Exercises weak-memory interleavings, including delayed drains."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def choose(self, state, transitions):
        return self._rng.choice(transitions)


@dataclass
class RunResult:
    state: ProgramState
    steps_taken: int

    @property
    def log(self) -> tuple:
        return self.state.log

    @property
    def termination_kind(self) -> str | None:
        t = self.state.termination
        return t.kind if t is not None else None

    @property
    def completed(self) -> bool:
        return self.state.termination is not None


class Interpreter:
    """Drives one program state to termination under a scheduler."""

    def __init__(
        self,
        machine: StateMachine,
        scheduler: Scheduler | None = None,
        max_steps: int = 1_000_000,
    ) -> None:
        self.machine = machine
        self.scheduler = scheduler or RoundRobinScheduler()
        self.max_steps = max_steps

    def run(self, start: ProgramState | None = None) -> RunResult:
        state = start if start is not None else self.machine.initial_state()
        steps = 0
        while state.running:
            transitions = self.machine.enabled_transitions(state)
            if not transitions:
                # Deadlock: every thread is blocked.
                return RunResult(state, steps)
            choice = self.scheduler.choose(state, transitions)
            state = self.machine.next_state(state, choice)
            steps += 1
            if steps >= self.max_steps:
                raise ExecutionError(
                    f"run exceeded {self.max_steps} steps (livelock?)"
                )
        return RunResult(state, steps)


def run_level(
    machine: StateMachine,
    seed: int | None = None,
    max_steps: int = 1_000_000,
) -> RunResult:
    """Convenience: run a machine once (round-robin, or random with the
    given seed)."""
    scheduler: Scheduler = (
        RandomScheduler(seed) if seed is not None else RoundRobinScheduler()
    )
    return Interpreter(machine, scheduler, max_steps).run()
