"""Core-Armada restriction checks (§3.1.1).

The implementation level (level 0) must stay within the compilable core
of the language: fixed-width integers, pointers, structs and arrays,
structured control flow, allocation, and threads.  "The compiler will
reject programs outside this core."  This module is that rejection.

It also enforces the rule that "each statement may have at most one
shared-location access, since the hardware does not support atomic
performance of multiple shared-location accesses."
"""

from __future__ import annotations

from repro.errors import CoreViolation
from repro.lang import asts as ast
from repro.lang import types as ty
from repro.lang.resolver import LevelContext


def _core_type(t: ty.Type, loc, what: str) -> None:
    if not (t.is_core() or isinstance(t, ty.VoidType)):
        raise CoreViolation(f"{what} has non-compilable type {t}", loc)


def count_shared_accesses(
    expr: ast.Expr, ctx: LevelContext, method: str
) -> int:
    """Count accesses to shared locations in *expr*.

    Shared locations are non-ghost global variables, pointer dereferences
    and pointer/array indexing through the heap, and locals whose address
    is taken (which therefore live in shared memory).  Taking an address
    (``&x``) is not an access.
    """
    count = 0
    if isinstance(expr, ast.AddressOf):
        # &x reads no memory; &a[i] evaluates i only.
        inner = expr.operand
        if isinstance(inner, ast.Index):
            return count_shared_accesses(inner.index, ctx, method)
        if isinstance(inner, ast.FieldAccess):
            return count_shared_accesses(inner.base, ctx, method) \
                if not isinstance(inner.base, ast.Var) else 0
        return 0
    if isinstance(expr, ast.Var):
        g = ctx.globals.get(expr.name)
        if g is not None and not g.ghost:
            return 1
        info = ctx.local(method, expr.name)
        if info is not None and info.address_taken:
            return 1
        return 0
    if isinstance(expr, ast.Deref):
        return 1 + count_shared_accesses(expr.operand, ctx, method)
    if isinstance(expr, ast.Index):
        base_type = expr.base.type
        base_count = count_shared_accesses(expr.base, ctx, method)
        index_count = count_shared_accesses(expr.index, ctx, method)
        if isinstance(base_type, ty.PtrType):
            return 1 + base_count + index_count
        return base_count + index_count
    for child in ast.child_exprs(expr):
        count += count_shared_accesses(child, ctx, method)
    return count


class CoreChecker:
    """Checks that a resolved, type-checked level is core Armada."""

    def __init__(self, ctx: LevelContext) -> None:
        self._ctx = ctx

    def check(self) -> None:
        level = self._ctx.level
        for g in level.globals:
            if g.ghost:
                raise CoreViolation(
                    f"ghost variable {g.name} is not compilable", g.loc
                )
            _core_type(g.var_type, g.loc, f"global {g.name}")
        for method in level.methods:
            self._check_method(method)

    def _check_method(self, method: ast.MethodDecl) -> None:
        _core_type(method.return_type, method.loc,
                   f"return type of {method.name}")
        for p in method.params:
            _core_type(p.type, p.loc, f"parameter {p.name}")
        if method.is_extern or method.body is None:
            return
        if method.spec.requires or method.spec.ensures:
            # Specs on compiled methods are erased; they are allowed but
            # only as documentation on core levels.
            pass
        self._check_stmt(method, method.body)

    def _check_stmt(self, method: ast.MethodDecl, stmt: ast.Stmt) -> None:
        name = method.name
        if isinstance(stmt, ast.SomehowStmt):
            raise CoreViolation(
                "somehow statements are not compilable", stmt.loc
            )
        if isinstance(stmt, (ast.ExplicitYieldBlock, ast.YieldStmt,
                             ast.AtomicBlock)):
            raise CoreViolation(
                "atomicity annotations are not compilable", stmt.loc
            )
        if isinstance(stmt, ast.AssumeStmt):
            raise CoreViolation(
                "assume (enablement conditions) are not compilable", stmt.loc
            )
        if isinstance(stmt, ast.VarDeclStmt):
            if stmt.ghost:
                raise CoreViolation(
                    f"ghost local {stmt.name} is not compilable", stmt.loc
                )
            _core_type(stmt.var_type, stmt.loc, f"local {stmt.name}")
        for expr in ast.stmt_exprs(stmt):
            self._check_expr(expr, name)
        if isinstance(stmt, ast.AssignStmt) and not stmt.tso_bypass:
            accesses = sum(
                count_shared_accesses(e, self._ctx, name)
                for e in ast.stmt_exprs(stmt)
            )
            if accesses > 1:
                raise CoreViolation(
                    f"statement performs {accesses} shared-location "
                    "accesses; the hardware supports at most one per "
                    "statement (§3.1.1)",
                    stmt.loc,
                )
        if isinstance(stmt, ast.AssignStmt) and stmt.tso_bypass:
            raise CoreViolation(
                "TSO-bypassing assignment (::=) is not compilable", stmt.loc
            )
        for child in ast.child_stmts(stmt):
            self._check_stmt(method, child)

    def _check_expr(self, expr: ast.Expr, method: str) -> None:
        for node in ast.walk_expr(expr):
            if isinstance(node, ast.Nondet):
                raise CoreViolation(
                    "nondeterministic '*' is not compilable", node.loc
                )
            if isinstance(node, (ast.Old, ast.Allocated, ast.AllocatedArray)):
                raise CoreViolation(
                    f"{type(node).__name__.lower()}() is specification-only",
                    node.loc,
                )
            if isinstance(node, (ast.SeqLit, ast.SetLit, ast.Quantifier)):
                raise CoreViolation(
                    "ghost collection expressions are not compilable",
                    node.loc,
                )
            if isinstance(node, ast.Call):
                m = self._ctx.methods.get(node.func)
                if m is None:
                    raise CoreViolation(
                        f"call to undeclared (ghost) function {node.func} "
                        "is not compilable",
                        node.loc,
                    )
            if isinstance(node, ast.MetaVar):
                raise CoreViolation(
                    f"meta variable {node.name} is specification-only",
                    node.loc,
                )


def check_core(ctx: LevelContext) -> None:
    """Raise :class:`CoreViolation` if the level is not core Armada."""
    CoreChecker(ctx).check()
