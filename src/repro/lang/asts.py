"""Abstract syntax trees for the Armada language.

The node set mirrors Figure 7 of the paper: expressions (including
Armada-specific forms such as ``old(e)``, ``$me``, ``$sb_empty``, and the
nondeterministic ``*``), statements (including ``somehow``,
``explicit_yield``/``yield``, ``assume`` enablement conditions, and the
TSO-bypassing assignment ``::=``), and declarations (levels, methods,
structs, global variables, and proof recipes).

All nodes are plain dataclasses.  Resolution and type checking annotate
nodes in-place via the ``type`` attribute on expressions (filled by
:mod:`repro.lang.typechecker`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import NOWHERE, SourceLoc
from repro.lang import types as ty


# ---------------------------------------------------------------------------
# Expressions


@dataclass
class Expr:
    """Base class for expressions.  ``type`` is set by the type checker."""

    loc: SourceLoc = field(default=NOWHERE, kw_only=True)
    type: Optional[ty.Type] = field(default=None, kw_only=True, compare=False)


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class NullLit(Expr):
    """The null pointer literal."""


@dataclass
class Var(Expr):
    """A reference to a named variable (global, local, parameter, ghost)."""

    name: str


@dataclass
class MetaVar(Expr):
    """A meta variable: ``$me`` (current thread id) or ``$sb_empty``
    (whether the current thread's store buffer is empty)."""

    name: str


@dataclass
class Unary(Expr):
    """Unary operators: ``-`` ``!`` ``~``."""

    op: str
    operand: Expr


@dataclass
class Binary(Expr):
    """Binary operators, including logical ``&&``/``||``/``==>`` and the
    ghost sequence/set operators (``+`` concatenation, ``in``)."""

    op: str
    left: Expr
    right: Expr


@dataclass
class Conditional(Expr):
    """``if c then a else b`` expression (ghost levels)."""

    cond: Expr
    then: Expr
    els: Expr


@dataclass
class AddressOf(Expr):
    """``&e`` — address of a variable, field, or array element."""

    operand: Expr


@dataclass
class Deref(Expr):
    """``*e`` — pointer dereference."""

    operand: Expr


@dataclass
class FieldAccess(Expr):
    """``e.field`` — struct field access (also used for ``.length``)."""

    base: Expr
    fieldname: str


@dataclass
class Index(Expr):
    """``e1[e2]`` — array, sequence, or map indexing."""

    base: Expr
    index: Expr


@dataclass
class Nondet(Expr):
    """``*`` as an expression: a nondeterministic value (§3.1.2).

    The type is inferred from context; the state-machine translation
    encapsulates the chosen value in the step object (§4.1).
    """


@dataclass
class Old(Expr):
    """``old(e)`` — value of *e* in the pre-state of a two-state predicate."""

    operand: Expr


@dataclass
class Allocated(Expr):
    """``allocated(e)`` — pointer validity predicate."""

    operand: Expr


@dataclass
class AllocatedArray(Expr):
    """``allocated_array(e)`` — array-pointer validity predicate."""

    operand: Expr


@dataclass
class Call(Expr):
    """A call to a pure/ghost function in an expression position.

    Builtins include ``len`` (seq length), ``Some``/``None`` (options),
    and user-declared ghost functions.
    """

    func: str
    args: list[Expr]


@dataclass
class SeqLit(Expr):
    """``[e1, e2, ...]`` — ghost sequence display."""

    elements: list[Expr]


@dataclass
class SetLit(Expr):
    """``{e1, e2, ...}`` — ghost set display."""

    elements: list[Expr]


@dataclass
class Quantifier(Expr):
    """``forall x: T :: body`` / ``exists x: T :: body`` (ghost)."""

    kind: str  # "forall" or "exists"
    boundvar: str
    boundtype: ty.Type
    body: Expr


# ---------------------------------------------------------------------------
# Right-hand sides that are not ordinary expressions


@dataclass
class Rhs:
    """Base class for assignment right-hand sides (Figure 7 ⟨RHS⟩)."""

    loc: SourceLoc = field(default=NOWHERE, kw_only=True)


@dataclass
class ExprRhs(Rhs):
    expr: Expr


@dataclass
class CallRhs(Rhs):
    """``method(args)`` used as an RHS (or as a bare call statement)."""

    method: str
    args: list[Expr]


@dataclass
class MallocRhs(Rhs):
    """``malloc(T)`` — allocate a single object."""

    alloc_type: ty.Type


@dataclass
class CallocRhs(Rhs):
    """``calloc(T, n)`` — allocate a zero-initialized array of objects."""

    alloc_type: ty.Type
    count: Expr


@dataclass
class CreateThreadRhs(Rhs):
    """``create_thread method(args)`` — spawn a thread; value is its id."""

    method: str
    args: list[Expr]


# ---------------------------------------------------------------------------
# Statements


@dataclass
class Stmt:
    loc: SourceLoc = field(default=NOWHERE, kw_only=True)


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class VarDeclStmt(Stmt):
    """``var x: T [:= rhs];`` — stack variable declaration.

    Without an initializer the variable starts with an arbitrary value
    (encapsulated in the method-call step object, §4.1).
    """

    name: str
    var_type: ty.Type
    init: Optional[Rhs] = None
    ghost: bool = False


@dataclass
class AssignStmt(Stmt):
    """Assignment: ``lhs, ... := rhs, ...;`` or TSO-bypassing ``::=``.

    A bare method-call statement is represented with empty ``lhss``.
    """

    lhss: list[Expr]
    rhss: list[Rhs]
    tso_bypass: bool = False


@dataclass
class IfStmt(Stmt):
    cond: Expr
    then: Block
    els: Optional[Block] = None


@dataclass
class WhileStmt(Stmt):
    cond: Expr
    body: Block
    invariants: list[Expr] = field(default_factory=list)


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class AssertStmt(Stmt):
    """``assert e;`` — crashes the program if *e* does not hold (§3.1.2)."""

    cond: Expr


@dataclass
class AssumeStmt(Stmt):
    """``assume e;`` — enablement condition: the statement cannot execute
    unless *e* holds (§3.1.2)."""

    cond: Expr


@dataclass
class SomehowSpec:
    requires: list[Expr] = field(default_factory=list)
    modifies: list[Expr] = field(default_factory=list)
    ensures: list[Expr] = field(default_factory=list)


@dataclass
class SomehowStmt(Stmt):
    """``somehow requires ... modifies ... ensures ...;`` — a declarative
    atomic action (§3.1.2).  Undefined behaviour if a precondition fails;
    havocs the modifies set subject to the two-state postconditions.
    """

    spec: SomehowSpec = field(default_factory=SomehowSpec)


@dataclass
class DeallocStmt(Stmt):
    ptr: Expr


@dataclass
class JoinStmt(Stmt):
    thread: Expr


@dataclass
class LabelStmt(Stmt):
    label: str
    stmt: Stmt


@dataclass
class ExplicitYieldBlock(Stmt):
    """``explicit_yield { S }`` — the body executes without interruption
    except at ``yield`` points (§3.1.2, following CIVL)."""

    body: Block


@dataclass
class YieldStmt(Stmt):
    pass


@dataclass
class AtomicBlock(Stmt):
    """``atomic { S }`` — executes to completion without interruption
    (but a behaviour may terminate mid-block, §3.1.2)."""

    body: Block


# ---------------------------------------------------------------------------
# Declarations


@dataclass
class Param:
    name: str
    type: ty.Type
    loc: SourceLoc = field(default=NOWHERE)


@dataclass
class MethodSpec:
    requires: list[Expr] = field(default_factory=list)
    ensures: list[Expr] = field(default_factory=list)
    modifies: list[Expr] = field(default_factory=list)
    reads: list[Expr] = field(default_factory=list)


@dataclass
class MethodDecl:
    """A method.  ``extern`` methods model runtime/library/OS functions or
    hardware instructions (§3.1.4); their body, if supplied, is a
    concurrency-aware model rather than compiled code.
    """

    name: str
    params: list[Param]
    return_type: ty.Type
    body: Optional[Block]
    spec: MethodSpec = field(default_factory=MethodSpec)
    is_extern: bool = False
    loc: SourceLoc = field(default=NOWHERE)


@dataclass
class GlobalVarDecl:
    name: str
    var_type: ty.Type
    init: Optional[Expr] = None
    ghost: bool = False
    loc: SourceLoc = field(default=NOWHERE)


@dataclass
class StructDecl:
    name: str
    struct_type: ty.StructType = field(default=None)  # type: ignore[assignment]
    loc: SourceLoc = field(default=NOWHERE)


@dataclass
class LevelDecl:
    """``level Name { decls }`` — one program in the refinement chain."""

    name: str
    structs: list[StructDecl] = field(default_factory=list)
    globals: list[GlobalVarDecl] = field(default_factory=list)
    methods: list[MethodDecl] = field(default_factory=list)
    loc: SourceLoc = field(default=NOWHERE)

    def method(self, name: str) -> MethodDecl | None:
        for m in self.methods:
            if m.name == name:
                return m
        return None

    def global_var(self, name: str) -> GlobalVarDecl | None:
        for g in self.globals:
            if g.name == name:
                return g
        return None


@dataclass
class RecipeItem:
    """One directive inside a ``proof`` block after the refinement line.

    The first item names the strategy; its arguments are raw strings
    (identifiers or quoted predicates) interpreted by the strategy.
    Later items may be directives like ``use_regions`` or invariants.
    """

    name: str
    args: list[str] = field(default_factory=list)
    loc: SourceLoc = field(default=NOWHERE)


@dataclass
class ProofDecl:
    """``proof Name { refinement Low High; <strategy> args; ... }``"""

    name: str
    low_level: str
    high_level: str
    items: list[RecipeItem] = field(default_factory=list)
    loc: SourceLoc = field(default=NOWHERE)

    @property
    def strategy(self) -> RecipeItem:
        """The strategy directive — the first non-auxiliary recipe item."""
        auxiliary = {
            "use_regions", "use_address_invariant", "invariant",
            "rely_guarantee", "lemma", "witness",
        }
        for item in self.items:
            if item.name not in auxiliary:
                return item
        from repro.errors import ParseError

        raise ParseError(f"proof {self.name} names no strategy", self.loc)

    def directives(self, name: str) -> list[RecipeItem]:
        return [item for item in self.items if item.name == name]

    def has_directive(self, name: str) -> bool:
        return any(item.name == name for item in self.items)


@dataclass
class Program:
    """A complete Armada source file: levels plus proof recipes."""

    levels: list[LevelDecl] = field(default_factory=list)
    proofs: list[ProofDecl] = field(default_factory=list)

    def level(self, name: str) -> LevelDecl | None:
        for lvl in self.levels:
            if lvl.name == name:
                return lvl
        return None


# ---------------------------------------------------------------------------
# Generic traversal helpers


def child_exprs(expr: Expr) -> list[Expr]:
    """Immediate subexpressions of *expr* (for generic walks)."""
    if isinstance(expr, Unary):
        return [expr.operand]
    if isinstance(expr, Binary):
        return [expr.left, expr.right]
    if isinstance(expr, Conditional):
        return [expr.cond, expr.then, expr.els]
    if isinstance(expr, (AddressOf, Deref, Old, Allocated, AllocatedArray)):
        return [expr.operand]
    if isinstance(expr, FieldAccess):
        return [expr.base]
    if isinstance(expr, Index):
        return [expr.base, expr.index]
    if isinstance(expr, Call):
        return list(expr.args)
    if isinstance(expr, (SeqLit, SetLit)):
        return list(expr.elements)
    if isinstance(expr, Quantifier):
        return [expr.body]
    return []


def walk_expr(expr: Expr):
    """Yield *expr* and all its subexpressions, pre-order."""
    yield expr
    for child in child_exprs(expr):
        yield from walk_expr(child)


def stmt_exprs(stmt: Stmt) -> list[Expr]:
    """Immediate expressions appearing in *stmt* (not recursing into
    sub-statements)."""
    if isinstance(stmt, VarDeclStmt):
        return rhs_exprs(stmt.init) if stmt.init else []
    if isinstance(stmt, AssignStmt):
        exprs = list(stmt.lhss)
        for rhs in stmt.rhss:
            exprs.extend(rhs_exprs(rhs))
        return exprs
    if isinstance(stmt, IfStmt):
        return [stmt.cond]
    if isinstance(stmt, WhileStmt):
        return [stmt.cond, *stmt.invariants]
    if isinstance(stmt, ReturnStmt):
        return [stmt.value] if stmt.value else []
    if isinstance(stmt, (AssertStmt, AssumeStmt)):
        return [stmt.cond]
    if isinstance(stmt, SomehowStmt):
        return [*stmt.spec.requires, *stmt.spec.modifies, *stmt.spec.ensures]
    if isinstance(stmt, DeallocStmt):
        return [stmt.ptr]
    if isinstance(stmt, JoinStmt):
        return [stmt.thread]
    return []


def rhs_exprs(rhs: Rhs) -> list[Expr]:
    if isinstance(rhs, ExprRhs):
        return [rhs.expr]
    if isinstance(rhs, (CallRhs, CreateThreadRhs)):
        return list(rhs.args)
    if isinstance(rhs, CallocRhs):
        return [rhs.count]
    return []


def child_stmts(stmt: Stmt) -> list[Stmt]:
    """Immediate sub-statements of *stmt*."""
    if isinstance(stmt, Block):
        return list(stmt.stmts)
    if isinstance(stmt, IfStmt):
        return [stmt.then] + ([stmt.els] if stmt.els else [])
    if isinstance(stmt, WhileStmt):
        return [stmt.body]
    if isinstance(stmt, LabelStmt):
        return [stmt.stmt]
    if isinstance(stmt, (ExplicitYieldBlock, AtomicBlock)):
        return [stmt.body]
    return []


def walk_stmts(stmt: Stmt):
    """Yield *stmt* and all sub-statements, pre-order."""
    yield stmt
    for child in child_stmts(stmt):
        yield from walk_stmts(child)
