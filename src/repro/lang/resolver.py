"""Name resolution for Armada levels.

Resolution produces a :class:`LevelContext` per level containing:

* the struct table (name → full :class:`StructType` with fields),
* the global-variable table,
* the method table (declared methods plus the implicit prelude externs),
* per-method local tables (parameters + all ``var`` declarations; Armada
  stack frames are flat datatypes with one field per local, §3.2.2, so
  local names must be unique within a method),
* the set of *uninterpreted* ghost functions referenced in specification
  positions (e.g. ``valid_soln`` in the paper's running example).

Resolution also rewrites placeholder struct types (parsed as bare names)
into their full definitions, everywhere a type can occur.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ResolveError
from repro.lang import asts as ast
from repro.lang import types as ty
from repro.lang.prelude import prelude_methods


@dataclass
class LocalInfo:
    """A method-local variable (parameter or ``var`` declaration)."""

    name: str
    type: ty.Type
    ghost: bool = False
    is_param: bool = False
    address_taken: bool = False


@dataclass
class MethodContext:
    decl: ast.MethodDecl
    locals: dict[str, LocalInfo] = field(default_factory=dict)


@dataclass
class LevelContext:
    """Resolved symbol information for one level."""

    level: ast.LevelDecl
    structs: dict[str, ty.StructType] = field(default_factory=dict)
    globals: dict[str, ast.GlobalVarDecl] = field(default_factory=dict)
    methods: dict[str, ast.MethodDecl] = field(default_factory=dict)
    method_contexts: dict[str, MethodContext] = field(default_factory=dict)
    uninterpreted: set[str] = field(default_factory=set)
    #: Globals whose address is taken somewhere in the program (these are
    #: heap roots in the forest model, §3.2.4).
    addressed_globals: set[str] = field(default_factory=set)

    def local(self, method: str, name: str) -> LocalInfo | None:
        ctx = self.method_contexts.get(method)
        if ctx is None:
            return None
        return ctx.locals.get(name)


class Resolver:
    """Resolves one level. Use :func:`resolve_level`."""

    def __init__(self, level: ast.LevelDecl) -> None:
        self._level = level
        self._ctx = LevelContext(level)

    def resolve(self) -> LevelContext:
        self._collect_structs()
        self._collect_globals()
        self._collect_methods()
        for method in self._level.methods:
            self._resolve_method(method)
        return self._ctx

    # ------------------------------------------------------------------

    def _collect_structs(self) -> None:
        for decl in self._level.structs:
            if decl.name in self._ctx.structs:
                raise ResolveError(f"duplicate struct {decl.name}", decl.loc)
            self._ctx.structs[decl.name] = decl.struct_type
        # Resolve struct references inside struct fields (allowing nesting;
        # recursion through a pointer is fine, direct recursion is not).
        for name in list(self._ctx.structs):
            self._ctx.structs[name] = self._resolve_struct_body(
                self._ctx.structs[name], stack=(name,)
            )
        for decl in self._level.structs:
            decl.struct_type = self._ctx.structs[decl.name]

    def _resolve_struct_body(
        self, struct: ty.StructType, stack: tuple[str, ...]
    ) -> ty.StructType:
        fields = []
        for f in struct.fields:
            fields.append(
                ty.StructField(f.name, self._resolve_type(f.type, stack))
            )
        return ty.StructType(struct.name, tuple(fields))

    def _resolve_type(
        self, t: ty.Type, stack: tuple[str, ...] = ()
    ) -> ty.Type:
        """Replace bare struct names with full definitions, recursively."""
        if isinstance(t, ty.StructType):
            if t.name in stack and not t.fields:
                raise ResolveError(
                    f"struct {t.name} directly contains itself"
                )
            resolved = self._ctx.structs.get(t.name)
            if resolved is None:
                raise ResolveError(f"unknown struct {t.name}")
            if not resolved.fields or t.name in stack:
                return resolved
            return resolved
        if isinstance(t, ty.PtrType):
            # Pointers may refer to not-yet-resolved structs; stop cycles.
            if isinstance(t.element, ty.StructType):
                inner = self._ctx.structs.get(t.element.name)
                if inner is None:
                    raise ResolveError(f"unknown struct {t.element.name}")
                return ty.PtrType(inner)
            return ty.PtrType(self._resolve_type(t.element, stack))
        if isinstance(t, ty.ArrayType):
            return ty.ArrayType(self._resolve_type(t.element, stack), t.size)
        if isinstance(t, ty.SeqType):
            return ty.SeqType(self._resolve_type(t.element, stack))
        if isinstance(t, ty.SetType):
            return ty.SetType(self._resolve_type(t.element, stack))
        if isinstance(t, ty.MapType):
            return ty.MapType(
                self._resolve_type(t.key, stack),
                self._resolve_type(t.value, stack),
            )
        if isinstance(t, ty.OptionType):
            return ty.OptionType(self._resolve_type(t.element, stack))
        return t

    def _collect_globals(self) -> None:
        for g in self._level.globals:
            if g.name in self._ctx.globals:
                raise ResolveError(f"duplicate global {g.name}", g.loc)
            g.var_type = self._resolve_type(g.var_type)
            self._ctx.globals[g.name] = g

    def _collect_methods(self) -> None:
        for m in prelude_methods():
            self._ctx.methods[m.name] = m
        for m in self._level.methods:
            if m.name in self._level_method_names_before(m):
                raise ResolveError(f"duplicate method {m.name}", m.loc)
            m.return_type = self._resolve_type(m.return_type)
            for p in m.params:
                p.type = self._resolve_type(p.type)
            self._ctx.methods[m.name] = m

    def _level_method_names_before(self, m: ast.MethodDecl) -> set[str]:
        names = set()
        for other in self._level.methods:
            if other is m:
                break
            names.add(other.name)
        return names

    # ------------------------------------------------------------------

    def _resolve_method(self, method: ast.MethodDecl) -> None:
        mctx = MethodContext(method)
        self._ctx.method_contexts[method.name] = mctx
        for p in method.params:
            if p.name in mctx.locals:
                raise ResolveError(
                    f"duplicate parameter {p.name} in {method.name}", p.loc
                )
            mctx.locals[p.name] = LocalInfo(
                p.name, p.type, ghost=False, is_param=True
            )
        if method.body is None:
            return
        self._collect_locals(method, mctx, method.body)
        self._check_stmt_names(method, mctx, method.body)

    def _collect_locals(
        self, method: ast.MethodDecl, mctx: MethodContext, block: ast.Block
    ) -> None:
        for stmt in ast.walk_stmts(block):
            if isinstance(stmt, ast.VarDeclStmt):
                stmt.var_type = self._resolve_type(stmt.var_type)
                if isinstance(stmt.init, ast.MallocRhs):
                    stmt.init.alloc_type = self._resolve_type(
                        stmt.init.alloc_type
                    )
                if isinstance(stmt.init, ast.CallocRhs):
                    stmt.init.alloc_type = self._resolve_type(
                        stmt.init.alloc_type
                    )
                if stmt.name in mctx.locals:
                    raise ResolveError(
                        f"duplicate local {stmt.name} in {method.name} "
                        "(Armada stack frames are flat; rename the variable)",
                        stmt.loc,
                    )
                mctx.locals[stmt.name] = LocalInfo(
                    stmt.name, stmt.var_type, ghost=stmt.ghost
                )
            elif isinstance(stmt, ast.AssignStmt):
                for rhs in stmt.rhss:
                    if isinstance(rhs, (ast.MallocRhs, ast.CallocRhs)):
                        rhs.alloc_type = self._resolve_type(rhs.alloc_type)

    def _check_stmt_names(
        self, method: ast.MethodDecl, mctx: MethodContext, stmt: ast.Stmt
    ) -> None:
        for node in ast.walk_stmts(stmt):
            if isinstance(node, ast.AssignStmt):
                node.rhss = [
                    self._demote_ghost_call(rhs) for rhs in node.rhss
                ]
            if isinstance(node, ast.VarDeclStmt) and node.init is not None:
                node.init = self._demote_ghost_call(node.init)
            for expr in ast.stmt_exprs(node):
                self._check_expr_names(method, mctx, expr, spec=False)
            if isinstance(node, ast.AssignStmt):
                for rhs in node.rhss:
                    if isinstance(rhs, (ast.CallRhs, ast.CreateThreadRhs)):
                        if rhs.method not in self._ctx.methods:
                            raise ResolveError(
                                f"call to unknown method {rhs.method}",
                                rhs.loc,
                            )

    #: Pure functions evaluable in expressions (not method calls).
    GHOST_BUILTINS = frozenset(
        {"len", "abs", "Some", "first", "last", "drop", "take"}
    )

    def _demote_ghost_call(self, rhs: ast.Rhs) -> ast.Rhs:
        """A CallRhs to a ghost builtin (e.g. ``q := drop(q, 1)``) is an
        expression, not a method call; rewrite it to an ExprRhs."""
        if (
            isinstance(rhs, ast.CallRhs)
            and rhs.method in self.GHOST_BUILTINS
        ):
            call = ast.Call(rhs.method, rhs.args, loc=rhs.loc)
            return ast.ExprRhs(call, loc=rhs.loc)
        return rhs

    def _check_expr_names(
        self,
        method: ast.MethodDecl,
        mctx: MethodContext,
        expr: ast.Expr,
        spec: bool,
        bound: frozenset[str] = frozenset(),
    ) -> None:
        if isinstance(expr, ast.Var):
            if (
                expr.name not in bound
                and expr.name not in mctx.locals
                and expr.name not in self._ctx.globals
                and expr.name not in ("None",)
            ):
                raise ResolveError(
                    f"unknown variable {expr.name} in {method.name}", expr.loc
                )
            return
        if isinstance(expr, ast.MetaVar):
            if expr.name not in ("$me", "$sb_empty", "$log", "$state"):
                raise ResolveError(f"unknown meta variable {expr.name}",
                                   expr.loc)
            return
        if isinstance(expr, ast.Call):
            if expr.func not in self._ctx.methods and expr.func not in (
                "len", "Some", "None", "abs",
                "first", "last", "drop", "take",
            ):
                # Uninterpreted ghost function (spec-only).
                self._ctx.uninterpreted.add(expr.func)
            for arg in expr.args:
                self._check_expr_names(method, mctx, arg, spec, bound)
            return
        if isinstance(expr, ast.AddressOf):
            target = expr.operand
            if isinstance(target, ast.Var):
                if target.name in self._ctx.globals:
                    self._ctx.addressed_globals.add(target.name)
                elif target.name in mctx.locals:
                    mctx.locals[target.name].address_taken = True
        if isinstance(expr, ast.Quantifier):
            self._check_expr_names(
                method, mctx, expr.body, spec, bound | {expr.boundvar}
            )
            return
        for child in ast.child_exprs(expr):
            self._check_expr_names(method, mctx, child, spec, bound)


def resolve_level(level: ast.LevelDecl) -> LevelContext:
    """Resolve *level*, returning its :class:`LevelContext`."""
    return Resolver(level).resolve()
