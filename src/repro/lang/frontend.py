"""Front-end facade: parse, resolve, and type-check Armada programs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import asts as ast
from repro.lang.core_check import check_core
from repro.lang.parser import parse_program
from repro.lang.resolver import LevelContext, resolve_level
from repro.lang.typechecker import typecheck_level


@dataclass
class CheckedProgram:
    """A parsed program with every level resolved and type-checked."""

    program: ast.Program
    contexts: dict[str, LevelContext] = field(default_factory=dict)

    def context(self, level_name: str) -> LevelContext:
        return self.contexts[level_name]


def check_program(source: str, filename: str = "<armada>") -> CheckedProgram:
    """Parse and fully check Armada *source*.

    Every level is resolved and type-checked.  Core-Armada restrictions
    are *not* applied here — they apply only to the implementation level
    and are enforced by the compiler (:func:`repro.lang.core_check.check_core`)
    and by :meth:`repro.proofs.engine.ProofEngine`.
    """
    program = parse_program(source, filename)
    checked = CheckedProgram(program)
    for level in program.levels:
        ctx = resolve_level(level)
        typecheck_level(ctx)
        checked.contexts[level.name] = ctx
    return checked


def check_level(source: str, filename: str = "<armada>") -> LevelContext:
    """Parse and check a source containing exactly one level."""
    checked = check_program(source, filename)
    if len(checked.program.levels) != 1:
        raise ValueError(
            f"expected exactly one level, found {len(checked.program.levels)}"
        )
    return checked.contexts[checked.program.levels[0].name]


def check_core_level(source: str, filename: str = "<armada>") -> LevelContext:
    """Parse, check, and core-check a single implementation level."""
    ctx = check_level(source, filename)
    check_core(ctx)
    return ctx
