"""Type checker for Armada levels.

Annotates every expression node with its type (the ``type`` attribute)
and rejects ill-typed programs.  Checking is mildly bidirectional so
that integer literals and the nondeterministic ``*`` adopt the fixed
width expected by their context, matching how the Armada front end
infers types before state-machine translation.
"""

from __future__ import annotations

from repro.errors import TypeError_
from repro.lang import asts as ast
from repro.lang import types as ty
from repro.lang.resolver import LevelContext, MethodContext

#: Thread ids have this type (`create_thread` results, `$me`).
THREAD_ID_TYPE = ty.UINT64


class TypeChecker:
    """Type-checks one resolved level."""

    def __init__(self, ctx: LevelContext) -> None:
        self._ctx = ctx

    def check(self) -> None:
        for g in self._ctx.level.globals:
            if g.init is not None:
                self._check_expr(g.init, None, g.var_type, two_state=False)
        for method in self._ctx.level.methods:
            self._check_method(method)

    # ------------------------------------------------------------------

    def _check_method(self, method: ast.MethodDecl) -> None:
        mctx = self._ctx.method_contexts[method.name]
        for expr in method.spec.requires + method.spec.modifies + \
                method.spec.reads:
            self._check_expr(expr, mctx, None, two_state=False)
        for expr in method.spec.ensures:
            self._check_expr(expr, mctx, ty.BOOL, two_state=True)
        if method.body is not None:
            self._check_block(method, mctx, method.body)

    def _check_block(
        self, method: ast.MethodDecl, mctx: MethodContext, block: ast.Block
    ) -> None:
        for stmt in block.stmts:
            self._check_stmt(method, mctx, stmt)

    def _check_stmt(
        self, method: ast.MethodDecl, mctx: MethodContext, stmt: ast.Stmt
    ) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(method, mctx, stmt)
        elif isinstance(stmt, ast.VarDeclStmt):
            if stmt.init is not None:
                self._check_rhs(mctx, stmt.init, stmt.var_type)
        elif isinstance(stmt, ast.AssignStmt):
            self._check_assign(mctx, stmt)
        elif isinstance(stmt, ast.IfStmt):
            self._check_guard(mctx, stmt.cond)
            self._check_block(method, mctx, stmt.then)
            if stmt.els is not None:
                self._check_block(method, mctx, stmt.els)
        elif isinstance(stmt, ast.WhileStmt):
            self._check_guard(mctx, stmt.cond)
            for inv in stmt.invariants:
                self._check_expr(inv, mctx, ty.BOOL, two_state=False)
            self._check_block(method, mctx, stmt.body)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                if isinstance(method.return_type, ty.VoidType):
                    raise TypeError_(
                        f"{method.name} returns void but return has a value",
                        stmt.loc,
                    )
                self._check_expr(stmt.value, mctx, method.return_type,
                                 two_state=False)
            elif not isinstance(method.return_type, ty.VoidType):
                raise TypeError_(
                    f"{method.name} must return a {method.return_type}",
                    stmt.loc,
                )
        elif isinstance(stmt, (ast.AssertStmt, ast.AssumeStmt)):
            self._check_expr(stmt.cond, mctx, ty.BOOL, two_state=False)
        elif isinstance(stmt, ast.SomehowStmt):
            for e in stmt.spec.requires:
                self._check_expr(e, mctx, ty.BOOL, two_state=False)
            for e in stmt.spec.modifies:
                self._check_lvalue(mctx, e)
            for e in stmt.spec.ensures:
                self._check_expr(e, mctx, ty.BOOL, two_state=True)
        elif isinstance(stmt, ast.DeallocStmt):
            t = self._check_expr(stmt.ptr, mctx, None, two_state=False)
            if not t.is_pointer():
                raise TypeError_("dealloc requires a pointer", stmt.loc)
        elif isinstance(stmt, ast.JoinStmt):
            self._check_expr(stmt.thread, mctx, THREAD_ID_TYPE,
                             two_state=False)
        elif isinstance(stmt, ast.LabelStmt):
            self._check_stmt(method, mctx, stmt.stmt)
        elif isinstance(stmt, (ast.ExplicitYieldBlock, ast.AtomicBlock)):
            self._check_block(method, mctx, stmt.body)
        elif isinstance(
            stmt, (ast.BreakStmt, ast.ContinueStmt, ast.YieldStmt)
        ):
            pass
        else:
            raise TypeError_(f"unhandled statement {type(stmt).__name__}",
                             stmt.loc)

    def _check_guard(self, mctx: MethodContext, cond: ast.Expr) -> None:
        if isinstance(cond, ast.Nondet):
            cond.type = ty.BOOL
            return
        self._check_expr(cond, mctx, ty.BOOL, two_state=False)

    def _check_assign(self, mctx: MethodContext, stmt: ast.AssignStmt) -> None:
        lhs_types = [self._check_lvalue(mctx, lhs) for lhs in stmt.lhss]
        if not stmt.lhss:
            # Bare call statement.
            if len(stmt.rhss) != 1 or not isinstance(stmt.rhss[0], ast.CallRhs):
                raise TypeError_("statement has no effect", stmt.loc)
            self._check_rhs(mctx, stmt.rhss[0], None)
            return
        if len(stmt.lhss) != len(stmt.rhss):
            raise TypeError_(
                f"{len(stmt.lhss)} left-hand sides but {len(stmt.rhss)} "
                "right-hand sides",
                stmt.loc,
            )
        for lhs_type, rhs in zip(lhs_types, stmt.rhss):
            self._check_rhs(mctx, rhs, lhs_type)

    def _check_rhs(
        self, mctx: MethodContext, rhs: ast.Rhs, expected: ty.Type | None
    ) -> ty.Type:
        if isinstance(rhs, ast.ExprRhs):
            return self._check_expr(rhs.expr, mctx, expected, two_state=False)
        if isinstance(rhs, ast.CallRhs):
            method = self._ctx.methods.get(rhs.method)
            if method is None:
                raise TypeError_(f"call to unknown method {rhs.method}",
                                 rhs.loc)
            self._check_call_args(mctx, rhs.method, method, rhs.args, rhs)
            result = method.return_type
            if expected is not None and not ty.assignable(expected, result):
                raise TypeError_(
                    f"method {rhs.method} returns {result}, expected "
                    f"{expected}",
                    rhs.loc,
                )
            return result
        if isinstance(rhs, ast.MallocRhs):
            result = ty.PtrType(rhs.alloc_type)
            self._require_assignable(expected, result, rhs.loc)
            return result
        if isinstance(rhs, ast.CallocRhs):
            self._check_expr(rhs.count, mctx, None, two_state=False)
            result = ty.PtrType(rhs.alloc_type)
            self._require_assignable(expected, result, rhs.loc)
            return result
        if isinstance(rhs, ast.CreateThreadRhs):
            method = self._ctx.methods.get(rhs.method)
            if method is None:
                raise TypeError_(
                    f"create_thread of unknown method {rhs.method}", rhs.loc
                )
            self._check_call_args(mctx, rhs.method, method, rhs.args, rhs)
            self._require_assignable(expected, THREAD_ID_TYPE, rhs.loc)
            return THREAD_ID_TYPE
        raise TypeError_(f"unhandled RHS {type(rhs).__name__}", rhs.loc)

    def _check_call_args(
        self,
        mctx: MethodContext,
        name: str,
        method: ast.MethodDecl,
        args: list[ast.Expr],
        node: ast.Rhs,
    ) -> None:
        if len(args) != len(method.params):
            raise TypeError_(
                f"{name} expects {len(method.params)} arguments, got "
                f"{len(args)}",
                node.loc,
            )
        for arg, param in zip(args, method.params):
            self._check_expr(arg, mctx, param.type, two_state=False)

    def _require_assignable(
        self, expected: ty.Type | None, actual: ty.Type, loc
    ) -> None:
        if expected is not None and not ty.assignable(expected, actual):
            raise TypeError_(f"cannot assign {actual} to {expected}", loc)

    # ------------------------------------------------------------------
    # lvalues

    def _check_lvalue(self, mctx: MethodContext, expr: ast.Expr) -> ty.Type:
        if isinstance(expr, (ast.Var, ast.Deref, ast.Index, ast.FieldAccess)):
            return self._check_expr(expr, mctx, None, two_state=False)
        raise TypeError_(
            f"{type(expr).__name__} is not an assignable location", expr.loc
        )

    # ------------------------------------------------------------------
    # expressions

    def _check_expr(
        self,
        expr: ast.Expr,
        mctx: MethodContext | None,
        expected: ty.Type | None,
        two_state: bool,
        bound: dict[str, ty.Type] | None = None,
    ) -> ty.Type:
        result = self._infer(expr, mctx, expected, two_state, bound or {})
        expr.type = result
        if expected is not None and not ty.assignable(expected, result):
            raise TypeError_(
                f"expected {expected}, found {result}", expr.loc
            )
        return result

    def _infer(
        self,
        expr: ast.Expr,
        mctx: MethodContext | None,
        expected: ty.Type | None,
        two_state: bool,
        bound: dict[str, ty.Type],
    ) -> ty.Type:
        check = lambda e, exp=None: self._check_expr(  # noqa: E731
            e, mctx, exp, two_state, bound
        )

        if isinstance(expr, ast.IntLit):
            if isinstance(expected, ty.IntType):
                if not expected.contains(expr.value):
                    raise TypeError_(
                        f"literal {expr.value} out of range for {expected}",
                        expr.loc,
                    )
                return expected
            return expected if isinstance(expected, ty.MathIntType) \
                else ty.MATHINT
        if isinstance(expr, ast.BoolLit):
            return ty.BOOL
        if isinstance(expr, ast.NullLit):
            return expected if isinstance(expected, ty.PtrType) \
                else ty.PtrType(ty.VOID)
        if isinstance(expr, ast.Nondet):
            if expected is None:
                raise TypeError_(
                    "cannot infer the type of a nondeterministic '*' here",
                    expr.loc,
                )
            return expected
        if isinstance(expr, ast.Var):
            return self._var_type(expr, mctx, expected, bound)
        if isinstance(expr, ast.MetaVar):
            if expr.name == "$me":
                return THREAD_ID_TYPE
            if expr.name == "$sb_empty":
                return ty.BOOL
            return ty.MATHINT
        if isinstance(expr, ast.Unary):
            return self._infer_unary(expr, check, expected)
        if isinstance(expr, ast.Binary):
            return self._infer_binary(expr, check, expected)
        if isinstance(expr, ast.Conditional):
            check(expr.cond, ty.BOOL)
            then_t = check(expr.then, expected)
            els_t = check(expr.els, then_t if expected is None else expected)
            if expected is None and then_t != els_t:
                joined = ty.join_integer(then_t, els_t)
                if joined is None:
                    raise TypeError_(
                        f"branches have different types {then_t} / {els_t}",
                        expr.loc,
                    )
                return joined
            return then_t
        if isinstance(expr, ast.AddressOf):
            inner = check(expr.operand)
            if not isinstance(
                expr.operand, (ast.Var, ast.Deref, ast.Index, ast.FieldAccess)
            ):
                raise TypeError_("cannot take the address of this expression",
                                 expr.loc)
            return ty.PtrType(inner)
        if isinstance(expr, ast.Deref):
            inner = check(expr.operand)
            if not isinstance(inner, ty.PtrType):
                raise TypeError_(f"cannot dereference {inner}", expr.loc)
            return inner.element
        if isinstance(expr, ast.FieldAccess):
            base = check(expr.base)
            if isinstance(base, ty.StructType):
                field_type = base.field_type(expr.fieldname)
                if field_type is None:
                    raise TypeError_(
                        f"{base} has no field {expr.fieldname}", expr.loc
                    )
                return field_type
            raise TypeError_(f"{base} has no fields", expr.loc)
        if isinstance(expr, ast.Index):
            return self._infer_index(expr, check)
        if isinstance(expr, ast.Old):
            if not two_state:
                raise TypeError_(
                    "old() is only allowed in two-state predicates "
                    "(ensures clauses)",
                    expr.loc,
                )
            return check(expr.operand, expected)
        if isinstance(expr, (ast.Allocated, ast.AllocatedArray)):
            inner = check(expr.operand)
            if not inner.is_pointer():
                raise TypeError_("allocated() requires a pointer", expr.loc)
            return ty.BOOL
        if isinstance(expr, ast.Call):
            return self._infer_call(expr, mctx, check, expected)
        if isinstance(expr, ast.SeqLit):
            hint = expected.element if isinstance(expected, ty.SeqType) \
                else None
            if expr.elements:
                elem = check(expr.elements[0], hint)
                for e in expr.elements[1:]:
                    check(e, elem)
            else:
                elem = hint if hint is not None else ty.MATHINT
            return ty.SeqType(elem)
        if isinstance(expr, ast.SetLit):
            hint = expected.element if isinstance(expected, ty.SetType) \
                else None
            if expr.elements:
                elem = check(expr.elements[0], hint)
                for e in expr.elements[1:]:
                    check(e, elem)
            else:
                elem = hint if hint is not None else ty.MATHINT
            return ty.SetType(elem)
        if isinstance(expr, ast.Quantifier):
            inner_bound = dict(bound)
            inner_bound[expr.boundvar] = expr.boundtype
            self._check_expr(expr.body, mctx, ty.BOOL, two_state, inner_bound)
            return ty.BOOL
        raise TypeError_(f"unhandled expression {type(expr).__name__}",
                         expr.loc)

    def _var_type(
        self,
        expr: ast.Var,
        mctx: MethodContext | None,
        expected: ty.Type | None,
        bound: dict[str, ty.Type],
    ) -> ty.Type:
        if expr.name in bound:
            return bound[expr.name]
        if expr.name == "None":
            if isinstance(expected, ty.OptionType):
                return expected
            return ty.OptionType(ty.VOID)
        if mctx is not None:
            info = mctx.locals.get(expr.name)
            if info is not None:
                return info.type
        g = self._ctx.globals.get(expr.name)
        if g is not None:
            return g.var_type
        raise TypeError_(f"unknown variable {expr.name}", expr.loc)

    def _infer_unary(self, expr: ast.Unary, check, expected) -> ty.Type:
        if expr.op == "!":
            check(expr.operand, ty.BOOL)
            return ty.BOOL
        if expr.op == "-":
            inner = check(expr.operand,
                          expected if isinstance(expected, ty.IntType)
                          else None)
            if not inner.is_integer():
                raise TypeError_(f"cannot negate {inner}", expr.loc)
            return inner
        if expr.op == "~":
            inner = check(expr.operand,
                          expected if isinstance(expected, ty.IntType)
                          else None)
            if not isinstance(inner, ty.IntType):
                raise TypeError_("~ requires a fixed-width integer", expr.loc)
            return inner
        raise TypeError_(f"unknown unary operator {expr.op}", expr.loc)

    def _infer_binary(
        self, expr: ast.Binary, check, expected: ty.Type | None = None
    ) -> ty.Type:
        op = expr.op
        # Literal-heavy arithmetic adopts the width the context expects
        # (e.g. `x := 2 + 3 * 4` with x: uint32).
        width_hint = expected if isinstance(expected, ty.IntType) else None
        if op in ("&&", "||", "==>", "<=="):
            check(expr.left, ty.BOOL)
            check(expr.right, ty.BOOL)
            return ty.BOOL
        if op in ("==", "!="):
            left = check(expr.left)
            right = check(
                expr.right,
                left if isinstance(expr.right,
                                   (ast.IntLit, ast.Nondet, ast.NullLit,
                                    ast.Var))
                and not isinstance(left, ty.MathIntType) else None,
            )
            if not self._comparable(left, right):
                raise TypeError_(
                    f"cannot compare {left} with {right}", expr.loc
                )
            return ty.BOOL
        if op == "in":
            right = check(expr.right)
            if isinstance(right, ty.SeqType):
                check(expr.left, right.element)
            elif isinstance(right, ty.SetType):
                check(expr.left, right.element)
            elif isinstance(right, ty.MapType):
                check(expr.left, right.key)
            else:
                raise TypeError_(f"'in' requires a collection, got {right}",
                                 expr.loc)
            return ty.BOOL
        if op in ("<", "<=", ">", ">="):
            left = check(expr.left)
            check(
                expr.right,
                left if not isinstance(left, ty.MathIntType) else None,
            )
            if not (left.is_integer() or left.is_pointer()):
                raise TypeError_(f"cannot order {left}", expr.loc)
            return ty.BOOL
        if op in ("<<", ">>"):
            left = check(expr.left)
            check(expr.right, left if isinstance(left, ty.IntType) else None)
            if not isinstance(left, ty.IntType):
                raise TypeError_("shifts require fixed-width integers",
                                 expr.loc)
            return left
        if op in ("&", "|", "^"):
            left = check(expr.left)
            check(expr.right, left if isinstance(left, ty.IntType) else None)
            if not isinstance(left, ty.IntType):
                raise TypeError_(
                    f"bitwise {op} requires fixed-width integers", expr.loc
                )
            return left
        if op in ("+", "-", "*", "/", "%"):
            left = check(
                expr.left,
                width_hint if self._is_literal_tree(expr.left) else None,
            )
            if isinstance(left, ty.PtrType) and op in ("+", "-"):
                # Pointer offset within an array (§3.2.4).
                check(expr.right)
                return left
            if isinstance(left, ty.SeqType) and op == "+":
                check(expr.right, left)
                return left
            right = check(
                expr.right,
                left if not isinstance(left, ty.MathIntType) else None,
            )
            joined = ty.join_integer(left, right)
            if joined is None:
                raise TypeError_(
                    f"cannot apply {op} to {left} and {right}", expr.loc
                )
            return joined
        raise TypeError_(f"unknown binary operator {op}", expr.loc)

    @staticmethod
    def _is_literal_tree(expr: ast.Expr) -> bool:
        """Whether *expr* consists solely of integer literals and
        arithmetic (so its width is free to adopt the context's)."""
        if isinstance(expr, ast.IntLit):
            return True
        if isinstance(expr, ast.Unary) and expr.op == "-":
            return TypeChecker._is_literal_tree(expr.operand)
        if isinstance(expr, ast.Binary) and expr.op in (
            "+", "-", "*", "/", "%",
        ):
            return TypeChecker._is_literal_tree(expr.left) and \
                TypeChecker._is_literal_tree(expr.right)
        return False

    @staticmethod
    def _comparable(left: ty.Type, right: ty.Type) -> bool:
        if left == right:
            return True
        if left.is_integer() and right.is_integer():
            return True
        if left.is_pointer() and right.is_pointer():
            return True
        if isinstance(left, ty.OptionType) or isinstance(right, ty.OptionType):
            return True
        return False

    def _infer_index(self, expr: ast.Index, check) -> ty.Type:
        base = check(expr.base)
        if isinstance(base, ty.ArrayType):
            check(expr.index)
            return base.element
        if isinstance(base, ty.PtrType):
            check(expr.index)
            return base.element
        if isinstance(base, ty.SeqType):
            check(expr.index)
            return base.element
        if isinstance(base, ty.MapType):
            check(expr.index, base.key)
            return base.value
        raise TypeError_(f"cannot index into {base}", expr.loc)

    def _infer_call(
        self, expr: ast.Call, mctx, check, expected: ty.Type | None
    ) -> ty.Type:
        if expr.func == "len":
            if len(expr.args) != 1:
                raise TypeError_("len takes one argument", expr.loc)
            arg = check(expr.args[0])
            if not isinstance(arg, (ty.SeqType, ty.SetType, ty.MapType,
                                    ty.ArrayType)):
                raise TypeError_(f"len of non-collection {arg}", expr.loc)
            return ty.MATHINT
        if expr.func == "abs":
            if len(expr.args) != 1:
                raise TypeError_("abs takes one argument", expr.loc)
            return check(expr.args[0])
        if expr.func in ("first", "last"):
            if len(expr.args) != 1:
                raise TypeError_(f"{expr.func} takes one argument", expr.loc)
            arg = check(expr.args[0])
            if not isinstance(arg, ty.SeqType):
                raise TypeError_(f"{expr.func} requires a sequence", expr.loc)
            return arg.element
        if expr.func in ("drop", "take"):
            if len(expr.args) != 2:
                raise TypeError_(f"{expr.func} takes two arguments",
                                 expr.loc)
            arg = check(expr.args[0])
            check(expr.args[1])
            if not isinstance(arg, ty.SeqType):
                raise TypeError_(f"{expr.func} requires a sequence", expr.loc)
            return arg
        if expr.func == "Some":
            if len(expr.args) != 1:
                raise TypeError_("Some takes one argument", expr.loc)
            if isinstance(expected, ty.OptionType):
                check(expr.args[0], expected.element)
                return expected
            inner = check(expr.args[0])
            return ty.OptionType(inner)
        method = self._ctx.methods.get(expr.func)
        if method is not None:
            # Methods are impure (they touch shared state); allowing
            # them inside expressions would silently drop their effects.
            raise TypeError_(
                f"method {expr.func} cannot be called inside an "
                "expression; assign its result to a variable first",
                expr.loc,
            )
        # Uninterpreted ghost function: all arguments are checked without
        # constraint; the result type is boolean (predicates) unless the
        # context expects something else.
        for arg in expr.args:
            check(arg)
        return expected if expected is not None else ty.BOOL


def typecheck_level(ctx: LevelContext) -> None:
    """Type-check a resolved level in place."""
    TypeChecker(ctx).check()
