"""Token definitions for the Armada language lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SourceLoc


class TokenKind(enum.Enum):
    """Kinds of tokens produced by :mod:`repro.lang.lexer`."""

    IDENT = "identifier"
    INTLIT = "integer literal"
    STRINGLIT = "string literal"
    KEYWORD = "keyword"
    PUNCT = "punctuation"
    EOF = "end of file"


#: Reserved words of the Armada language (Figure 7 plus proof syntax).
KEYWORDS = frozenset(
    {
        # declarations
        "level", "proof", "method", "var", "ghost", "struct", "refinement",
        # types
        "uint8", "uint16", "uint32", "uint64",
        "int8", "int16", "int32", "int64",
        "int", "bool", "ptr", "seq", "set", "map", "option", "void",
        # statements
        "if", "else", "while", "break", "continue", "return",
        "assert", "assume", "somehow", "yield", "explicit_yield",
        "atomic", "label", "join", "dealloc",
        "malloc", "calloc", "create_thread",
        # specification clauses
        "requires", "ensures", "modifies", "reads", "invariant", "decreases",
        # expressions
        "true", "false", "null", "old", "allocated", "allocated_array",
        "forall", "exists", "in", "then",
        # recipe / strategy names are ordinary identifiers, but these recipe
        # directives are reserved:
        "use_regions", "use_address_invariant", "extern",
    }
)

#: Multi-character punctuation, longest first so the lexer can match greedily.
PUNCTUATIONS = (
    "::=", "==>", "<==", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>",
    ":=", "->", "{:", "..",
    "(", ")", "{", "}", "[", "]", "<", ">", ",", ";", ":", ".",
    "+", "-", "*", "/", "%", "&", "|", "^", "!", "~", "=", "?", "$", "@",
)


@dataclass(frozen=True, slots=True)
class Token:
    """A single lexed token."""

    kind: TokenKind
    text: str
    loc: SourceLoc

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def __str__(self) -> str:
        if self.kind is TokenKind.EOF:
            return "<eof>"
        return self.text
