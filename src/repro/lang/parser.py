"""Recursive-descent parser for the Armada language (Figure 7 grammar).

Produces the AST of :mod:`repro.lang.asts`.  The parser accepts both the
paper's brace-light recipe syntax (``tso_elim best_len "pred"``) and an
optional-semicolon variant.
"""

from __future__ import annotations

from repro.errors import ParseError, SourceLoc
from repro.lang import asts as ast
from repro.lang import types as ty
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind

#: Recipe item names the parser recognizes as starting a new item.
RECIPE_DIRECTIVES = frozenset(
    {
        "weakening", "nondet_weakening", "tso_elim", "reduction",
        "assume_intro", "rely_guarantee", "combining",
        "var_intro", "var_hiding",
        "use_regions", "use_address_invariant",
        "invariant", "lemma", "witness", "relation",
    }
)

#: Binary operator precedence levels, lowest binding first.
_BINARY_LEVELS: list[tuple[str, ...]] = [
    ("==>", "<=="),
    ("||",),
    ("&&",),
    ("==", "!=", "in"),
    ("<", "<=", ">", ">="),
    ("|",),
    ("^",),
    ("&",),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class Parser:
    """Parses a token stream into an :class:`repro.lang.asts.Program`."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # token helpers

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _check_punct(self, text: str) -> bool:
        return self._peek().is_punct(text)

    def _check_keyword(self, word: str) -> bool:
        return self._peek().is_keyword(word)

    def _accept_punct(self, text: str) -> bool:
        if self._check_punct(text):
            self._advance()
            return True
        return False

    def _accept_keyword(self, word: str) -> bool:
        if self._check_keyword(word):
            self._advance()
            return True
        return False

    def _expect_punct(self, text: str) -> Token:
        if not self._check_punct(text):
            raise ParseError(
                f"expected {text!r}, found {self._peek()!s}", self._peek().loc
            )
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        if not self._check_keyword(word):
            raise ParseError(
                f"expected {word!r}, found {self._peek()!s}", self._peek().loc
            )
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {token!s}", token.loc)
        return self._advance()

    # ------------------------------------------------------------------
    # top level

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while self._peek().kind is not TokenKind.EOF:
            if self._check_keyword("level"):
                program.levels.append(self._parse_level())
            elif self._check_keyword("proof"):
                program.proofs.append(self._parse_proof())
            else:
                raise ParseError(
                    f"expected 'level' or 'proof', found {self._peek()!s}",
                    self._peek().loc,
                )
        return program

    def _parse_level(self) -> ast.LevelDecl:
        loc = self._expect_keyword("level").loc
        name = self._expect_ident().text
        level = ast.LevelDecl(name=name, loc=loc)
        self._expect_punct("{")
        while not self._accept_punct("}"):
            self._parse_level_decl(level)
        return level

    def _parse_level_decl(self, level: ast.LevelDecl) -> None:
        token = self._peek()
        if token.is_keyword("struct"):
            level.structs.append(self._parse_struct())
        elif token.is_keyword("var") or token.is_keyword("ghost"):
            level.globals.append(self._parse_global_var())
        else:
            level.methods.append(self._parse_method())

    def _parse_struct(self) -> ast.StructDecl:
        loc = self._expect_keyword("struct").loc
        name = self._expect_ident().text
        self._expect_punct("{")
        fields: list[ty.StructField] = []
        while not self._accept_punct("}"):
            self._expect_keyword("var")
            fname = self._expect_ident().text
            self._expect_punct(":")
            ftype = self.parse_type()
            self._expect_punct(";")
            fields.append(ty.StructField(fname, ftype))
        decl = ast.StructDecl(name=name, loc=loc)
        decl.struct_type = ty.StructType(name, tuple(fields))
        return decl

    def _parse_global_var(self) -> ast.GlobalVarDecl:
        ghost = self._accept_keyword("ghost")
        loc = self._expect_keyword("var").loc
        name = self._expect_ident().text
        self._expect_punct(":")
        var_type = self.parse_type()
        init = None
        if self._accept_punct(":="):
            init = self.parse_expr()
        self._expect_punct(";")
        return ast.GlobalVarDecl(name, var_type, init, ghost, loc)

    def _parse_method(self) -> ast.MethodDecl:
        loc = self._peek().loc
        self._accept_keyword("method")
        is_extern = False
        if self._accept_punct("{:"):
            attr = self._expect_keyword("extern")
            assert attr.text == "extern"
            self._expect_punct("}")
            is_extern = True
        # C-style: return type then name.  `void` is a keyword type.  In
        # Dafny style (`method name(...)`) the return type is omitted and
        # defaults to void; we detect that by `name(` directly following.
        if self._peek().kind is TokenKind.IDENT and self._peek(1).is_punct("("):
            return_type: ty.Type = ty.VOID
        else:
            return_type = self.parse_type()
        name = self._expect_ident().text
        self._expect_punct("(")
        params: list[ast.Param] = []
        while not self._accept_punct(")"):
            if params:
                self._expect_punct(",")
            ptok = self._expect_ident()
            self._expect_punct(":")
            ptype = self.parse_type()
            params.append(ast.Param(ptok.text, ptype, ptok.loc))
        spec = ast.MethodSpec()
        while True:
            if self._check_keyword("requires"):
                self._advance()
                spec.requires.append(self.parse_expr())
            elif self._check_keyword("ensures"):
                self._advance()
                spec.ensures.append(self.parse_expr())
            elif self._check_keyword("modifies"):
                self._advance()
                spec.modifies.append(self.parse_expr())
            elif self._check_keyword("reads"):
                self._advance()
                spec.reads.append(self.parse_expr())
            else:
                break
        body = None
        if not self._accept_punct(";"):
            body = self._parse_block()
        return ast.MethodDecl(
            name, params, return_type, body, spec, is_extern, loc
        )

    # ------------------------------------------------------------------
    # proofs / recipes

    def _parse_proof(self) -> ast.ProofDecl:
        loc = self._expect_keyword("proof").loc
        name = self._expect_ident().text
        self._expect_punct("{")
        self._expect_keyword("refinement")
        low = self._expect_ident().text
        high = self._expect_ident().text
        self._accept_punct(";")
        items: list[ast.RecipeItem] = []
        while not self._accept_punct("}"):
            items.append(self._parse_recipe_item())
        return ast.ProofDecl(name, low, high, items, loc)

    def _parse_recipe_item(self) -> ast.RecipeItem:
        token = self._peek()
        if token.kind not in (TokenKind.IDENT, TokenKind.KEYWORD):
            raise ParseError(f"expected recipe item, found {token!s}", token.loc)
        self._advance()
        item = ast.RecipeItem(token.text, loc=token.loc)
        while True:
            arg = self._peek()
            if arg.is_punct(";"):
                self._advance()
                return item
            if arg.is_punct("}") or arg.kind is TokenKind.EOF:
                return item
            if arg.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
                if arg.text in RECIPE_DIRECTIVES:
                    return item
                self._advance()
                item.args.append(arg.text)
            elif arg.kind in (TokenKind.STRINGLIT, TokenKind.INTLIT):
                self._advance()
                item.args.append(arg.text)
            else:
                raise ParseError(
                    f"unexpected token {arg!s} in recipe item", arg.loc
                )

    # ------------------------------------------------------------------
    # types

    def parse_type(self) -> ty.Type:
        base = self._parse_type_atom()
        # Array suffixes: T[N] (possibly nested: T[N][M] parses left-to-right).
        while self._check_punct("["):
            self._advance()
            size_tok = self._peek()
            if size_tok.kind is not TokenKind.INTLIT:
                raise ParseError("array size must be an integer literal",
                                 size_tok.loc)
            self._advance()
            self._expect_punct("]")
            base = ty.ArrayType(base, int(size_tok.text, 0))
        return base

    def _parse_type_atom(self) -> ty.Type:
        token = self._peek()
        if token.kind is TokenKind.KEYWORD and token.text in ty.PRIMITIVES:
            self._advance()
            return ty.PRIMITIVES[token.text]
        if token.is_keyword("ptr"):
            self._advance()
            self._expect_punct("<")
            element = self.parse_type()
            self._close_angle()
            return ty.PtrType(element)
        if token.is_keyword("seq"):
            self._advance()
            self._expect_punct("<")
            element = self.parse_type()
            self._close_angle()
            return ty.SeqType(element)
        if token.is_keyword("set"):
            self._advance()
            self._expect_punct("<")
            element = self.parse_type()
            self._close_angle()
            return ty.SetType(element)
        if token.is_keyword("map"):
            self._advance()
            self._expect_punct("<")
            key = self.parse_type()
            self._expect_punct(",")
            value = self.parse_type()
            self._close_angle()
            return ty.MapType(key, value)
        if token.is_keyword("option"):
            self._advance()
            self._expect_punct("<")
            element = self.parse_type()
            self._close_angle()
            return ty.OptionType(element)
        if token.kind is TokenKind.IDENT:
            # A struct name; resolved to its definition later.
            self._advance()
            return ty.StructType(token.text)
        raise ParseError(f"expected a type, found {token!s}", token.loc)

    def _close_angle(self) -> None:
        """Consume ``>``, splitting ``>>`` left over from nested generics."""
        token = self._peek()
        if token.is_punct(">"):
            self._advance()
            return
        if token.is_punct(">>"):
            # Replace with a single '>' for the outer closer.
            self._tokens[self._pos] = Token(TokenKind.PUNCT, ">", token.loc)
            return
        raise ParseError(f"expected '>', found {token!s}", token.loc)

    # ------------------------------------------------------------------
    # statements

    def _parse_block(self) -> ast.Block:
        loc = self._expect_punct("{").loc
        block = ast.Block(loc=loc)
        while not self._accept_punct("}"):
            block.stmts.append(self.parse_stmt())
        return block

    def parse_stmt(self) -> ast.Stmt:
        token = self._peek()
        if token.is_punct("{"):
            return self._parse_block()
        if token.is_keyword("var") or token.is_keyword("ghost"):
            return self._parse_var_decl_stmt()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("break"):
            self._advance()
            self._expect_punct(";")
            return ast.BreakStmt(loc=token.loc)
        if token.is_keyword("continue"):
            self._advance()
            self._expect_punct(";")
            return ast.ContinueStmt(loc=token.loc)
        if token.is_keyword("return"):
            self._advance()
            value = None
            if not self._check_punct(";"):
                value = self.parse_expr()
            self._expect_punct(";")
            return ast.ReturnStmt(value, loc=token.loc)
        if token.is_keyword("assert"):
            self._advance()
            cond = self.parse_expr()
            self._expect_punct(";")
            return ast.AssertStmt(cond, loc=token.loc)
        if token.is_keyword("assume"):
            self._advance()
            cond = self.parse_expr()
            self._expect_punct(";")
            return ast.AssumeStmt(cond, loc=token.loc)
        if token.is_keyword("somehow"):
            return self._parse_somehow()
        if token.is_keyword("dealloc"):
            self._advance()
            ptr = self.parse_expr()
            self._expect_punct(";")
            return ast.DeallocStmt(ptr, loc=token.loc)
        if token.is_keyword("join"):
            self._advance()
            thread = self.parse_expr()
            self._expect_punct(";")
            return ast.JoinStmt(thread, loc=token.loc)
        if token.is_keyword("label"):
            self._advance()
            name = self._expect_ident().text
            self._expect_punct(":")
            inner = self.parse_stmt()
            return ast.LabelStmt(name, inner, loc=token.loc)
        if token.is_keyword("explicit_yield"):
            self._advance()
            return ast.ExplicitYieldBlock(self._parse_block(), loc=token.loc)
        if token.is_keyword("yield"):
            self._advance()
            self._expect_punct(";")
            return ast.YieldStmt(loc=token.loc)
        if token.is_keyword("atomic"):
            self._advance()
            return ast.AtomicBlock(self._parse_block(), loc=token.loc)
        return self._parse_assign_or_call()

    def _parse_var_decl_stmt(self) -> ast.Stmt:
        ghost = self._accept_keyword("ghost")
        loc = self._expect_keyword("var").loc
        # Support multiple declarations: var i:int32 := 0, s:Solution;
        decls: list[ast.VarDeclStmt] = []
        while True:
            name = self._expect_ident().text
            self._expect_punct(":")
            var_type = self.parse_type()
            init = None
            if self._accept_punct(":="):
                init = self._parse_rhs()
            decls.append(ast.VarDeclStmt(name, var_type, init, ghost, loc=loc))
            if self._accept_punct(";"):
                break
            self._expect_punct(",")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(list(decls), loc=loc)

    def _parse_if(self) -> ast.IfStmt:
        loc = self._expect_keyword("if").loc
        cond = self._parse_guard()
        then = self._parse_block()
        els = None
        if self._accept_keyword("else"):
            if self._check_keyword("if"):
                els = ast.Block([self._parse_if()], loc=self._peek().loc)
            else:
                els = self._parse_block()
        return ast.IfStmt(cond, then, els, loc=loc)

    def _parse_while(self) -> ast.WhileStmt:
        loc = self._expect_keyword("while").loc
        cond = self._parse_guard()
        invariants: list[ast.Expr] = []
        while self._accept_keyword("invariant"):
            invariants.append(self.parse_expr())
        body = self._parse_block()
        return ast.WhileStmt(cond, body, invariants, loc=loc)

    def _parse_guard(self) -> ast.Expr:
        """Parse an if/while guard: parenthesized or bare expression."""
        return self.parse_expr()

    def _parse_somehow(self) -> ast.SomehowStmt:
        loc = self._expect_keyword("somehow").loc
        spec = ast.SomehowSpec()
        while True:
            if self._accept_keyword("requires"):
                spec.requires.append(self.parse_expr())
            elif self._accept_keyword("modifies"):
                spec.modifies.append(self.parse_expr())
                while self._accept_punct(","):
                    spec.modifies.append(self.parse_expr())
            elif self._accept_keyword("ensures"):
                spec.ensures.append(self.parse_expr())
            else:
                break
        self._expect_punct(";")
        return ast.SomehowStmt(spec, loc=loc)

    def _parse_assign_or_call(self) -> ast.Stmt:
        loc = self._peek().loc
        first = self.parse_expr()
        if self._check_punct(";") and isinstance(first, ast.Call):
            # Bare call statement: method(args);
            self._advance()
            return ast.AssignStmt(
                [], [ast.CallRhs(first.func, first.args, loc=first.loc)],
                loc=loc,
            )
        lhss = [first]
        while self._accept_punct(","):
            lhss.append(self.parse_expr())
        tso_bypass = False
        if self._accept_punct("::="):
            tso_bypass = True
        else:
            self._expect_punct(":=")
        rhss = [self._parse_rhs()]
        while self._accept_punct(","):
            rhss.append(self._parse_rhs())
        self._expect_punct(";")
        return ast.AssignStmt(lhss, rhss, tso_bypass, loc=loc)

    def _parse_rhs(self) -> ast.Rhs:
        token = self._peek()
        if token.is_keyword("malloc"):
            self._advance()
            self._expect_punct("(")
            alloc_type = self.parse_type()
            self._expect_punct(")")
            return ast.MallocRhs(alloc_type, loc=token.loc)
        if token.is_keyword("calloc"):
            self._advance()
            self._expect_punct("(")
            alloc_type = self.parse_type()
            self._expect_punct(",")
            count = self.parse_expr()
            self._expect_punct(")")
            return ast.CallocRhs(alloc_type, count, loc=token.loc)
        if token.is_keyword("create_thread"):
            self._advance()
            method = self._expect_ident().text
            self._expect_punct("(")
            args: list[ast.Expr] = []
            while not self._accept_punct(")"):
                if args:
                    self._expect_punct(",")
                args.append(self.parse_expr())
            return ast.CreateThreadRhs(method, args, loc=token.loc)
        expr = self.parse_expr()
        if isinstance(expr, ast.Call):
            # Calls to methods are CallRhs; the resolver demotes calls to
            # pure ghost functions back to expression calls.
            return ast.CallRhs(expr.func, expr.args, loc=expr.loc)
        return ast.ExprRhs(expr, loc=expr.loc)

    # ------------------------------------------------------------------
    # expressions

    def parse_expr(self) -> ast.Expr:
        if self._check_keyword("forall") or self._check_keyword("exists"):
            return self._parse_quantifier()
        if self._check_keyword("if"):
            return self._parse_conditional()
        return self._parse_binary(0)

    def _parse_quantifier(self) -> ast.Expr:
        token = self._advance()
        boundvar = self._expect_ident().text
        self._expect_punct(":")
        boundtype = self.parse_type()
        self._expect_punct(".")
        body = self.parse_expr()
        return ast.Quantifier(token.text, boundvar, boundtype, body,
                              loc=token.loc)

    def _parse_conditional(self) -> ast.Expr:
        loc = self._expect_keyword("if").loc
        cond = self._parse_binary(0)
        self._expect_keyword("then")
        then = self.parse_expr()
        self._expect_keyword("else")
        els = self.parse_expr()
        return ast.Conditional(cond, then, els, loc=loc)

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        ops = _BINARY_LEVELS[level]
        left = self._parse_binary(level + 1)
        while True:
            token = self._peek()
            text = token.text
            matches = (
                token.kind is TokenKind.PUNCT and text in ops
            ) or (token.is_keyword("in") and "in" in ops)
            if not matches:
                return left
            # `*` at binary level could be a nondet marker misparse; the
            # unary parser already consumed operand `*`s, so a bare `*`
            # here is genuinely multiplication.
            self._advance()
            right = self._parse_binary(level + 1)
            left = ast.Binary(text, left, right, loc=token.loc)

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.is_punct("*"):
            # Either a nondeterministic value or a dereference.  If the
            # next token cannot start an expression, it is nondet.
            nxt = self._peek(1)
            if self._starts_expr(nxt):
                self._advance()
                return ast.Deref(self._parse_unary(), loc=token.loc)
            self._advance()
            return ast.Nondet(loc=token.loc)
        if token.is_punct("&"):
            self._advance()
            return ast.AddressOf(self._parse_unary(), loc=token.loc)
        if token.is_punct("-"):
            self._advance()
            return ast.Unary("-", self._parse_unary(), loc=token.loc)
        if token.is_punct("!"):
            self._advance()
            return ast.Unary("!", self._parse_unary(), loc=token.loc)
        if token.is_punct("~"):
            self._advance()
            return ast.Unary("~", self._parse_unary(), loc=token.loc)
        return self._parse_postfix()

    @staticmethod
    def _starts_expr(token: Token) -> bool:
        if token.kind in (TokenKind.IDENT, TokenKind.INTLIT):
            return True
        if token.kind is TokenKind.KEYWORD:
            return token.text in (
                "true", "false", "null", "old", "allocated",
                "allocated_array", "if",
            )
        return token.is_punct("(") or token.is_punct("&") or token.is_punct("*")

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.is_punct("."):
                self._advance()
                fieldname = self._expect_ident().text
                expr = ast.FieldAccess(expr, fieldname, loc=token.loc)
            elif token.is_punct("["):
                self._advance()
                index = self.parse_expr()
                self._expect_punct("]")
                expr = ast.Index(expr, index, loc=token.loc)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INTLIT:
            self._advance()
            return ast.IntLit(int(token.text, 0), loc=token.loc)
        if token.is_keyword("true"):
            self._advance()
            return ast.BoolLit(True, loc=token.loc)
        if token.is_keyword("false"):
            self._advance()
            return ast.BoolLit(False, loc=token.loc)
        if token.is_keyword("null"):
            self._advance()
            return ast.NullLit(loc=token.loc)
        if token.is_keyword("old"):
            self._advance()
            self._expect_punct("(")
            operand = self.parse_expr()
            self._expect_punct(")")
            return ast.Old(operand, loc=token.loc)
        if token.is_keyword("allocated"):
            self._advance()
            self._expect_punct("(")
            operand = self.parse_expr()
            self._expect_punct(")")
            return ast.Allocated(operand, loc=token.loc)
        if token.is_keyword("allocated_array"):
            self._advance()
            self._expect_punct("(")
            operand = self.parse_expr()
            self._expect_punct(")")
            return ast.AllocatedArray(operand, loc=token.loc)
        if token.kind is TokenKind.IDENT:
            self._advance()
            if token.text.startswith("$"):
                return ast.MetaVar(token.text, loc=token.loc)
            if self._check_punct("("):
                self._advance()
                args: list[ast.Expr] = []
                while not self._accept_punct(")"):
                    if args:
                        self._expect_punct(",")
                    args.append(self.parse_expr())
                return ast.Call(token.text, args, loc=token.loc)
            return ast.Var(token.text, loc=token.loc)
        if token.is_punct("("):
            self._advance()
            expr = self.parse_expr()
            self._expect_punct(")")
            return expr
        if token.is_punct("["):
            self._advance()
            elements: list[ast.Expr] = []
            while not self._accept_punct("]"):
                if elements:
                    self._expect_punct(",")
                elements.append(self.parse_expr())
            return ast.SeqLit(elements, loc=token.loc)
        if token.is_punct("{"):
            self._advance()
            elements = []
            while not self._accept_punct("}"):
                if elements:
                    self._expect_punct(",")
                elements.append(self.parse_expr())
            return ast.SetLit(elements, loc=token.loc)
        raise ParseError(f"expected expression, found {token!s}", token.loc)


def parse_program(source: str, filename: str = "<armada>") -> ast.Program:
    """Parse Armada source text into a :class:`Program`."""
    return Parser(tokenize(source, filename)).parse_program()


def parse_expression(source: str, filename: str = "<expr>") -> ast.Expr:
    """Parse a standalone expression (used for recipe predicates)."""
    parser = Parser(tokenize(source, filename))
    expr = parser.parse_expr()
    trailing = parser._peek()
    if trailing.kind is not TokenKind.EOF:
        raise ParseError(f"trailing input after expression: {trailing!s}",
                         trailing.loc)
    return expr
