"""The Armada type system (Figure 7, "Types").

Core (compilable) types are fixed-width integers, pointers, arrays, and
structs. Ghost/specification types additionally include mathematical
integers, booleans, sequences, sets, maps, and options — "any type
supported by the theorem prover" (§3.1.2).

Types are immutable and compared structurally, except for structs, which
are nominal (two structs are the same type iff they have the same name).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Type:
    """Base class for Armada types."""

    def is_core(self) -> bool:
        """Whether this type is part of core (compilable) Armada (§3.1.1)."""
        return False

    def is_integer(self) -> bool:
        return False

    def is_pointer(self) -> bool:
        return False


@dataclass(frozen=True, slots=True)
class IntType(Type):
    """A fixed-width integer type: (u)int8/16/32/64."""

    bits: int
    signed: bool

    def is_core(self) -> bool:
        return True

    def is_integer(self) -> bool:
        return True

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        if self.signed:
            return (1 << (self.bits - 1)) - 1
        return (1 << self.bits) - 1

    def wrap(self, value: int) -> int:
        """Wrap *value* into this type's range (two's complement)."""
        masked = value & ((1 << self.bits) - 1)
        if self.signed and masked >= (1 << (self.bits - 1)):
            masked -= 1 << self.bits
        return masked

    def contains(self, value: int) -> bool:
        return self.min_value <= value <= self.max_value

    def __str__(self) -> str:
        return f"{'' if self.signed else 'u'}int{self.bits}"


@dataclass(frozen=True, slots=True)
class MathIntType(Type):
    """The unbounded mathematical integer type ``int`` (ghost only)."""

    def is_integer(self) -> bool:
        return True

    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True, slots=True)
class BoolType(Type):
    """The boolean type. Compilable as a byte-sized value in core Armada."""

    def is_core(self) -> bool:
        return True

    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True, slots=True)
class VoidType(Type):
    """Return type of methods that return nothing."""

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True, slots=True)
class PtrType(Type):
    """``ptr<T>`` — may point to whole objects, struct fields, or array
    elements (§3.1.1)."""

    element: Type

    def is_core(self) -> bool:
        return self.element.is_core()

    def is_pointer(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"ptr<{self.element}>"


@dataclass(frozen=True, slots=True)
class ArrayType(Type):
    """``T[N]`` — single-dimensional array of statically known size."""

    element: Type
    size: int

    def is_core(self) -> bool:
        return self.element.is_core()

    def __str__(self) -> str:
        return f"{self.element}[{self.size}]"


@dataclass(frozen=True, slots=True)
class StructField:
    name: str
    type: Type


@dataclass(frozen=True, slots=True)
class StructType(Type):
    """A nominal struct type; arbitrary nesting with arrays is allowed."""

    name: str
    fields: tuple[StructField, ...] = field(default=())

    def is_core(self) -> bool:
        return all(f.type.is_core() for f in self.fields)

    def field_type(self, name: str) -> Type | None:
        for f in self.fields:
            if f.name == name:
                return f.type
        return None

    def field_index(self, name: str) -> int | None:
        for i, f in enumerate(self.fields):
            if f.name == name:
                return i
        return None

    def __str__(self) -> str:
        return f"struct {self.name}"

    # Nominal equality: two StructTypes are equal iff names match.  The
    # resolver guarantees one definition per name.
    def __eq__(self, other: object) -> bool:
        return isinstance(other, StructType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("struct", self.name))


@dataclass(frozen=True, slots=True)
class SeqType(Type):
    """Ghost sequence type ``seq<T>``."""

    element: Type

    def __str__(self) -> str:
        return f"seq<{self.element}>"


@dataclass(frozen=True, slots=True)
class SetType(Type):
    """Ghost finite set type ``set<T>``."""

    element: Type

    def __str__(self) -> str:
        return f"set<{self.element}>"


@dataclass(frozen=True, slots=True)
class MapType(Type):
    """Ghost finite map type ``map<K, V>``."""

    key: Type
    value: Type

    def __str__(self) -> str:
        return f"map<{self.key}, {self.value}>"


@dataclass(frozen=True, slots=True)
class OptionType(Type):
    """Ghost option type ``option<T>`` (used e.g. for lock holders)."""

    element: Type

    def __str__(self) -> str:
        return f"option<{self.element}>"


# ---------------------------------------------------------------------------
# Singletons and helpers

UINT8 = IntType(8, signed=False)
UINT16 = IntType(16, signed=False)
UINT32 = IntType(32, signed=False)
UINT64 = IntType(64, signed=False)
INT8 = IntType(8, signed=True)
INT16 = IntType(16, signed=True)
INT32 = IntType(32, signed=True)
INT64 = IntType(64, signed=True)
MATHINT = MathIntType()
BOOL = BoolType()
VOID = VoidType()

PRIMITIVES: dict[str, Type] = {
    "uint8": UINT8,
    "uint16": UINT16,
    "uint32": UINT32,
    "uint64": UINT64,
    "int8": INT8,
    "int16": INT16,
    "int32": INT32,
    "int64": INT64,
    "int": MATHINT,
    "bool": BOOL,
    "void": VOID,
}


def assignable(target: Type, source: Type) -> bool:
    """Whether a value of type *source* may be assigned to an lvalue of
    type *target*.

    Armada (like Dafny) allows any fixed-width integer to flow into the
    mathematical ``int``, and nondeterministic havoc (``*``) produces a
    value of any type, which the type checker represents by matching
    types exactly elsewhere.
    """
    if target == source:
        return True
    if isinstance(target, MathIntType) and source.is_integer():
        return True
    if isinstance(target, PtrType) and isinstance(source, PtrType):
        # null pointer literal is given type ptr<void>.
        return isinstance(source.element, VoidType) or target == source
    if isinstance(target, OptionType) and isinstance(source, OptionType):
        return isinstance(source.element, VoidType) or assignable(
            target.element, source.element
        )
    return False


def join_integer(left: Type, right: Type) -> Type | None:
    """The result type of an arithmetic operation on two integer types.

    Same-type operations keep the type; mixing a fixed-width type with
    ``int`` yields ``int``; other mixes are rejected.
    """
    if not (left.is_integer() and right.is_integer()):
        return None
    if left == right:
        return left
    if isinstance(left, MathIntType) or isinstance(right, MathIntType):
        return MATHINT
    return None
