"""AST utilities: structural equality, pretty-printing, substitution,
and free-variable computation.

Strategies compare statements across levels with :func:`expr_equal`
(structural, ignoring source locations and inferred types), and render
generated lemmas with :func:`expr_to_str`.
"""

from __future__ import annotations

from repro.lang import asts as ast
from repro.lang import types as ty


# ---------------------------------------------------------------------------
# Structural equality


def expr_equal(a: ast.Expr | None, b: ast.Expr | None) -> bool:
    """Structural equality of expressions, ignoring locations/types."""
    if a is None or b is None:
        return a is b
    if type(a) is not type(b):
        return False
    if isinstance(a, ast.IntLit):
        return a.value == b.value
    if isinstance(a, ast.BoolLit):
        return a.value == b.value
    if isinstance(a, (ast.NullLit, ast.Nondet)):
        return True
    if isinstance(a, ast.Var):
        return a.name == b.name
    if isinstance(a, ast.MetaVar):
        return a.name == b.name
    if isinstance(a, ast.Unary):
        return a.op == b.op and expr_equal(a.operand, b.operand)
    if isinstance(a, ast.Binary):
        return (
            a.op == b.op
            and expr_equal(a.left, b.left)
            and expr_equal(a.right, b.right)
        )
    if isinstance(a, ast.Conditional):
        return (
            expr_equal(a.cond, b.cond)
            and expr_equal(a.then, b.then)
            and expr_equal(a.els, b.els)
        )
    if isinstance(a, (ast.AddressOf, ast.Deref, ast.Old, ast.Allocated,
                      ast.AllocatedArray)):
        return expr_equal(a.operand, b.operand)
    if isinstance(a, ast.FieldAccess):
        return a.fieldname == b.fieldname and expr_equal(a.base, b.base)
    if isinstance(a, ast.Index):
        return expr_equal(a.base, b.base) and expr_equal(a.index, b.index)
    if isinstance(a, ast.Call):
        return (
            a.func == b.func
            and len(a.args) == len(b.args)
            and all(expr_equal(x, y) for x, y in zip(a.args, b.args))
        )
    if isinstance(a, (ast.SeqLit, ast.SetLit)):
        return len(a.elements) == len(b.elements) and all(
            expr_equal(x, y) for x, y in zip(a.elements, b.elements)
        )
    if isinstance(a, ast.Quantifier):
        return (
            a.kind == b.kind
            and a.boundvar == b.boundvar
            and a.boundtype == b.boundtype
            and expr_equal(a.body, b.body)
        )
    return False


def rhs_equal(a: ast.Rhs, b: ast.Rhs) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, ast.ExprRhs):
        return expr_equal(a.expr, b.expr)
    if isinstance(a, ast.CallRhs):
        return a.method == b.method and all(
            expr_equal(x, y) for x, y in zip(a.args, b.args)
        ) and len(a.args) == len(b.args)
    if isinstance(a, ast.MallocRhs):
        return a.alloc_type == b.alloc_type
    if isinstance(a, ast.CallocRhs):
        return a.alloc_type == b.alloc_type and expr_equal(a.count, b.count)
    if isinstance(a, ast.CreateThreadRhs):
        return a.method == b.method and all(
            expr_equal(x, y) for x, y in zip(a.args, b.args)
        ) and len(a.args) == len(b.args)
    return False


# ---------------------------------------------------------------------------
# Pretty printing


_PRECEDENCE = {
    "==>": 1, "<==": 1, "||": 2, "&&": 3,
    "==": 4, "!=": 4, "in": 4,
    "<": 5, "<=": 5, ">": 5, ">=": 5,
    "|": 6, "^": 7, "&": 8, "<<": 9, ">>": 9,
    "+": 10, "-": 10, "*": 11, "/": 11, "%": 11,
}


def expr_to_str(expr: ast.Expr | None, parent_prec: int = 0) -> str:
    """Render an expression back to Armada surface syntax."""
    if expr is None:
        return "<none>"
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.NullLit):
        return "null"
    if isinstance(expr, ast.Nondet):
        return "*"
    if isinstance(expr, (ast.Var, ast.MetaVar)):
        return expr.name
    if isinstance(expr, ast.Unary):
        return f"{expr.op}{expr_to_str(expr.operand, 12)}"
    if isinstance(expr, ast.Binary):
        prec = _PRECEDENCE.get(expr.op, 0)
        text = (
            f"{expr_to_str(expr.left, prec)} {expr.op} "
            f"{expr_to_str(expr.right, prec + 1)}"
        )
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, ast.Conditional):
        return (
            f"if {expr_to_str(expr.cond)} then {expr_to_str(expr.then)} "
            f"else {expr_to_str(expr.els)}"
        )
    if isinstance(expr, ast.AddressOf):
        return f"&{expr_to_str(expr.operand, 12)}"
    if isinstance(expr, ast.Deref):
        return f"*{expr_to_str(expr.operand, 12)}"
    if isinstance(expr, ast.FieldAccess):
        return f"{expr_to_str(expr.base, 12)}.{expr.fieldname}"
    if isinstance(expr, ast.Index):
        return f"{expr_to_str(expr.base, 12)}[{expr_to_str(expr.index)}]"
    if isinstance(expr, ast.Old):
        return f"old({expr_to_str(expr.operand)})"
    if isinstance(expr, ast.Allocated):
        return f"allocated({expr_to_str(expr.operand)})"
    if isinstance(expr, ast.AllocatedArray):
        return f"allocated_array({expr_to_str(expr.operand)})"
    if isinstance(expr, ast.Call):
        args = ", ".join(expr_to_str(a) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, ast.SeqLit):
        return "[" + ", ".join(expr_to_str(e) for e in expr.elements) + "]"
    if isinstance(expr, ast.SetLit):
        return "{" + ", ".join(expr_to_str(e) for e in expr.elements) + "}"
    if isinstance(expr, ast.Quantifier):
        return (
            f"{expr.kind} {expr.boundvar}: {expr.boundtype} . "
            f"{expr_to_str(expr.body)}"
        )
    return f"<{type(expr).__name__}>"


# ---------------------------------------------------------------------------
# Free variables and substitution


def free_vars(expr: ast.Expr, bound: frozenset[str] = frozenset()) -> set[str]:
    """Names of free program variables in *expr*."""
    if isinstance(expr, ast.Var):
        return set() if expr.name in bound or expr.name == "None" \
            else {expr.name}
    if isinstance(expr, ast.Quantifier):
        return free_vars(expr.body, bound | {expr.boundvar})
    result: set[str] = set()
    for child in ast.child_exprs(expr):
        result |= free_vars(child, bound)
    return result


def substitute(expr: ast.Expr, mapping: dict[str, ast.Expr]) -> ast.Expr:
    """Capture-avoiding substitution of variables by expressions.

    Returns a new expression; shared subtrees of unaffected nodes may be
    reused (expressions are treated as immutable after type checking).
    """
    if isinstance(expr, ast.Var):
        replacement = mapping.get(expr.name)
        return replacement if replacement is not None else expr
    if isinstance(expr, ast.Quantifier):
        inner = {k: v for k, v in mapping.items() if k != expr.boundvar}
        if not inner:
            return expr
        return ast.Quantifier(
            expr.kind, expr.boundvar, expr.boundtype,
            substitute(expr.body, inner), loc=expr.loc, type=expr.type,
        )
    children = ast.child_exprs(expr)
    if not children:
        return expr
    new_children = [substitute(c, mapping) for c in children]
    if all(n is o for n, o in zip(new_children, children)):
        return expr
    return _rebuild(expr, new_children)


def _rebuild(expr: ast.Expr, children: list[ast.Expr]) -> ast.Expr:
    common = {"loc": expr.loc, "type": expr.type}
    if isinstance(expr, ast.Unary):
        return ast.Unary(expr.op, children[0], **common)
    if isinstance(expr, ast.Binary):
        return ast.Binary(expr.op, children[0], children[1], **common)
    if isinstance(expr, ast.Conditional):
        return ast.Conditional(children[0], children[1], children[2],
                               **common)
    if isinstance(expr, ast.AddressOf):
        return ast.AddressOf(children[0], **common)
    if isinstance(expr, ast.Deref):
        return ast.Deref(children[0], **common)
    if isinstance(expr, ast.Old):
        return ast.Old(children[0], **common)
    if isinstance(expr, ast.Allocated):
        return ast.Allocated(children[0], **common)
    if isinstance(expr, ast.AllocatedArray):
        return ast.AllocatedArray(children[0], **common)
    if isinstance(expr, ast.FieldAccess):
        return ast.FieldAccess(children[0], expr.fieldname, **common)
    if isinstance(expr, ast.Index):
        return ast.Index(children[0], children[1], **common)
    if isinstance(expr, ast.Call):
        return ast.Call(expr.func, children, **common)
    if isinstance(expr, ast.SeqLit):
        return ast.SeqLit(children, **common)
    if isinstance(expr, ast.SetLit):
        return ast.SetLit(children, **common)
    raise ValueError(f"cannot rebuild {type(expr).__name__}")


def stmt_to_str(stmt: ast.Stmt, indent: int = 0) -> str:
    """Render a statement back to Armada surface syntax (one line per
    simple statement), used for proof artifacts and diagnostics."""
    pad = "  " * indent
    if isinstance(stmt, ast.Block):
        inner = "\n".join(stmt_to_str(s, indent + 1) for s in stmt.stmts)
        return f"{pad}{{\n{inner}\n{pad}}}"
    if isinstance(stmt, ast.VarDeclStmt):
        init = ""
        if stmt.init is not None:
            init = f" := {rhs_to_str(stmt.init)}"
        ghost = "ghost " if stmt.ghost else ""
        return f"{pad}{ghost}var {stmt.name}: {stmt.var_type}{init};"
    if isinstance(stmt, ast.AssignStmt):
        if not stmt.lhss:
            return f"{pad}{rhs_to_str(stmt.rhss[0])};"
        op = "::=" if stmt.tso_bypass else ":="
        lhs = ", ".join(expr_to_str(e) for e in stmt.lhss)
        rhs = ", ".join(rhs_to_str(r) for r in stmt.rhss)
        return f"{pad}{lhs} {op} {rhs};"
    if isinstance(stmt, ast.IfStmt):
        text = f"{pad}if {expr_to_str(stmt.cond)} " + stmt_to_str(
            stmt.then, indent
        ).lstrip()
        if stmt.els is not None:
            text += " else " + stmt_to_str(stmt.els, indent).lstrip()
        return text
    if isinstance(stmt, ast.WhileStmt):
        invs = "".join(
            f" invariant {expr_to_str(e)}" for e in stmt.invariants
        )
        return (
            f"{pad}while {expr_to_str(stmt.cond)}{invs} "
            + stmt_to_str(stmt.body, indent).lstrip()
        )
    if isinstance(stmt, ast.BreakStmt):
        return f"{pad}break;"
    if isinstance(stmt, ast.ContinueStmt):
        return f"{pad}continue;"
    if isinstance(stmt, ast.ReturnStmt):
        value = f" {expr_to_str(stmt.value)}" if stmt.value else ""
        return f"{pad}return{value};"
    if isinstance(stmt, ast.AssertStmt):
        return f"{pad}assert {expr_to_str(stmt.cond)};"
    if isinstance(stmt, ast.AssumeStmt):
        return f"{pad}assume {expr_to_str(stmt.cond)};"
    if isinstance(stmt, ast.SomehowStmt):
        parts = ["somehow"]
        parts += [f"requires {expr_to_str(e)}" for e in stmt.spec.requires]
        parts += [f"modifies {expr_to_str(e)}" for e in stmt.spec.modifies]
        parts += [f"ensures {expr_to_str(e)}" for e in stmt.spec.ensures]
        return pad + " ".join(parts) + ";"
    if isinstance(stmt, ast.DeallocStmt):
        return f"{pad}dealloc {expr_to_str(stmt.ptr)};"
    if isinstance(stmt, ast.JoinStmt):
        return f"{pad}join {expr_to_str(stmt.thread)};"
    if isinstance(stmt, ast.LabelStmt):
        return f"{pad}label {stmt.label}: " + stmt_to_str(
            stmt.stmt, indent
        ).lstrip()
    if isinstance(stmt, ast.YieldStmt):
        return f"{pad}yield;"
    if isinstance(stmt, ast.ExplicitYieldBlock):
        return f"{pad}explicit_yield " + stmt_to_str(stmt.body,
                                                     indent).lstrip()
    if isinstance(stmt, ast.AtomicBlock):
        return f"{pad}atomic " + stmt_to_str(stmt.body, indent).lstrip()
    return f"{pad}<{type(stmt).__name__}>"


def rhs_to_str(rhs: ast.Rhs) -> str:
    if isinstance(rhs, ast.ExprRhs):
        return expr_to_str(rhs.expr)
    if isinstance(rhs, ast.CallRhs):
        return f"{rhs.method}({', '.join(expr_to_str(a) for a in rhs.args)})"
    if isinstance(rhs, ast.MallocRhs):
        return f"malloc({rhs.alloc_type})"
    if isinstance(rhs, ast.CallocRhs):
        return f"calloc({rhs.alloc_type}, {expr_to_str(rhs.count)})"
    if isinstance(rhs, ast.CreateThreadRhs):
        args = ", ".join(expr_to_str(a) for a in rhs.args)
        return f"create_thread {rhs.method}({args})"
    return f"<{type(rhs).__name__}>"
