"""Hand-written lexer for the Armada language.

The surface syntax follows Figure 7 of the paper: C-like operators plus
Armada-specific forms (``::=`` for TSO-bypassing assignment, ``$me`` /
``$sb_empty`` meta variables, ``==>`` implication in specifications).
Comments use ``//`` and ``/* ... */``.
"""

from __future__ import annotations

from repro.errors import LexError, SourceLoc
from repro.lang.tokens import KEYWORDS, PUNCTUATIONS, Token, TokenKind


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in ("_", "'")


class Lexer:
    """Converts Armada source text into a token stream."""

    def __init__(self, source: str, filename: str = "<armada>") -> None:
        self._source = source
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokenize(self) -> list[Token]:
        """Lex the whole input, returning tokens terminated by an EOF token."""
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    # ------------------------------------------------------------------
    # internals

    def _loc(self) -> SourceLoc:
        return SourceLoc(self._line, self._col, self._filename)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self._source):
            return ""
        return self._source[index]

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._source):
                return
            if self._source[self._pos] == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
            self._pos += 1

    def _skip_trivia(self) -> None:
        while self._pos < len(self._source):
            ch = self._peek()
            if ch in (" ", "\t", "\r", "\n"):
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                loc = self._loc()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self._pos >= len(self._source):
                        raise LexError("unterminated block comment", loc)
                    self._advance()
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        loc = self._loc()
        if self._pos >= len(self._source):
            return Token(TokenKind.EOF, "", loc)

        ch = self._peek()
        if _is_ident_start(ch):
            return self._lex_ident(loc)
        if ch.isdigit():
            return self._lex_number(loc)
        if ch == '"':
            return self._lex_string(loc)
        if ch == "$":
            # Meta variables: $me, $sb_empty.
            self._advance()
            if not _is_ident_start(self._peek()):
                return Token(TokenKind.PUNCT, "$", loc)
            start = self._pos
            while _is_ident_char(self._peek()):
                self._advance()
            return Token(TokenKind.IDENT, "$" + self._source[start : self._pos], loc)
        for punct in PUNCTUATIONS:
            if self._source.startswith(punct, self._pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, loc)
        raise LexError(f"unexpected character {ch!r}", loc)

    def _lex_ident(self, loc: SourceLoc) -> Token:
        start = self._pos
        while _is_ident_char(self._peek()):
            self._advance()
        text = self._source[start : self._pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, loc)

    def _lex_number(self, loc: SourceLoc) -> Token:
        start = self._pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            if not self._is_hex(self._peek()):
                raise LexError("malformed hex literal", loc)
            while self._is_hex(self._peek()):
                self._advance()
        else:
            while self._peek().isdigit():
                self._advance()
        if _is_ident_start(self._peek()):
            raise LexError("identifier immediately after number", self._loc())
        return Token(TokenKind.INTLIT, self._source[start : self._pos], loc)

    @staticmethod
    def _is_hex(ch: str) -> bool:
        return bool(ch) and (ch.isdigit() or ch.lower() in "abcdef")

    def _lex_string(self, loc: SourceLoc) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            ch = self._peek()
            if not ch:
                raise LexError("unterminated string literal", loc)
            if ch == '"':
                self._advance()
                return Token(TokenKind.STRINGLIT, "".join(chars), loc)
            if ch == "\\":
                self._advance()
                escape = self._peek()
                mapping = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
                if escape not in mapping:
                    raise LexError(f"bad escape \\{escape}", self._loc())
                chars.append(mapping[escape])
                self._advance()
            else:
                chars.append(ch)
                self._advance()


def tokenize(source: str, filename: str = "<armada>") -> list[Token]:
    """Convenience wrapper: lex *source* into a token list."""
    return Lexer(source, filename).tokenize()
