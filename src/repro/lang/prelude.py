"""The standard prelude of external methods available to every level.

§3.1.4: "Armada supports declaring and calling external methods. An
external method models a runtime, library, or operating-system function;
or a hardware instruction the compiler supports, like compare-and-swap."

Every level implicitly imports these declarations.  The state-machine
translation gives each of them concurrency-aware semantics directly
(they are the analogue of the developer-supplied "body" models of the
paper); the C backend emits calls to a small runtime shim.

A level may re-declare any of these names to override the model.
"""

from __future__ import annotations

from repro.lang import asts as ast
from repro.lang import types as ty

_U64 = ty.UINT64
_U32 = ty.UINT32


def _extern(name: str, params: list[tuple[str, ty.Type]],
            return_type: ty.Type = ty.VOID) -> ast.MethodDecl:
    return ast.MethodDecl(
        name=name,
        params=[ast.Param(n, t) for n, t in params],
        return_type=return_type,
        body=None,
        is_extern=True,
    )


def prelude_methods() -> list[ast.MethodDecl]:
    """Fresh AST declarations for the built-in external methods."""
    return [
        # Mutual exclusion built on hardware primitives.  The mutex word
        # holds the owning thread id (0 = free); the state machine models
        # lock as an atomic test-and-set that blocks until free, matching
        # a futex-style OS lock.
        _extern("initialize_mutex", [("m", ty.PtrType(_U64))]),
        _extern("lock", [("m", ty.PtrType(_U64))]),
        _extern("unlock", [("m", ty.PtrType(_U64))]),
        # Hardware atomics (x86): lock cmpxchg, lock xchg, lock xadd, mfence.
        # Atomic read-modify-writes drain the store buffer, per x86-TSO.
        _extern(
            "compare_and_swap",
            [("p", ty.PtrType(_U64)), ("expected", _U64), ("desired", _U64)],
            ty.BOOL,
        ),
        _extern(
            "atomic_exchange",
            [("p", ty.PtrType(_U64)), ("value", _U64)],
            _U64,
        ),
        _extern(
            "atomic_fetch_add",
            [("p", ty.PtrType(_U64)), ("delta", _U64)],
            _U64,
        ),
        _extern("fence", []),
        # Output: appends to the externally visible console log (the ghost
        # `$log` sequence), the state the default refinement relation R
        # compares.
        _extern("print_uint64", [("n", _U64)]),
        _extern("print_uint32", [("n", _U32)]),
    ]


#: Names with special-cased step semantics in the state machine.
PRELUDE_NAMES = frozenset(m.name for m in prelude_methods())
