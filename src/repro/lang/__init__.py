"""The Armada language front end: lexer, parser, types, resolver, checker."""

from repro.lang.frontend import (  # noqa: F401
    CheckedProgram,
    check_core_level,
    check_level,
    check_program,
)
from repro.lang.parser import parse_expression, parse_program  # noqa: F401
