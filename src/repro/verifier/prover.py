"""The bounded prover: this reproduction's stand-in for Dafny/Z3.

Decides validity of quantifier-free formulas over typed free variables
by *small-model enumeration plus corner-and-random sampling*:

* boolean variables are enumerated exhaustively;
* fixed-width integer variables are checked exhaustively at a reduced
  width (every value of a few low bits) and additionally probed at
  corner values (0, ±1, min, max, mid) and deterministic pseudo-random
  full-width samples;
* mathematical integers are probed over a symmetric window plus large
  magnitudes.

A counterexample refutes validity *soundly* (the formula really is
falsifiable).  The absence of a counterexample yields a *bounded*
verification verdict — the documented substitution for the paper's
SMT-backed unbounded proofs (see DESIGN.md).  The proof artifacts record
which verdict each lemma received.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.lang import asts as ast
from repro.lang import types as ty
from repro.obs import OBS
from repro.verifier.interp import UNDEF, interpret, is_undef

PROVED = "proved"
REFUTED = "refuted"
UNKNOWN = "unknown"
#: The obligation ran out of wall-clock budget (per-obligation deadline
#: or whole-chain deadline).  Like UNKNOWN it is *inconclusive*: the
#: engine must neither treat it as a refutation nor hang on it.
TIMEOUT = "timeout"

#: Statuses that settle the obligation (safe to cache/journal).  A
#: TIMEOUT or UNKNOWN verdict is environment-dependent — a bigger
#: deadline or a healthier farm may settle it — so it is never cached.
SETTLED = (PROVED, REFUTED)


@dataclass
class Verdict:
    """Outcome of a proof attempt."""

    status: str
    counterexample: dict[str, Any] | None = None
    assignments_checked: int = 0

    @property
    def ok(self) -> bool:
        return self.status == PROVED

    @property
    def inconclusive(self) -> bool:
        """Neither proved nor refuted: the obligation timed out or was
        abandoned after retry exhaustion.  Propagates through the
        engine as an inconclusive proof, never as a refutation."""
        return self.status not in SETTLED

    def __bool__(self) -> bool:
        return self.ok


@dataclass
class ProverConfig:
    """Sampling budget of the bounded prover."""

    exhaustive_bits: int = 4
    random_samples: int = 32
    math_window: int = 9
    max_assignments: int = 250_000

    def fingerprint(self) -> str:
        """Stable identity of this budget, part of every proof-cache
        key: a different sampling budget may flip a bounded verdict, so
        cached verdicts must not survive a budget change."""
        return (
            f"prover-config/1:{self.exhaustive_bits}:"
            f"{self.random_samples}:{self.math_window}:"
            f"{self.max_assignments}"
        )


def _corner_values(t: ty.IntType) -> list[int]:
    corners = {0, 1, t.min_value, t.max_value, t.max_value // 2}
    if t.signed:
        corners |= {-1, t.min_value + 1}
    else:
        corners |= {t.max_value - 1}
    return sorted(corners)


def _pseudo_random(seed: str, t: ty.IntType, count: int) -> list[int]:
    values = []
    for i in range(count):
        digest = hashlib.sha256(f"{seed}:{i}".encode()).digest()
        raw = int.from_bytes(digest[:8], "big")
        values.append(t.wrap(raw))
    return values


def variable_domain(
    name: str, t: ty.Type, config: ProverConfig
) -> list[Any]:
    """The sampled domain of one free variable."""
    if isinstance(t, ty.BoolType):
        return [False, True]
    if isinstance(t, ty.IntType):
        small = list(range(0, min(1 << config.exhaustive_bits,
                                  t.max_value + 1)))
        if t.signed:
            low = max(t.min_value, -(1 << (config.exhaustive_bits - 1)))
            small = list(range(low, 1 << (config.exhaustive_bits - 1)))
        domain = set(small) | set(_corner_values(t))
        domain |= set(_pseudo_random(name, t, config.random_samples))
        return sorted(domain)
    if isinstance(t, ty.MathIntType):
        window = list(range(-config.math_window, config.math_window + 1))
        return window + [10**6, -(10**6), 2**40]
    if isinstance(t, ty.OptionType):
        from repro.machine.values import NONE_OPTION, some

        inner = variable_domain(name, t.element, config) \
            if not isinstance(t.element, ty.VoidType) else [0]
        return [NONE_OPTION] + [some(v) for v in inner[:4]]
    if isinstance(t, ty.SeqType):
        inner = variable_domain(name, t.element, config)[:3]
        return [(), tuple(inner[:1]), tuple(inner[:2])]
    # Pointers, structs, ...: a single opaque token; formulas over these
    # are handled structurally by the strategies, not by sampling.
    return [("$opaque", name)]


class Prover:
    """Bounded validity checker for quantifier-free Armada formulas."""

    def __init__(self, config: ProverConfig | None = None) -> None:
        self.config = config or ProverConfig()

    def fingerprint(self) -> str:
        return self.config.fingerprint()

    def prove_valid(
        self,
        goal: ast.Expr,
        variables: dict[str, ty.Type],
        assumptions: list[ast.Expr] | None = None,
        extra_env: dict[str, Any] | None = None,
    ) -> Verdict:
        """Check ``assumptions ==> goal`` for all sampled assignments.

        UNDEF in an assumption discharges the assignment (the hypothesis
        is not meaningful there); UNDEF in the goal refutes it (a proof
        obligation must be well-defined wherever its hypotheses hold),
        matching Dafny's well-definedness checking.
        """
        if not OBS.enabled:
            return self._prove_valid(goal, variables, assumptions,
                                     extra_env)
        with OBS.span("prove_valid", "phase"):
            verdict = self._prove_valid(goal, variables, assumptions,
                                        extra_env)
            OBS.count("prover.calls")
            OBS.count("prover.assignments_checked",
                      verdict.assignments_checked)
            return verdict

    def _prove_valid(
        self,
        goal: ast.Expr,
        variables: dict[str, ty.Type],
        assumptions: list[ast.Expr] | None = None,
        extra_env: dict[str, Any] | None = None,
    ) -> Verdict:
        assumptions = assumptions or []
        names = sorted(variables)
        domains = [
            variable_domain(n, variables[n], self.config) for n in names
        ]
        total = 1
        for d in domains:
            total *= max(1, len(d))
        if total > self.config.max_assignments:
            domains = self._shrink(domains)
        checked = 0
        for combo in itertools.product(*domains) if names else [()]:
            env: dict[Any, Any] = dict(zip(names, combo))
            if extra_env:
                env.update(extra_env)
            checked += 1
            if checked > self.config.max_assignments:
                break
            skip = False
            for assumption in assumptions:
                value = interpret(assumption, env)
                if is_undef(value) or not value:
                    skip = True
                    break
            if skip:
                continue
            result = interpret(goal, env)
            if is_undef(result) or not result:
                witness = {n: env[n] for n in names}
                return Verdict(REFUTED, witness, checked)
        return Verdict(PROVED, None, checked)

    def equivalent(
        self,
        left: ast.Expr,
        right: ast.Expr,
        variables: dict[str, ty.Type],
    ) -> Verdict:
        """Check that two expressions agree on all sampled assignments
        (including agreement on where they are undefined)."""
        if not OBS.enabled:
            return self._equivalent(left, right, variables)
        with OBS.span("equivalent", "phase"):
            verdict = self._equivalent(left, right, variables)
            OBS.count("prover.calls")
            OBS.count("prover.assignments_checked",
                      verdict.assignments_checked)
            return verdict

    def _equivalent(
        self,
        left: ast.Expr,
        right: ast.Expr,
        variables: dict[str, ty.Type],
    ) -> Verdict:
        names = sorted(variables)
        domains = [
            variable_domain(n, variables[n], self.config) for n in names
        ]
        checked = 0
        for combo in itertools.product(*domains) if names else [()]:
            env = dict(zip(names, combo))
            checked += 1
            if checked > self.config.max_assignments:
                break
            lv = interpret(left, env)
            rv = interpret(right, env)
            if is_undef(lv) and is_undef(rv):
                continue
            if is_undef(lv) or is_undef(rv) or lv != rv:
                return Verdict(REFUTED, dict(zip(names, combo)), checked)
        return Verdict(PROVED, None, checked)

    def _shrink(self, domains: list[list[Any]]) -> list[list[Any]]:
        """Reduce the product size to fit the assignment budget by
        trimming each domain proportionally (corners are kept first)."""
        budget = self.config.max_assignments
        shrunk = [list(d) for d in domains]
        passes = 0
        try:
            while True:
                total = 1
                for d in shrunk:
                    total *= max(1, len(d))
                if total <= budget:
                    return shrunk
                largest = max(
                    range(len(shrunk)), key=lambda i: len(shrunk[i])
                )
                if len(shrunk[largest]) <= 2:
                    return shrunk
                passes += 1
                shrunk[largest] = shrunk[largest][
                    : max(2, len(shrunk[largest]) // 2)
                ]
        finally:
            if passes and OBS.enabled:
                OBS.count("prover.domain_shrink_passes", passes)


#: Module-level default prover shared by strategies.
DEFAULT_PROVER = Prover()
