"""The verification backend: formula interpretation and the bounded
prover that substitutes for Dafny/Z3 in this reproduction."""

from repro.verifier.interp import UNDEF, interpret, is_undef  # noqa: F401
from repro.verifier.prover import (  # noqa: F401
    DEFAULT_PROVER,
    PROVED,
    Prover,
    ProverConfig,
    REFUTED,
    SETTLED,
    TIMEOUT,
    UNKNOWN,
    Verdict,
)
