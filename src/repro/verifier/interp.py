"""Pure interpretation of Armada expressions over variable environments.

Unlike :mod:`repro.machine.evaluator` (which reads program states), this
interpreter evaluates *formulas*: expressions whose free variables are
bound by an explicit environment.  It is the evaluation core of the
bounded prover (:mod:`repro.verifier.prover`).

Undefined behaviour (division by zero, signed overflow, bad shifts) is
represented by the :data:`UNDEF` sentinel, which propagates through
operators — mirroring how Dafny verification conditions make such
operations partial.
"""

from __future__ import annotations

from typing import Any

from repro.lang import asts as ast
from repro.lang import types as ty
from repro.machine.evaluator import uninterpreted_value


class _Undef:
    """Sentinel for 'this evaluation invoked undefined behaviour'."""

    _instance: "_Undef | None" = None

    def __new__(cls) -> "_Undef":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNDEF"


UNDEF = _Undef()


def is_undef(value: Any) -> bool:
    return value is UNDEF


def interpret(expr: ast.Expr, env: dict[str, Any]) -> Any:
    """Evaluate *expr* with free variables bound by *env*.

    Returns :data:`UNDEF` when the evaluation is undefined.  Unknown
    variables raise ``KeyError`` (caller error, not UB).
    """
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.BoolLit):
        return expr.value
    if isinstance(expr, ast.Var):
        if expr.name in env:
            return env[expr.name]
        if expr.name == "None":
            from repro.machine.values import NONE_OPTION

            return NONE_OPTION
        raise KeyError(f"unbound variable {expr.name}")
    if isinstance(expr, ast.MetaVar):
        if expr.name in env:
            return env[expr.name]
        raise KeyError(f"unbound meta variable {expr.name}")
    if isinstance(expr, ast.Old):
        inner = env.get("$old")
        if inner is None:
            raise KeyError("old() without an $old environment")
        return interpret(expr.operand, {**env, **inner})
    if isinstance(expr, ast.Nondet):
        if ("$nondet", id(expr)) in env:
            return env[("$nondet", id(expr))]
        raise KeyError("unbound nondet value")
    if isinstance(expr, ast.Unary):
        return _unary(expr, interpret(expr.operand, env))
    if isinstance(expr, ast.Binary):
        return _binary(expr, env)
    if isinstance(expr, ast.Conditional):
        cond = interpret(expr.cond, env)
        if is_undef(cond):
            return UNDEF
        return interpret(expr.then if cond else expr.els, env)
    if isinstance(expr, ast.Call):
        return _call(expr, env)
    if isinstance(expr, ast.SeqLit):
        values = [interpret(e, env) for e in expr.elements]
        if any(is_undef(v) for v in values):
            return UNDEF
        return tuple(values)
    if isinstance(expr, ast.SetLit):
        values = [interpret(e, env) for e in expr.elements]
        if any(is_undef(v) for v in values):
            return UNDEF
        return frozenset(values)
    if isinstance(expr, ast.Index):
        base = interpret(expr.base, env)
        index = interpret(expr.index, env)
        if is_undef(base) or is_undef(index):
            return UNDEF
        if isinstance(base, tuple):
            if not 0 <= index < len(base):
                return UNDEF
            return base[index]
        return UNDEF
    if isinstance(expr, ast.Quantifier):
        return _quantifier(expr, env)
    raise KeyError(f"cannot interpret {type(expr).__name__} as a formula")


def _unary(expr: ast.Unary, value: Any) -> Any:
    if is_undef(value):
        return UNDEF
    if expr.op == "!":
        return not value
    if expr.op == "-":
        return _fit(expr.type, -value)
    if expr.op == "~":
        t = expr.type
        if not isinstance(t, ty.IntType):
            return UNDEF
        return t.wrap(~value)
    return UNDEF


def _fit(t: ty.Type | None, value: int) -> Any:
    if isinstance(t, ty.IntType):
        if t.signed:
            return value if t.contains(value) else UNDEF
        return t.wrap(value)
    return value


def _binary(expr: ast.Binary, env: dict[str, Any]) -> Any:
    op = expr.op
    left = interpret(expr.left, env)
    # Short-circuit operators tolerate UNDEF on the unevaluated side,
    # matching Dafny's left-to-right partial-expression semantics.
    if op == "&&":
        if is_undef(left):
            return UNDEF
        if not left:
            return False
        return interpret(expr.right, env)
    if op == "||":
        if is_undef(left):
            return UNDEF
        if left:
            return True
        return interpret(expr.right, env)
    if op == "==>":
        if is_undef(left):
            return UNDEF
        if not left:
            return True
        return interpret(expr.right, env)
    right = interpret(expr.right, env)
    if is_undef(left) or is_undef(right):
        return UNDEF
    if op == "<==":
        return bool(left) or not right
    if op == "in":
        return left in right
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if op in ("<", "<=", ">", ">="):
        return {"<": left < right, "<=": left <= right,
                ">": left > right, ">=": left >= right}[op]
    if op == "+" and isinstance(left, tuple):
        return left + right
    if op in ("+", "-", "*"):
        raw = {"+": left + right, "-": left - right, "*": left * right}[op]
        return _fit(expr.type, raw)
    if op in ("/", "%"):
        if right == 0:
            return UNDEF
        quotient = abs(left) // abs(right)
        if (left < 0) != (right < 0):
            quotient = -quotient
        remainder = left - quotient * right
        return _fit(expr.type, quotient if op == "/" else remainder)
    if op in ("<<", ">>"):
        t = expr.type
        if not isinstance(t, ty.IntType) or not 0 <= right < t.bits:
            return UNDEF
        return t.wrap(left << right) if op == "<<" else left >> right
    if op in ("&", "|", "^"):
        t = expr.type
        if not isinstance(t, ty.IntType):
            return UNDEF
        raw = {"&": left & right, "|": left | right, "^": left ^ right}[op]
        return t.wrap(raw)
    return UNDEF


def _call(expr: ast.Call, env: dict[str, Any]) -> Any:
    args = [interpret(a, env) for a in expr.args]
    if any(is_undef(a) for a in args):
        return UNDEF
    if expr.func == "len":
        try:
            return len(args[0])
        except TypeError:
            return UNDEF
    if expr.func == "abs":
        return abs(args[0])
    if expr.func == "Some":
        from repro.machine.values import some

        return some(args[0])
    if expr.func in ("first", "last"):
        if not isinstance(args[0], tuple) or not args[0]:
            return UNDEF
        return args[0][0] if expr.func == "first" else args[0][-1]
    if expr.func in ("drop", "take"):
        seq, count = args
        if not isinstance(seq, tuple) or not isinstance(count, int) \
                or not 0 <= count <= len(seq):
            return UNDEF
        return seq[count:] if expr.func == "drop" else seq[:count]
    key = ("$fn", expr.func)
    if key in env:
        return env[key](*args)
    result_type = expr.type if expr.type is not None else ty.BOOL
    return uninterpreted_value(expr.func, tuple(args), result_type)


_QUANT_BOUND = 12


def _quantifier(expr: ast.Quantifier, env: dict[str, Any]) -> Any:
    domain: list[Any]
    if isinstance(expr.boundtype, ty.BoolType):
        domain = [False, True]
    elif isinstance(expr.boundtype, ty.IntType):
        lo = max(expr.boundtype.min_value, -_QUANT_BOUND)
        hi = min(expr.boundtype.max_value, _QUANT_BOUND)
        domain = list(range(lo, hi + 1))
    else:
        domain = list(range(-_QUANT_BOUND, _QUANT_BOUND + 1))
    results = []
    for value in domain:
        result = interpret(expr.body, {**env, expr.boundvar: value})
        if is_undef(result):
            return UNDEF
        results.append(bool(result))
    return all(results) if expr.kind == "forall" else any(results)
