"""The per-model litmus corpus: SB, MP, LB, IRIW (and fence/coherence
controls) with expected allowed/forbidden outcome tables.

Each :class:`LitmusTest` is a self-contained Armada level whose threads
record their observations in global registers (``::=`` so the final
reads after ``join`` are unambiguous) and print them from ``main`` once
every thread has joined.  ``weak_outcome`` is the print log that
witnesses the test's characteristic reordering; ``allowed`` maps each
memory-model name to whether that log must be reachable.

The table encodes the classical hierarchy:

========  ====  =====  ====
test      sc    tso    ra
========  ====  =====  ====
SB        no    yes    yes
SB+fence  no    no     no
MP        no    no     no
LB        no    no     no
IRIW      no    no     yes
CoRR      no    no     no
========  ====  =====  ====

SB's store-load reordering is the only weakness x86-TSO admits; RA
additionally gives up multi-copy atomicity (IRIW) but, because every
store is a release and every read an acquire, still forbids the MP and
LB shapes.  CoRR (read coherence) holds everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memmodel.models import MODELS


@dataclass(frozen=True)
class LitmusTest:
    """One litmus shape with its per-model expectation."""

    name: str
    description: str
    source: str  # body of a level (globals + methods)
    #: The characteristic weak print log.
    weak_outcome: tuple
    #: model name -> whether ``weak_outcome`` must be observable.
    allowed: dict[str, bool] = field(default_factory=dict)
    #: A control log that must be reachable under every model.
    strong_outcome: tuple | None = None
    max_states: int = 2_000_000


def _print_regs(*names: str) -> str:
    return " ".join(
        f"t := {name}; print_uint32(t);" for name in names
    )


SB = LitmusTest(
    name="SB",
    description="store buffering: both threads read the other's "
    "variable as 0 after writing their own",
    source=(
        "var x: uint32; var y: uint32; "
        "var r1: uint32; var r2: uint32; "
        "void t1() { x := 1; r1 ::= y; } "
        "void main() { var h: uint64 := 0; var t: uint32 := 0; "
        "h := create_thread t1(); y := 1; r2 ::= x; "
        "join h; fence(); " + _print_regs("r1", "r2") + " }"
    ),
    weak_outcome=(0, 0),
    allowed={"sc": False, "tso": True, "ra": True},
    strong_outcome=(1, 1),
)

SB_FENCE = LitmusTest(
    name="SB+fence",
    description="store buffering with fences between the store and "
    "the load: the weak outcome disappears everywhere",
    source=(
        "var x: uint32; var y: uint32; "
        "var r1: uint32; var r2: uint32; "
        "void t1() { x := 1; fence(); r1 ::= y; } "
        "void main() { var h: uint64 := 0; var t: uint32 := 0; "
        "h := create_thread t1(); y := 1; fence(); r2 ::= x; "
        "join h; fence(); " + _print_regs("r1", "r2") + " }"
    ),
    weak_outcome=(0, 0),
    allowed={"sc": False, "tso": False, "ra": False},
    strong_outcome=(1, 1),
)

MP = LitmusTest(
    name="MP",
    description="message passing: flag observed set but data still "
    "stale (forbidden under TSO's FIFO buffers and RA's "
    "release/acquire publication)",
    source=(
        "var data: uint32; var flag: uint32; "
        "var rf: uint32; var rd: uint32; "
        "void writer() { data := 42; flag := 1; } "
        "void main() { var h: uint64 := 0; var t: uint32 := 0; "
        "h := create_thread writer(); rf := flag; rd := data; "
        "join h; fence(); " + _print_regs("rf", "rd") + " }"
    ),
    weak_outcome=(1, 0),
    allowed={"sc": False, "tso": False, "ra": False},
    strong_outcome=(1, 42),
)

LB = LitmusTest(
    name="LB",
    description="load buffering: each thread reads the value the "
    "other writes afterwards (requires load-store reordering, absent "
    "from SC, TSO and RA alike)",
    source=(
        "var x: uint32; var y: uint32; "
        "var r1: uint32; var r2: uint32; "
        "void t1() { r1 ::= x; y := 1; } "
        "void main() { var h: uint64 := 0; var t: uint32 := 0; "
        "h := create_thread t1(); r2 ::= y; x := 1; "
        "join h; fence(); " + _print_regs("r1", "r2") + " }"
    ),
    weak_outcome=(1, 1),
    allowed={"sc": False, "tso": False, "ra": False},
    strong_outcome=(0, 0),
)

IRIW = LitmusTest(
    name="IRIW",
    description="independent reads of independent writes: two readers "
    "disagree on the order of two independent stores (needs the "
    "non-multi-copy-atomicity only RA provides)",
    source=(
        "var x: uint32; var y: uint32; "
        "var r1: uint32; var r2: uint32; "
        "var r3: uint32; var r4: uint32; "
        "void wx() { x ::= 1; } "
        "void wy() { y ::= 1; } "
        "void reader1() { r1 ::= x; r2 ::= y; } "
        "void main() { "
        "var a: uint64 := 0; var b: uint64 := 0; var c: uint64 := 0; "
        "var t: uint32 := 0; "
        "a := create_thread wx(); b := create_thread wy(); "
        "c := create_thread reader1(); "
        "r3 ::= y; r4 ::= x; "
        "join a; join b; join c; "
        + _print_regs("r1", "r2", "r3", "r4") + " }"
    ),
    weak_outcome=(1, 0, 1, 0),
    allowed={"sc": False, "tso": False, "ra": True},
    strong_outcome=(1, 1, 1, 1),
    max_states=8_000_000,
)

CORR = LitmusTest(
    name="CoRR",
    description="coherence of read-read: a thread's two reads of one "
    "location never observe the writes out of modification order "
    "(holds under every shipped model)",
    source=(
        "var x: uint32; "
        "var r1: uint32; var r2: uint32; "
        "void writer() { x := 1; x := 2; } "
        "void main() { var h: uint64 := 0; var t: uint32 := 0; "
        "h := create_thread writer(); r1 ::= x; r2 ::= x; "
        "join h; fence(); " + _print_regs("r1", "r2") + " }"
    ),
    weak_outcome=(2, 1),
    allowed={"sc": False, "tso": False, "ra": False},
    strong_outcome=(2, 2),
)


#: The shipped corpus, in presentation order.
CORPUS: tuple[LitmusTest, ...] = (SB, SB_FENCE, MP, LB, IRIW, CORR)

TESTS: dict[str, LitmusTest] = {t.name: t for t in CORPUS}


def run_litmus(
    test: LitmusTest | str, model: str, max_states: int | None = None,
    compiled: bool = True,
) -> set[tuple]:
    """Explore *test* under *model* and return its normal-termination
    print logs."""
    from repro.explore.explorer import Explorer
    from repro.lang.frontend import check_level
    from repro.machine.translator import translate_level

    if isinstance(test, str):
        test = TESTS[test]
    ctx = check_level("level L { " + test.source + " }")
    machine = translate_level(ctx, memory_model=model)
    result = Explorer(
        machine, max_states=max_states or test.max_states,
        compiled=compiled,
    ).explore()
    if result.hit_state_budget:
        raise RuntimeError(
            f"litmus {test.name} under {model} exceeded the state budget"
        )
    return {
        tuple(log) for kind, log in result.final_outcomes
        if kind == "normal"
    }


def check_matrix(
    models: tuple[str, ...] | None = None,
    tests: tuple[str, ...] | None = None,
) -> list[dict]:
    """Run the corpus across *models* and compare against the expected
    table.  Returns one row per (test, model) with the observed verdict
    and whether it matches."""
    rows = []
    for test in CORPUS:
        if tests is not None and test.name not in tests:
            continue
        for model in models or tuple(sorted(MODELS)):
            logs = run_litmus(test, model)
            observed = test.weak_outcome in logs
            expected = test.allowed[model]
            strong_ok = (
                test.strong_outcome is None
                or test.strong_outcome in logs
            )
            rows.append({
                "test": test.name,
                "model": model,
                "weak_expected": expected,
                "weak_observed": observed,
                "strong_reachable": strong_ok,
                "ok": observed == expected and strong_ok,
            })
    return rows
