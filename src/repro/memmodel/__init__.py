"""Pluggable memory models (SC / x86-TSO / C11-RA).

The semantics layer was originally hard-wired to x86-TSO: the store
buffer lived directly on :class:`~repro.machine.state.ThreadState` and
buffering/drain/fence rules were baked into ``machine/steps.py``.  This
package factors those decisions into a :class:`MemoryModel` interface —
per-thread buffer state, visible-value resolution, write/fence/RMW
semantics, and environment (drain) steps — so the explorer, analyzer,
proof engine, farm and service layers all run against a selectable
model.  Every existing case study and litmus test thereby becomes N
scenarios.

Three implementations ship:

* :class:`~repro.memmodel.models.TSOModel` — the original store-buffer
  semantics, extracted **verbatim** so all outcomes stay bit-identical
  (see DESIGN.md for the soundness argument).
* :class:`~repro.memmodel.models.SCModel` — sequential consistency: no
  buffering, every write hits shared memory immediately, environment
  steps never exist.
* :class:`~repro.memmodel.models.RAModel` — a C11-style release/acquire
  model with per-location timestamped write histories and per-thread
  views, making non-multi-copy-atomic behaviours (IRIW) observable.

``litmus`` holds the per-model litmus corpus (SB, MP, LB, IRIW) with
the expected allowed/forbidden outcome tables.
"""

from __future__ import annotations

from repro.memmodel.models import (
    DEFAULT_MODEL,
    MODELS,
    MemoryModel,
    RAModel,
    SCModel,
    TSOModel,
    get_model,
)

__all__ = [
    "DEFAULT_MODEL",
    "MODELS",
    "MemoryModel",
    "RAModel",
    "SCModel",
    "TSOModel",
    "get_model",
]
