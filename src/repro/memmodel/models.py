"""The :class:`MemoryModel` interface and its three implementations.

A memory model owns every semantic decision that distinguishes weak
from strong shared memory:

* how a plain assignment's leaf writes reach shared memory
  (:meth:`MemoryModel.write_leaves`),
* which asynchronous *environment* moves exist at a state — TSO's
  store-buffer drains, RA's view advances — and how they apply
  (:meth:`env_moves` / :meth:`apply_env` / :meth:`env_enabled`),
* what atomics (lock/unlock/CAS/exchange/fetch_add), fences and thread
  join do beyond their data effect (:meth:`atomic_update`,
  :meth:`atomic_acquire`, :meth:`fence`, :meth:`on_join`),
* how threads and the whole program state are initialised
  (:meth:`init_thread` / :meth:`init_state`), and
* whether the ample-set partial-order reduction's independence argument
  applies (:attr:`supports_por`).

Visible-value resolution itself lives in
:meth:`repro.machine.state.ProgramState.local_view`, which dispatches on
the thread's state representation (``thread.view is not None`` selects
the RA read path) so expression evaluation needs no model handle.

Environment moves are encoded as parameter tuples (the same shape as
:class:`~repro.machine.program.Transition` params); the machine wraps
them into ``Transition(tid, None, params)`` objects.  This keeps the
package import-light (no dependency on ``machine.program``) and keeps
the TSO drain transition object bit-identical to the historical one.

**Bit-identity of the TSO extraction.**  ``TSOModel`` methods are the
pre-refactor code moved verbatim: ``write_leaves`` replays the exact
push-buffer / direct-memory branches of ``steps.write_place``,
``env_moves`` emits one drain iff the buffer is nonempty (the same
``Transition(tid, None)`` object the machine used to build inline), and
``apply_env`` is ``ProgramState.drain_one``.  All TSO-mode states carry
``view=None`` / ``histories=None``, so state equality — and therefore
explorer state counts, dedup behaviour, final outcomes and traces — is
unchanged.  The existing differential suites enforce this.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any, Iterable

from repro.machine.pmap import EMPTY_PMAP, PMap
from repro.machine.state import ProgramState, ThreadState

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.values import Location

#: Key in ``ProgramState.histories`` holding the RA model's global
#: SC-fence view (never collides with a ``Location``).
SC_FENCE_KEY = ("$memmodel", "sc-view")

#: One environment move with no parameters (a TSO drain).
_ONE_MOVE: tuple[tuple, ...] = ((),)

EnvMove = tuple[tuple[Any, Any], ...]


class MemoryModel:
    """Base class: the hooks every model must provide.

    The base implementations are the *strong* defaults — direct writes,
    no environment moves, no synchronisation bookkeeping — so SC is the
    base behaviour and weaker models override.
    """

    #: Stable identifier; part of every proof-cache key and fingerprint.
    name: str = "abstract"
    #: Whether the ample-set POR independence argument is sound for this
    #: model.  The dynamic guard inspects store buffers and shared
    #: memory but not RA histories/views, so RA must opt out.
    supports_por: bool = True

    # -- initialisation -------------------------------------------------

    def init_state(self, state: ProgramState) -> ProgramState:
        """Attach model-owned program-level state (e.g. histories)."""
        return state

    def init_thread(
        self, thread: ThreadState, parent: ThreadState | None
    ) -> ThreadState:
        """Attach model-owned per-thread state (e.g. a view).  *parent*
        is the spawning thread (``None`` for the main thread)."""
        return thread

    # -- plain writes ---------------------------------------------------

    def write_leaves(
        self,
        state: ProgramState,
        tid: int,
        leaves: Iterable[tuple["Location", Any]],
        buffered: bool,
    ) -> ProgramState:
        """Commit an assignment's decomposed leaf writes.  *buffered*
        distinguishes ordinary ``:=`` from bypassing ``::=`` writes;
        models free to ignore it (SC and RA do)."""
        new_memory = state.memory
        for loc, leaf in leaves:
            new_memory = new_memory.set(loc, leaf)
        return replace(state, memory=new_memory)

    # -- environment (asynchronous hardware) moves ----------------------

    def env_moves(
        self, state: ProgramState, thread: ThreadState, machine: Any = None
    ) -> Iterable[EnvMove]:
        """Parameter tuples of the enabled environment moves for
        *thread* (each becomes a ``Transition(tid, None, params)``).
        *machine* (the owning :class:`StateMachine`) lets a model
        consult program structure to prune unobservable moves."""
        return ()

    def apply_env(
        self, state: ProgramState, tid: int, params: EnvMove
    ) -> ProgramState:
        return state

    def env_enabled(
        self,
        state: ProgramState,
        tid: int,
        params: EnvMove,
        machine: Any = None,
    ) -> bool:
        """Re-check an environment move at a (possibly different) state —
        used by the mover/commutativity checks in the proof library."""
        return False

    # -- atomics, fences, join ------------------------------------------

    def atomic_update(
        self, state: ProgramState, tid: int, loc: "Location", value: Any
    ) -> ProgramState:
        """An atomic (LOCK-prefixed) write of *value* to *loc*, as
        performed by lock/unlock/CAS/exchange/fetch_add."""
        return state.with_memory(loc, value)

    def atomic_acquire(
        self, state: ProgramState, tid: int, loc: "Location"
    ) -> ProgramState:
        """The synchronisation effect of atomically *reading* *loc*
        (CAS-failure reads, exchange/fetch_add read halves)."""
        return state

    def fence(self, state: ProgramState, tid: int) -> ProgramState:
        return state

    def on_join(
        self, state: ProgramState, tid: int, target_tid: Any
    ) -> ProgramState:
        """Synchronisation when *tid* joins terminated *target_tid*."""
        return state


class SCModel(MemoryModel):
    """Sequential consistency: writes hit memory immediately, there are
    no buffers and no environment moves.  Reads fall through the TSO
    read path in ``local_view`` with an always-empty buffer, so no
    read-side override is needed."""

    name = "sc"
    supports_por = True


class TSOModel(MemoryModel):
    """x86-TSO (§3.2.1): per-thread FIFO store buffers drained by
    asynchronous environment moves; ``::=`` bypasses the buffer; RMWs
    and fences already require ``sb_empty`` in the step semantics."""

    name = "tso"
    supports_por = True

    def write_leaves(self, state, tid, leaves, buffered):
        if buffered:
            thread = state.thread(tid)
            for loc, leaf in leaves:
                thread = thread.push_buffer(loc, leaf)
            return state.with_thread(thread)
        new_memory = state.memory
        for loc, leaf in leaves:
            new_memory = new_memory.set(loc, leaf)
        return replace(state, memory=new_memory)

    def env_moves(self, state, thread, machine=None):
        # Drains stay enabled even for terminated threads: a thread may
        # exit with pending stores that must still reach memory.
        return _ONE_MOVE if thread.store_buffer else ()

    def apply_env(self, state, tid, params):
        return state.drain_one(tid)

    def env_enabled(self, state, tid, params, machine=None):
        return bool(state.threads[tid].store_buffer)


class RAModel(MemoryModel):
    """A C11-style release/acquire model, operationally.

    Per-location write *histories* live on the program state
    (``state.histories``: Location -> tuple of ``(value, message_view)``
    records, timestamp = tuple index); each thread carries a *view*
    (``thread.view``: Location -> timestamp) naming the record it
    currently observes per location.  A read returns the record at the
    thread's view — deterministically.  The read nondeterminism of RA
    is encoded as *environment advance moves*: an env step moves one
    thread's view of one location forward one record and **acquires**
    (joins) that record's message view — exactly the §4.1 encapsulated-
    nondeterminism discipline the TSO drains already follow.  Every
    store is a release: it appends a record carrying the writer's full
    view (including the new write).  Because views advance per location
    independently, two readers may see two writers' independent stores
    in opposite orders — IRIW's non-multi-copy-atomic outcome — while
    message-view acquisition still forbids MP and LB reorderings.
    RMWs acquire the latest record then release-write (they always act
    on the newest value, giving coherence and lock hand-off); ``fence``
    is an SC fence through a global view stored under
    :data:`SC_FENCE_KEY`; ``join`` acquires the joined thread's final
    view (pthread happens-before).

    POR is disabled (:attr:`supports_por` = False): the ample guard
    never inspects histories/views, so its invisibility check would be
    unsound here.
    """

    name = "ra"
    supports_por = False

    # -- initialisation -------------------------------------------------

    def init_state(self, state):
        return replace(state, histories=EMPTY_PMAP)

    def init_thread(self, thread, parent):
        view = (
            parent.view
            if parent is not None and parent.view is not None
            else EMPTY_PMAP
        )
        return replace(thread, view=view)

    # -- writes ---------------------------------------------------------

    def write_leaves(self, state, tid, leaves, buffered):
        # Every store is a release write appended to the location's
        # history; ``buffered`` (``:=`` vs ``::=``) makes no difference
        # under RA.  ``state.memory`` tracks the newest record so RMWs
        # and coherence checks read the modification-order maximum.
        thread = state.thread(tid)
        view = thread.view
        histories = state.histories
        memory = state.memory
        for loc, leaf in leaves:
            hist = histories.get(loc)
            if hist is None:
                hist = (
                    ((memory[loc], EMPTY_PMAP),) if loc in memory else ()
                )
            view = view.set(loc, len(hist))
            hist = hist + ((leaf, view),)
            histories = histories.set(loc, hist)
            memory = memory.set(loc, leaf)
        thread = replace(thread, view=view)
        return replace(
            state,
            threads=state.threads.set(tid, thread),
            memory=memory,
            histories=histories,
        )

    # -- environment advances -------------------------------------------
    #
    # In real RA a thread's view of a location changes only when the
    # thread actually reads (or RMWs) it.  Emitting advance moves for
    # every location at every pc would be sound but multiplies states
    # combinatorially with positions a thread can never observe, so
    # advances are emitted only for locations some step at the thread's
    # current pc may read through its view (statically over-approximated
    # from the steps' read expressions; pointer dereferences fall back
    # to "all locations").

    def env_moves(self, state, thread, machine=None):
        # A terminated thread never reads again; advancing its view only
        # multiplies states.
        if thread.terminated or thread.view is None:
            return ()
        histories = state.histories
        if histories is None or not histories:
            return ()
        names, include_all = self._read_filter(machine, thread.pc)
        if not include_all and not names:
            return ()
        view = thread.view
        moves: list[EnvMove] = []
        for loc, hist in histories.items():
            if loc == SC_FENCE_KEY:
                continue
            if not include_all:
                root = loc.root
                if root.kind != "global" or root.name not in names:
                    continue
            if view.get(loc, 0) < len(hist) - 1:
                moves.append((("advance", loc),))
        return moves

    def apply_env(self, state, tid, params):
        loc = dict(params)["advance"]
        thread = state.threads[tid]
        hist = state.histories[loc]
        pos = thread.view.get(loc, 0) + 1
        _value, message_view = hist[pos]
        view = _join(thread.view, message_view)
        if view.get(loc, 0) < pos:
            view = view.set(loc, pos)
        return state.with_thread(replace(thread, view=view))

    def env_enabled(self, state, tid, params, machine=None):
        thread = state.threads.get(tid)
        if thread is None or thread.view is None or thread.terminated:
            return False
        loc = dict(params).get("advance")
        histories = state.histories
        hist = histories.get(loc) if histories is not None else None
        if hist is None:
            return False
        if machine is not None:
            names, include_all = self._read_filter(machine, thread.pc)
            if not include_all:
                root = loc.root
                if root.kind != "global" or root.name not in names:
                    return False
        return thread.view.get(loc, 0) < len(hist) - 1

    def _read_filter(
        self, machine: Any, pc: str | None
    ) -> tuple[frozenset, bool]:
        """``(global names, include_all)``: which locations the steps at
        *pc* may read through the thread's view.  Cached per machine."""
        if machine is None or pc is None:
            return frozenset(), True
        cache = machine.__dict__.setdefault("_ra_read_filter", {})
        hit = cache.get(pc)
        if hit is None:
            hit = _pc_read_footprint(machine, pc)
            cache[pc] = hit
        return hit

    # -- atomics, fences, join ------------------------------------------

    def atomic_acquire(self, state, tid, loc):
        histories = state.histories
        hist = histories.get(loc) if histories is not None else None
        if not hist:
            return state
        pos = len(hist) - 1
        _value, message_view = hist[pos]
        thread = state.threads[tid]
        view = _join(thread.view, message_view)
        if view.get(loc, 0) < pos:
            view = view.set(loc, pos)
        if view is thread.view:
            return state
        return state.with_thread(replace(thread, view=view))

    def atomic_update(self, state, tid, loc, value):
        # RMW atomicity: acquire the newest record, then release-write.
        state = self.atomic_acquire(state, tid, loc)
        return self.write_leaves(state, tid, ((loc, value),), False)

    def fence(self, state, tid):
        # SC fence: join with the global fence view, then publish the
        # strengthened view back (view := view ⊔ sc; sc := view).
        histories = (
            state.histories if state.histories is not None else EMPTY_PMAP
        )
        sc_view = histories.get(SC_FENCE_KEY, EMPTY_PMAP)
        thread = state.threads[tid]
        view = _join(thread.view, sc_view)
        state = state.with_thread(replace(thread, view=view))
        return replace(state, histories=histories.set(SC_FENCE_KEY, view))

    def on_join(self, state, tid, target_tid):
        target = state.threads.get(target_tid)
        if target is None or target.view is None:
            return state
        thread = state.threads[tid]
        view = _join(thread.view, target.view)
        if view is thread.view:
            return state
        return state.with_thread(replace(thread, view=view))


def _pc_read_footprint(machine: Any, pc: str) -> tuple[frozenset, bool]:
    """Over-approximate the shared locations readable at *pc*.

    Returns ``(global names, include_all)``.  ``include_all`` is set
    when a read goes through a pointer or an address-taken local, whose
    target cannot be named statically.  Address-of expressions read no
    memory (their base variable is skipped; index subexpressions are
    still visited).
    """
    import dataclasses as _dc

    from repro.lang import asts as ast
    from repro.lang import types as lty

    info = machine.pcs.get(pc)
    if info is None:
        return frozenset(), True
    ctx = machine.ctx
    global_names = {g.name for g in ctx.level.globals if not g.ghost}
    mctx = ctx.method_contexts.get(info.method)
    addr_taken = (
        {n for n, i in mctx.locals.items() if i.address_taken}
        if mctx else set()
    )
    names: set[str] = set()
    include_all = False

    def children(expr: ast.Expr):
        for f in _dc.fields(expr):
            v = getattr(expr, f.name)
            if isinstance(v, ast.Expr):
                yield v
            elif isinstance(v, (list, tuple)):
                for item in v:
                    if isinstance(item, ast.Expr):
                        yield item

    def visit(expr: ast.Expr | None) -> None:
        nonlocal include_all
        if expr is None or include_all:
            return
        if isinstance(expr, ast.AddressOf):
            op = expr.operand
            while isinstance(op, (ast.FieldAccess, ast.Index)):
                if isinstance(op, ast.Index):
                    visit(op.index)
                op = op.base
            if not isinstance(op, ast.Var):
                visit(op)
            return
        if isinstance(expr, ast.Deref):
            include_all = True
            return
        if isinstance(expr, ast.Index) and isinstance(
            getattr(expr.base, "type", None), lty.PtrType
        ):
            include_all = True
            return
        if isinstance(expr, ast.Var):
            if expr.name in addr_taken:
                include_all = True
            elif expr.name in global_names:
                names.add(expr.name)
            return
        for child in children(expr):
            visit(child)

    for step in machine.steps_at(pc):
        for expr in step.reads_exprs():
            visit(expr)
        if include_all:
            break
    return frozenset(names), include_all


def _join(a: PMap, b: PMap) -> PMap:
    """Pointwise-maximum join of two views (timestamp lattice)."""
    if a is b or not b:
        return a
    updates = {}
    for key, ts in b.items():
        if a.get(key, -1) < ts:
            updates[key] = ts
    return a.set_many(updates) if updates else a


#: Registry of selectable models, by stable name.
MODELS: dict[str, MemoryModel] = {
    model.name: model for model in (SCModel(), TSOModel(), RAModel())
}

DEFAULT_MODEL = "tso"


def get_model(name: str | MemoryModel | None) -> MemoryModel:
    """Resolve a model by name (``None`` selects the TSO default);
    passing an existing model through is allowed."""
    if name is None:
        return MODELS[DEFAULT_MODEL]
    if isinstance(name, MemoryModel):
        return name
    try:
        return MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown memory model {name!r} "
            f"(choose from {', '.join(sorted(MODELS))})"
        ) from None
