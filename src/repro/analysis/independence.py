"""Per-step independence facts for partial-order reduction.

The explorer's ample-set reduction (:mod:`repro.explore.por`) may only
prune interleavings around a step that is *independent* of every step
another thread could take — firing it first or last must reach the same
states.  This module computes, purely statically, the set of steps that
qualify as candidates; the explorer re-checks each candidate's actual
effect dynamically (see ``AmpleReducer``) before pruning, so these facts
only need to be a sound *filter*, never a final verdict.

Two classifications are exported:

**Private globals** (``private_globals``): top-level global variables
whose every static access comes from a single thread context with spawn
multiplicity one (:meth:`repro.analysis.lockset.LocksetResult.is_multithreaded`
is false) and which are not mutex words.  Exactly one thread instance
can ever read or write such a location, so a buffered store to it — and
the store-buffer drain that later writes it back — is invisible to every
other thread.

**Local steps** (``local_step_ids``): a step is *local* when all of the
following hold:

* It is an :class:`~repro.machine.steps.AssignStep`,
  :class:`~repro.machine.steps.BranchStep` or
  :class:`~repro.machine.steps.AssumeStep` — steps whose whole effect is
  (at most) the firing thread's program counter, its local variables,
  and the shared-memory accesses tracked by the access map.  Every
  other step type either touches scheduler/allocation state
  (create/join/malloc/extern), pushes stack frames whose serials draw
  from shared counters (call/return), emits output, or havocs shared
  places — none of which commute with other threads in general.
* Every location it **writes** (per
  :func:`repro.analysis.accesses.extract_accesses`) is a private global,
  and the write is buffered (plain ``:=``; a TSO-bypassing ``::=``
  mutates memory directly, which the reducer's cheap dynamic guard does
  not re-verify).  A write to a non-address-taken local produces no
  access record at all, so ordinary register-like updates pass.
* Every location it **reads** is effectively unwritable by other
  threads: either no step anywhere in the program writes it, or it is a
  private global.  Mutex words are excluded outright.
* It never mentions a **ghost** variable.  Ghost state is sequentially
  consistent shared state, but it is deliberately invisible to the
  access map (the analyzer tracks the C-level memory the paper's proofs
  care about), so it must be re-checked here: a ghost read could observe
  another thread's ghost write.

Independence under TSO: a local step of thread *t* reads only locations
no other thread ever writes (so no concurrent store-buffer drain can
change what it observes) and writes — whether to *t*'s registers, or
through *t*'s store buffer to a private global — nothing any other
thread can ever read.  Its effects are confined to *t*'s private
frame/pc/buffer and cells only *t* accesses, which no other thread's
step reads or writes — hence it commutes exactly, in both directions,
with every transition of every other thread.  The same argument covers
drains of private-global buffer entries: the written-back cell is
invisible to everyone but *t*, and FIFO push/pop on *t*'s own buffer
commute with all other transitions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import asts as ast
from repro.lang.resolver import LevelContext
from repro.machine.program import StateMachine
from repro.machine.steps import AssignStep, AssumeStep, BranchStep, Step

from repro.analysis.accesses import AccessMap, extract_accesses
from repro.analysis.lockset import LocksetResult, compute_locksets


@dataclass(frozen=True)
class IndependenceFacts:
    """Static classification of a machine's steps for the reducer.

    ``local_step_ids`` holds ``id(step)`` keys (steps use identity
    equality) of the provably independent steps; ``private_globals``
    names the single-context global variables; ``total_steps`` and
    ``local_steps`` summarize how selective the classification was.
    """

    local_step_ids: frozenset[int]
    private_globals: frozenset[str]
    total_steps: int
    local_steps: int

    def is_local(self, step: Step) -> bool:
        return id(step) in self.local_step_ids


def _mentions_ghost(
    ctx: LevelContext, method: str, exprs: list[ast.Expr]
) -> bool:
    for expr in exprs:
        if expr is None:
            continue
        for node in ast.walk_expr(expr):
            if not isinstance(node, ast.Var):
                continue
            if ctx.local(method, node.name) is not None:
                continue
            g = ctx.globals.get(node.name)
            if g is not None and g.ghost:
                return True
    return False


def step_independence(
    ctx: LevelContext,
    machine: StateMachine,
    access_map: AccessMap | None = None,
    locksets: LocksetResult | None = None,
) -> IndependenceFacts:
    """Compute the set of steps that commute with all other threads.

    The access map and lockset results are recomputed when not supplied
    (callers that already ran :func:`repro.analysis.analyze_level` should
    pass them in to avoid the duplicate pass).
    """
    if access_map is None:
        access_map = extract_accesses(ctx, machine)
    if locksets is None:
        locksets = compute_locksets(machine, access_map)

    written: set[str] = {
        a.location for a in access_map.all if a.kind == "write"
    }
    # Top-level globals (no ":" — local:/alloc: tokens are compound)
    # provably touched by at most one thread instance, ever.
    private: frozenset[str] = frozenset(
        loc for loc in access_map.by_location
        if ":" not in loc
        and loc not in access_map.mutex_words
        and not locksets.is_multithreaded(loc)
    )

    local_ids: set[int] = set()
    total = 0
    for pc, steps in machine.steps_by_pc.items():
        method = machine.pcs[pc].method
        for step in steps:
            total += 1
            if not isinstance(step, (AssignStep, BranchStep, AssumeStep)):
                continue
            if _mentions_ghost(ctx, method, step.reads_exprs()):
                continue
            safe = True
            for access in access_map.step_accesses(step):
                loc = access.location
                if loc in access_map.mutex_words:
                    safe = False
                    break
                if access.kind == "write":
                    if loc not in private or not access.buffered:
                        safe = False
                        break
                elif loc in written and loc not in private:
                    safe = False
                    break
            if safe:
                local_ids.add(id(step))

    return IndependenceFacts(
        local_step_ids=frozenset(local_ids),
        private_globals=private,
        total_steps=total,
        local_steps=len(local_ids),
    )
