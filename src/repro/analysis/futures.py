"""Forward-reachable access footprints, per program counter.

The dynamic reducer (:mod:`repro.explore.dpor`) asks, at exploration
time, a question the static classification cannot answer per-state:
*from where thread u currently stands, which abstract locations can u
(or anything u may still spawn) ever read or write?*  A location no
other live thread can ever write again is safe for the candidate
thread to read — even if the whole-program classification says the
location is multithreaded.

This module precomputes, once per machine, the forward closure of the
static access map (:func:`repro.analysis.accesses.extract_accesses`)
over the pc successor graph:

* a step at pc ``p`` contributes its own accesses to ``future(p)``;
* ``future(p)`` includes ``future(q)`` for every successor pc ``q``
  (fall-through targets, branch targets, call entries);
* a :class:`~repro.machine.steps.CreateThreadStep` folds the spawned
  method's entire closure into ``future(p)`` — a thread that can still
  spawn workers can, transitively, still cause every access those
  workers perform;
* a :class:`~repro.machine.steps.ReturnStep` contributes nothing: the
  continuation after a return lives in the *caller's* frame, and the
  runtime query (:meth:`FutureAccesses.thread_writes`) unions the
  future sets of every ``return_pc`` on the thread's stack instead.

The sets are over-approximations (every path is assumed reachable,
every index collapses to its array), so a *miss* is a proof: if a
location is absent from ``thread_writes(u)``, no continuation of
thread *u* — nor any thread it can still create — ever stores to it.
Pending store-buffer entries are **not** included here; they are
concrete per-state data the reducer adds itself.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

from repro.machine.program import StateMachine
from repro.machine.state import ThreadState
from repro.machine.steps import (
    CallStep,
    CreateThreadStep,
    DeallocStep,
    ReturnStep,
)

from repro.analysis.accesses import AccessMap, extract_accesses

#: Pseudo-location meaning "may write anything".  A pc whose future
#: contains an effect the access map cannot name (``dealloc`` frees an
#: aliased object, invalidating every reader of its region) poisons the
#: whole closure; consumers must treat a set containing POISON as
#: conflicting with every read.
POISON = "*"


@dataclass(frozen=True)
class FutureAccesses:
    """Per-pc forward-reachable abstract access sets of one machine."""

    reads: dict[str, frozenset[str]]
    writes: dict[str, frozenset[str]]

    def pc_writes(self, pc: str | None) -> frozenset[str]:
        if pc is None:
            return frozenset()
        return self.writes.get(pc, frozenset())

    def pc_reads(self, pc: str | None) -> frozenset[str]:
        if pc is None:
            return frozenset()
        return self.reads.get(pc, frozenset())

    def thread_writes(self, thread: ThreadState) -> frozenset[str]:
        """Every abstract location *thread* may still write, from its
        current pc, through every frame it will return into, and via
        every thread it may still spawn."""
        acc = self.pc_writes(thread.pc)
        for frame in thread.frames:
            if frame.return_pc is not None:
                acc = acc | self.pc_writes(frame.return_pc)
        return acc

    def thread_reads(self, thread: ThreadState) -> frozenset[str]:
        acc = self.pc_reads(thread.pc)
        for frame in thread.frames:
            if frame.return_pc is not None:
                acc = acc | self.pc_reads(frame.return_pc)
        return acc


_CACHE: "weakref.WeakKeyDictionary[StateMachine, FutureAccesses]"
_CACHE = weakref.WeakKeyDictionary()


def _pc_successors(machine: StateMachine, pc: str) -> set[str]:
    """Successor pcs of *pc* in the forward-reachability graph."""
    succ: set[str] = set()
    for step in machine.steps_at(pc):
        if step.target is not None:
            succ.add(step.target)
        if isinstance(step, (CallStep, CreateThreadStep)):
            entry = machine.method_entry.get(step.method)
            if entry is not None:
                succ.add(entry)
    return succ


def future_accesses(
    machine: StateMachine, access_map: AccessMap | None = None
) -> FutureAccesses:
    """The per-pc forward access closure of *machine* (cached)."""
    cached = _CACHE.get(machine)
    if cached is not None:
        return cached
    if access_map is None:
        access_map = extract_accesses(machine.ctx, machine)

    own_reads: dict[str, set[str]] = {}
    own_writes: dict[str, set[str]] = {}
    succs: dict[str, set[str]] = {}
    preds: dict[str, set[str]] = {pc: set() for pc in machine.steps_by_pc}
    for pc, steps in machine.steps_by_pc.items():
        method = machine.pcs[pc].method
        reads: set[str] = set()
        writes: set[str] = set()
        for step in steps:
            for access in access_map.step_accesses(step):
                (writes if access.kind == "write" else reads).add(
                    access.location
                )
            # Frees are writes the access map does not record: a return
            # frees the method's address-taken locals (readers through a
            # pointer then hit UB), and dealloc frees a whole aliased
            # allocation — only region analysis could name its targets,
            # so it poisons the closure instead.
            if isinstance(step, ReturnStep):
                for name in machine.memory_locals.get(method, ()):
                    writes.add(f"local:{method}:{name}")
            elif isinstance(step, DeallocStep):
                writes.add(POISON)
        own_reads[pc] = reads
        own_writes[pc] = writes
        succs[pc] = {
            q for q in _pc_successors(machine, pc)
            if q in machine.steps_by_pc
        }
        for q in succs[pc]:
            preds.setdefault(q, set())
    for pc, qs in succs.items():
        for q in qs:
            preds[q].add(pc)

    # Iterative backward-propagation fixpoint: future(p) ⊇ own(p) ∪
    # future(q) for each successor q.  Worklist over predecessors; pc
    # graphs are small (a few hundred nodes), so convergence is quick.
    fut_reads: dict[str, set[str]] = {
        pc: set(own_reads.get(pc, ())) for pc in preds
    }
    fut_writes: dict[str, set[str]] = {
        pc: set(own_writes.get(pc, ())) for pc in preds
    }
    work = list(preds)
    pending = set(work)
    while work:
        pc = work.pop()
        pending.discard(pc)
        reads = fut_reads[pc]
        writes = fut_writes[pc]
        for q in succs.get(pc, ()):
            reads |= fut_reads[q]
            writes |= fut_writes[q]
        for p in preds.get(pc, ()):
            if not (fut_reads[pc] <= fut_reads[p]
                    and fut_writes[pc] <= fut_writes[p]):
                if p not in pending:
                    pending.add(p)
                    work.append(p)

    result = FutureAccesses(
        reads={pc: frozenset(v) for pc, v in fut_reads.items()},
        writes={pc: frozenset(v) for pc, v in fut_writes.items()},
    )
    try:
        _CACHE[machine] = result
    except TypeError:  # unweakrefable stand-in (tests)
        pass
    return result
