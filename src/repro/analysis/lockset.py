"""Eraser-style lockset analysis over the translated state machine.

Two cooperating dataflow facts are computed over the machine's CFG:

* **Held locks**: for every PC, the set of mutex globals *definitely*
  held when control reaches it (meet = intersection, the classic
  Eraser under-approximation).  ``lock(&m)`` / ``unlock(&m)`` externs
  are the acquire/release points; calls propagate the caller's held
  set into the callee and the callee's exit set back to every return
  site (context-insensitive merge).

* **Thread contexts**: which spawn contexts (``main`` or
  ``thread:<method>`` per ``create_thread`` target) can execute each
  method, with a multiplicity for spawn sites that can fire more than
  once (several sites, or one site inside a loop).

From these, each shared location gets a *candidate lockset* (the
intersection of held sets over all its accesses) and a verdict on
whether it is even potentially multi-threaded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.program import StateMachine
from repro.machine.steps import (
    CallStep,
    CreateThreadStep,
    ExternStep,
    ReturnStep,
    Step,
)

from repro.analysis.accesses import AccessMap

MAIN_CONTEXT = "main"


def _lock_targets(access_map: AccessMap, step: ExternStep) -> list[str]:
    """Static global names a lock/unlock extern may operate on."""
    return sorted({
        a.location for a in access_map.step_accesses(step)
        if a.atomic and ":" not in a.location
    })


@dataclass
class LocksetResult:
    """Output of the lockset pass, consumed by the classifier."""

    #: PC -> locks definitely held (None = statically unreachable).
    held_at: dict[str, frozenset[str] | None] = field(default_factory=dict)
    #: Spawn context tag -> how many such threads may exist (2 = "many").
    multiplicity: dict[str, int] = field(default_factory=dict)
    #: Method -> context tags that may execute it.
    contexts_of_method: dict[str, set[str]] = field(default_factory=dict)
    #: Location -> context tags of its accessors.
    location_contexts: dict[str, set[str]] = field(default_factory=dict)
    #: Location -> candidate lockset (∩ held over reachable accesses);
    #: None when the location has no reachable accesses.
    location_locks: dict[str, frozenset[str] | None] = field(
        default_factory=dict
    )

    def held(self, pc: str) -> frozenset[str]:
        locks = self.held_at.get(pc)
        return locks if locks is not None else frozenset()

    def is_multithreaded(self, location: str) -> bool:
        """Whether two threads can ever both access *location*."""
        tags = self.location_contexts.get(location, set())
        if len(tags) > 1:
            return True
        return any(self.multiplicity.get(tag, 1) > 1 for tag in tags)


class _LocksetPass:
    def __init__(self, machine: StateMachine,
                 access_map: AccessMap) -> None:
        self.machine = machine
        self.access_map = access_map
        self.result = LocksetResult()
        #: callee -> return-site PCs of its call steps.
        self.return_sites: dict[str, list[str]] = {}
        #: callee -> exit lockset (meet over its ReturnStep PCs).
        self.exit_of: dict[str, frozenset[str] | None] = {}

    # -- held-locks dataflow -------------------------------------------

    def _meet_into(self, pc: str, locks: frozenset[str],
                   worklist: list[str]) -> None:
        held = self.result.held_at
        current = held.get(pc)
        updated = locks if current is None else (current & locks)
        if current is None or updated != current:
            held[pc] = updated
            worklist.append(pc)

    def _transfer(self, step: Step, held: frozenset[str]
                  ) -> frozenset[str]:
        if isinstance(step, ExternStep):
            targets = _lock_targets(self.access_map, step)
            if step.name == "lock" and len(targets) == 1:
                return held | set(targets)
            if step.name == "unlock":
                return held - set(targets) if targets else frozenset()
        return held

    def _flow(self) -> None:
        machine = self.machine
        held = self.result.held_at
        for pc in machine.pcs:
            held[pc] = None
        entries = [machine.method_entry[machine.main_method]]
        for step in machine.all_steps():
            if isinstance(step, CreateThreadStep):
                entry = machine.method_entry.get(step.method)
                if entry is not None:
                    entries.append(entry)
            elif isinstance(step, CallStep):
                if step.target is not None:
                    self.return_sites.setdefault(step.method, []).append(
                        step.target
                    )
        worklist: list[str] = []
        for entry in entries:
            self._meet_into(entry, frozenset(), worklist)
        while worklist:
            pc = worklist.pop()
            current = held.get(pc)
            if current is None:
                continue
            for step in self.machine.steps_at(pc):
                self._step_flow(step, current, worklist)

    def _step_flow(self, step: Step, held: frozenset[str],
                   worklist: list[str]) -> None:
        machine = self.machine
        if isinstance(step, CallStep):
            entry = machine.method_entry.get(step.method)
            if entry is not None:
                self._meet_into(entry, held, worklist)
            exit_locks = self.exit_of.get(step.method)
            if exit_locks is not None and step.target is not None:
                self._meet_into(step.target, exit_locks, worklist)
            return
        if isinstance(step, ReturnStep):
            method = machine.pcs[step.pc].method
            current = self.exit_of.get(method)
            updated = held if current is None else (current & held)
            if current is None or updated != current:
                self.exit_of[method] = updated
                for site in self.return_sites.get(method, []):
                    self._meet_into(site, updated, worklist)
            return
        if step.target is not None:
            self._meet_into(step.target, self._transfer(step, held),
                            worklist)

    # -- thread contexts -----------------------------------------------

    def _call_graph(self) -> dict[str, set[str]]:
        calls: dict[str, set[str]] = {}
        for step in self.machine.all_steps():
            if isinstance(step, CallStep):
                caller = self.machine.pcs[step.pc].method
                calls.setdefault(caller, set()).add(step.method)
        return calls

    def _spawn_multiplicity(self) -> dict[str, int]:
        """Spawn target -> 1 (one thread) or 2 (two or more threads).

        A spawn step that can re-execute (it is on a CFG cycle) or a
        target spawned from several sites counts as "many".
        """
        spawn_steps: dict[str, list[Step]] = {}
        for step in self.machine.all_steps():
            if isinstance(step, CreateThreadStep):
                spawn_steps.setdefault(step.method, []).append(step)
        succ: dict[str, set[str]] = {}
        for step in self.machine.all_steps():
            if step.target is not None:
                succ.setdefault(step.pc, set()).add(step.target)
        result: dict[str, int] = {}
        for target, steps in spawn_steps.items():
            many = len(steps) > 1
            for step in steps:
                if self._on_cycle(step.pc, succ):
                    many = True
            result[target] = 2 if many else 1
        return result

    @staticmethod
    def _on_cycle(pc: str, succ: dict[str, set[str]]) -> bool:
        frontier = list(succ.get(pc, ()))
        seen = set()
        while frontier:
            node = frontier.pop()
            if node == pc:
                return True
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(succ.get(node, ()))
        return False

    def _contexts(self) -> None:
        calls = self._call_graph()

        def closure(method: str) -> set[str]:
            reached = set()
            frontier = [method]
            while frontier:
                m = frontier.pop()
                if m in reached:
                    continue
                reached.add(m)
                frontier.extend(calls.get(m, ()))
            return reached

        contexts: dict[str, set[str]] = {}
        for m in closure(self.machine.main_method):
            contexts.setdefault(m, set()).add(MAIN_CONTEXT)
        self.result.multiplicity[MAIN_CONTEXT] = 1
        for target, count in self._spawn_multiplicity().items():
            tag = f"thread:{target}"
            self.result.multiplicity[tag] = count
            for m in closure(target):
                contexts.setdefault(m, set()).add(tag)
        self.result.contexts_of_method = contexts

    # -- per-location summaries ----------------------------------------

    def _summarize_locations(self) -> None:
        result = self.result
        for access in self.access_map.all:
            held = result.held_at.get(access.pc)
            if held is None:
                continue  # statically unreachable access
            loc = access.location
            tags = result.contexts_of_method.get(access.method, set())
            result.location_contexts.setdefault(loc, set()).update(tags)
            current = result.location_locks.get(loc)
            result.location_locks[loc] = (
                held if current is None else (current & held)
            )

    def run(self) -> LocksetResult:
        self._flow()
        self._contexts()
        self._summarize_locations()
        return self.result


def compute_locksets(machine: StateMachine,
                     access_map: AccessMap) -> LocksetResult:
    """Run the lockset + thread-context pass over a machine."""
    return _LocksetPass(machine, access_map).run()
