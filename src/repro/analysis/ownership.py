"""Synthesis of candidate ``tso_elim`` ownership predicates.

The TSO-elimination strategy (§4.2.3) needs a developer-supplied
ownership predicate; a wrong one only surfaces as a failed lemma deep
in the proof chain.  This module turns the analyzer's verdicts into
candidates up front:

* ``LOCK_PROTECTED(m)`` locations get ``"m == $me"`` — the thread
  holding the mutex owns the location (the lock word stores the owning
  tid, so this is exactly the paper's running-example predicate).
* ``THREAD_LOCAL`` locations need no predicate at all: with a single
  accessor, TSO and SC are indistinguishable (a thread always reads
  its own buffered stores), so the ownership obligations are
  discharged trivially.

Every suggestion is validated **dynamically** against the bounded
explorer before being offered: we replay the three tso_elim ownership
obligations (exclusivity, access-requires-ownership,
release-implies-drained) over the reachable states, so a statically
plausible but wrong candidate is never suggested.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import asts as ast
from repro.lang import types as ty
from repro.lang.parser import parse_expression
from repro.lang.resolver import LevelContext
from repro.lang.typechecker import TypeChecker
from repro.machine.evaluator import EvalContext, eval_expr
from repro.machine.program import StateMachine
from repro.machine.state import ProgramState, UBSignal

from repro.analysis.accesses import AccessMap
from repro.analysis.robustness import Classification, LocationVerdict


@dataclass
class OwnershipSuggestion:
    """A candidate recipe line for one location."""

    location: str
    predicate: str | None  # None = trivially dischargeable
    rationale: str
    validated: bool = False
    validation_note: str = ""

    def describe(self) -> str:
        if self.predicate is None:
            return (
                f"{self.location}: thread-local; tso_elim obligations "
                "discharge without a predicate"
            )
        status = "validated" if self.validated else "NOT validated"
        return (
            f'{self.location}: tso_elim {self.location} '
            f'"{self.predicate}"  ({status}: {self.validation_note})'
        )


def _parse_predicate(ctx: LevelContext, text: str) -> ast.Expr:
    expr = parse_expression(text)
    TypeChecker(ctx)._check_expr(expr, None, ty.BOOL, two_state=False)
    return expr


def _eval_for_thread(
    ctx: LevelContext,
    machine: StateMachine,
    predicate: ast.Expr,
    state: ProgramState,
    tid: int,
) -> bool | None:
    thread = state.threads.get(tid)
    method = (
        thread.top.method
        if thread is not None and thread.frames
        else machine.main_method
    )
    ec = EvalContext(ctx, state, tid, method)
    try:
        return bool(eval_expr(ec, predicate))
    except (UBSignal, KeyError):
        return None


def validate_predicate(
    ctx: LevelContext,
    machine: StateMachine,
    access_map: AccessMap,
    varname: str,
    predicate_text: str,
    max_states: int = 200_000,
    compiled: bool = True,
) -> tuple[bool, str]:
    """Replay the tso_elim ownership obligations over the bounded state
    space.  Returns (ok, note); a hit state budget fails validation."""
    from repro.explore.explorer import Explorer

    try:
        predicate = _parse_predicate(ctx, predicate_text)
    except Exception as error:
        return False, f"does not parse/typecheck: {error}"

    touching_pcs = {
        a.pc for a in access_map.by_location.get(varname, [])
        if not a.atomic
    }
    failure: list[str] = []

    def visit(state: ProgramState, transitions) -> bool:
        if not state.running:
            return True
        owners = []
        for tid in state.threads.keys():
            thread = state.threads[tid]
            if _eval_for_thread(ctx, machine, predicate, state, tid):
                owners.append(tid)
            if (
                thread.pc in touching_pcs
                and not thread.terminated
                and (state.atomic_owner in (None, tid))
                and not _eval_for_thread(
                    ctx, machine, predicate, state, tid
                )
            ):
                failure.append(
                    f"t{tid} can access {varname} at {thread.pc} "
                    "without satisfying the predicate"
                )
                return False
        if len(owners) > 1:
            failure.append(
                f"threads {owners} satisfy the predicate simultaneously"
            )
            return False
        return True

    complete = Explorer(
        machine, max_states, compiled=compiled
    ).walk(visit)
    if failure:
        return False, failure[0]
    if not complete:
        return False, "state budget exhausted before full validation"
    return True, (
        "exclusive ownership and access discipline hold over the "
        "bounded state space"
    )


def suggest_ownership(
    ctx: LevelContext,
    machine: StateMachine,
    access_map: AccessMap,
    verdicts: dict[str, LocationVerdict],
    max_states: int = 200_000,
    compiled: bool = True,
) -> list[OwnershipSuggestion]:
    """Candidate tso_elim predicates for every eliminable location."""
    suggestions: list[OwnershipSuggestion] = []
    for name, verdict in sorted(verdicts.items()):
        if verdict.classification is Classification.THREAD_LOCAL:
            suggestions.append(OwnershipSuggestion(
                location=name,
                predicate=None,
                rationale=(
                    "single accessor thread"
                    + (
                        " (corroborated by the bounded dynamic scan)"
                        if verdict.dynamic == "confirmed" else ""
                    )
                ),
                validated=verdict.dynamic == "confirmed",
                validation_note="thread-locality cross-checked",
            ))
            continue
        if verdict.classification is Classification.LOCK_PROTECTED:
            for mutex in verdict.locks:
                text = f"{mutex} == $me"
                ok, note = validate_predicate(
                    ctx, machine, access_map, name, text, max_states,
                    compiled=compiled,
                )
                suggestions.append(OwnershipSuggestion(
                    location=name,
                    predicate=text,
                    rationale=f"every access holds mutex {mutex}",
                    validated=ok,
                    validation_note=note,
                ))
                if ok:
                    break
    return suggestions
